PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

JOBS ?= 1
BENCH_OUT ?= BENCH_compile.json
APP ?= ocean
REPORT_OUT ?= report.json
COV_MIN ?= 80
SERVE_OUT_DIR ?= out/serve

.PHONY: test lint cov check bench bench-smoke bench-regression quick report \
	report-smoke faults-demo docs-check examples-smoke serve-smoke \
	serve-bench mesh-sweep mesh-sweep-smoke runtime-smoke

test:
	$(PYTHON) -m pytest -x -q

# Static checks (requires ruff, part of the [dev] extra; config in pyproject).
lint:
	$(PYTHON) -m ruff check src tests

# Coverage gate (requires pytest-cov): fails under COV_MIN percent.
cov:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term --cov-fail-under=$(COV_MIN)

# Correctness oracles (DESIGN.md section 10): the differential/property
# suite in tests/check/, then smoke pipelines (healthy + degraded) with
# the runtime invariant hooks live via REPRO_CHECK=1.
check:
	$(PYTHON) -m pytest tests/check -q
	REPRO_CHECK=1 $(PYTHON) -m repro.cli report tiny --out report_check.json
	$(PYTHON) -m repro.obs.schema report_check.json
	REPRO_CHECK=1 $(PYTHON) -m repro.cli faults --seed 1 --out report_check_faults.json
	$(PYTHON) -m repro.obs.schema report_check_faults.json

# Time compile (partition/window-search) + simulate per app -> BENCH_compile.json
bench:
	$(PYTHON) -m repro.benchmarks.perf --jobs $(JOBS) --out $(BENCH_OUT)

# Sub-second harness check on the built-in tiny app (what tier 1 exercises).
# Writes to a scratch file so it never clobbers a real $(BENCH_OUT).
bench-smoke:
	$(PYTHON) -m repro.benchmarks.perf --tiny --out BENCH_smoke.json

# 4-app experiment subset; JOBS>1 prewarms caches across processes
quick:
	$(PYTHON) -m repro.experiments.runner --quick --jobs $(JOBS)

# Machine-readable compile report for one app (schema: src/repro/obs/schema.py)
report:
	$(PYTHON) -m repro.cli report $(APP) --out $(REPORT_OUT)
	$(PYTHON) -m repro.obs.schema $(REPORT_OUT)

# Sub-second report on the built-in tiny app, then schema-validate it.
report-smoke:
	$(PYTHON) -m repro.cli report tiny --out report_smoke.json --trace trace_smoke.jsonl
	$(PYTHON) -m repro.obs.schema report_smoke.json

# CI's bench-regression gate: measure the smoke subset, compare vs the
# committed baseline with a generous wall-time tolerance.
bench-regression:
	$(PYTHON) -m repro.benchmarks.perf --smoke --out BENCH_fresh.json
	$(PYTHON) -m repro.benchmarks.regression --baseline $(BENCH_OUT) --fresh BENCH_fresh.json

# Documentation gate: markdown link check over the checked documents +
# docstring-coverage gate for repro.core (tools/check_docs.py, stdlib only).
docs-check:
	$(PYTHON) tools/check_docs.py

# Every example script must run to completion (examples are executable docs).
examples-smoke:
	@set -e; for ex in examples/*.py; do \
		echo "== $$ex"; $(PYTHON) $$ex > /dev/null; \
	done; echo "examples-smoke: ok"

# CI's serve-smoke gate: spawn a daemon, drive 1000 requests (200 unique
# cold + 800 warm repeats) through 50 concurrent clients, then assert a
# >= 90% warm cache hit rate, byte-identity between a cached artifact and
# a fresh in-process compile, and a clean SIGTERM drain.  All outputs
# (BENCH_serve_fresh.json, serve_trace.jsonl, the scratch cache) land
# under $(SERVE_OUT_DIR) — never the repo root — then the fresh numbers
# are compared against the committed BENCH_serve.json baseline.
serve-smoke:
	$(PYTHON) -m repro.serve.loadgen --spawn \
		--requests 1000 --unique 200 --clients 50 --workers 2 \
		--out-dir $(SERVE_OUT_DIR) \
		--trace serve_trace.jsonl --out BENCH_serve_fresh.json \
		--assert-warm-hit-rate 0.9 --verify-identity
	$(PYTHON) -m repro.benchmarks.regression \
		--serve-baseline BENCH_serve.json \
		--serve-fresh $(SERVE_OUT_DIR)/BENCH_serve_fresh.json

# CI's runtime-smoke gate: compile tiny + minimd and *execute* them on
# the task-runtime backend (one worker: deterministic dispatch), then
# gate on the runtime-execution contract — zero sync-order violations
# and movement agreement within MOVEMENT_AGREEMENT_TOLERANCE of the
# simulator's forecast (tools/check_runtime_gate.py).
runtime-smoke:
	mkdir -p out/runtime
	$(PYTHON) -m repro.cli report tiny --backend runtime --backend-workers 1 \
		--out out/runtime/report_tiny_runtime.json --no-heatmap
	$(PYTHON) -m repro.obs.schema out/runtime/report_tiny_runtime.json
	$(PYTHON) -m repro.cli report minimd --backend runtime --backend-workers 1 \
		--out out/runtime/report_minimd_runtime.json --no-heatmap
	$(PYTHON) -m repro.obs.schema out/runtime/report_minimd_runtime.json
	$(PYTHON) tools/check_runtime_gate.py \
		out/runtime/report_tiny_runtime.json \
		out/runtime/report_minimd_runtime.json

# Refresh the committed serve baseline (run on a quiet machine).  The
# baseline itself is committed, so it stays at the repo root; the
# scratch cache still routes under $(SERVE_OUT_DIR).
serve-bench:
	$(PYTHON) -m repro.serve.loadgen --spawn \
		--requests 1000 --unique 200 --clients 50 --workers 2 \
		--out-dir $(SERVE_OUT_DIR) \
		--out $(CURDIR)/BENCH_serve.json \
		--assert-warm-hit-rate 0.9 --verify-identity

# CI's mesh-sweep gate: time the flat vs hierarchical placement searches
# over paper + DAMOV-generated workloads at 6x6/12x12/16x16, write the
# crossover report, and compare against the committed BENCH_mesh.json
# baseline (deterministic fields exactly, timings by ratio).
mesh-sweep-smoke:
	$(PYTHON) -m repro.experiments.mesh_sweep --smoke --out BENCH_mesh_fresh.json
	$(PYTHON) -m repro.benchmarks.regression \
		--mesh-baseline BENCH_mesh.json --mesh-fresh BENCH_mesh_fresh.json

# Refresh the committed mesh-sweep baseline (run on a quiet machine).
mesh-sweep:
	$(PYTHON) -m repro.experiments.mesh_sweep --out BENCH_mesh.json

# Fault-injection demo: seeded random plan -> degraded run -> detour heatmap.
faults-demo:
	$(PYTHON) -m repro.cli faults --plan-out fault_plan_demo.json --out report_faults_demo.json
	$(PYTHON) -m repro.obs.schema report_faults_demo.json
