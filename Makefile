PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

JOBS ?= 1
BENCH_OUT ?= BENCH_compile.json
APP ?= ocean
REPORT_OUT ?= report.json

.PHONY: test bench bench-smoke quick report report-smoke

test:
	$(PYTHON) -m pytest -x -q

# Time compile (partition/window-search) + simulate per app -> BENCH_compile.json
bench:
	$(PYTHON) -m repro.benchmarks.perf --jobs $(JOBS) --out $(BENCH_OUT)

# Sub-second harness check on the built-in tiny app (what tier 1 exercises).
# Writes to a scratch file so it never clobbers a real $(BENCH_OUT).
bench-smoke:
	$(PYTHON) -m repro.benchmarks.perf --tiny --out BENCH_smoke.json

# 4-app experiment subset; JOBS>1 prewarms caches across processes
quick:
	$(PYTHON) -m repro.experiments.runner --quick --jobs $(JOBS)

# Machine-readable compile report for one app (schema: src/repro/obs/schema.py)
report:
	$(PYTHON) -m repro.cli report $(APP) --out $(REPORT_OUT)
	$(PYTHON) -m repro.obs.schema $(REPORT_OUT)

# Sub-second report on the built-in tiny app, then schema-validate it.
report-smoke:
	$(PYTHON) -m repro.cli report tiny --out report_smoke.json --trace trace_smoke.jsonl
	$(PYTHON) -m repro.obs.schema report_smoke.json
