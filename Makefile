PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

JOBS ?= 1
BENCH_OUT ?= BENCH_compile.json

.PHONY: test bench bench-smoke quick

test:
	$(PYTHON) -m pytest -x -q

# Time compile (partition/window-search) + simulate per app -> BENCH_compile.json
bench:
	$(PYTHON) -m repro.benchmarks.perf --jobs $(JOBS) --out $(BENCH_OUT)

# Sub-second harness check on the built-in tiny app (what tier 1 exercises).
# Writes to a scratch file so it never clobbers a real $(BENCH_OUT).
bench-smoke:
	$(PYTHON) -m repro.benchmarks.perf --tiny --out BENCH_smoke.json

# 4-app experiment subset; JOBS>1 prewarms caches across processes
quick:
	$(PYTHON) -m repro.experiments.runner --quick --jobs $(JOBS)
