#!/usr/bin/env python
"""Gate a ``--backend runtime`` report on the runtime-execution contract.

CI's ``runtime-smoke`` job compiles apps with ``repro.cli report
--backend runtime`` and then runs this script over the resulting report
files.  For each report it asserts the two acceptance criteria of the
task-runtime backend (DESIGN.md section 15):

* **sync-order validity** — zero recorded sync violations: no task
  consumed a cross-node value before its producer's synchronization
  completed;
* **movement agreement** — the runtime-observed data movement is within
  ``MOVEMENT_AGREEMENT_TOLERANCE`` of the simulator's forecast.

Exit code 0 when every report passes, 1 with one line per failure
otherwise.  Stdlib + repro only (the tolerance constant is imported so
this gate can never drift from the backend's documented contract).

Usage::

    python tools/check_runtime_gate.py REPORT.json [REPORT.json ...]
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec.runtime import MOVEMENT_AGREEMENT_TOLERANCE  # noqa: E402


def check_report(path):
    """Failure strings for one report file (empty list = pass)."""
    with open(path) as fh:
        report = json.load(fh)
    execution = report.get("execution")
    if not isinstance(execution, dict):
        return [f"{path}: no execution section (was --backend runtime used?)"]
    if execution.get("backend") != "runtime":
        return [f"{path}: execution backend is {execution.get('backend')!r}"]
    failures = []
    violations = execution.get("sync_violations")
    if violations != 0:
        failures.append(f"{path}: {violations} sync-order violation(s)")
    agreement = execution.get("agreement")
    if not isinstance(agreement, (int, float)):
        failures.append(f"{path}: missing movement agreement")
    elif agreement > MOVEMENT_AGREEMENT_TOLERANCE:
        failures.append(
            f"{path}: movement agreement {agreement:.4f} exceeds "
            f"tolerance {MOVEMENT_AGREEMENT_TOLERANCE} (observed "
            f"{execution.get('observed_movement')}, forecast "
            f"{execution.get('forecast_movement')})"
        )
    return failures


def main(argv):
    if not argv:
        print("usage: check_runtime_gate.py REPORT.json ...", file=sys.stderr)
        return 2
    failures = []
    for path in argv:
        failures.extend(check_report(path))
    if failures:
        for failure in failures:
            print(f"runtime-gate: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"runtime-gate: ok ({len(argv)} report(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
