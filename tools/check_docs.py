#!/usr/bin/env python
"""Documentation gate: markdown link check + docstring coverage.

Zero-dependency (stdlib only), run by ``make docs-check`` and the CI
``docs`` job.  Two audits:

1. **Markdown links** — every ``[text](target)`` in the checked documents
   (README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md) must resolve:
   relative targets must exist in the repository, and ``#fragment``
   anchors must match a heading slug of the target document
   (GitHub-style slugification).  External ``http(s)://`` and ``mailto:``
   targets are syntax-checked only — CI must not depend on the network.

2. **Docstring coverage** — every public module, class, function, and
   method under ``repro.core`` (the partitioning core, including the
   analytic locality model ``repro.core.locality``) must carry a
   docstring; coverage below the gate fails the build.  Private names
   (leading underscore) and trivial ``__init__`` overrides are exempt.

Exit status: 0 when both audits pass, 1 with a per-finding listing
otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

CHECKED_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

DOCSTRING_PACKAGES = (REPO / "src" / "repro" / "core",)

DOCSTRING_GATE = 0.95

# [text](target) with no nested brackets in either part; images (![..])
# share the link grammar and are checked the same way.
_LINK = re.compile(r"\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings(path: Path) -> List[str]:
    slugs: List[str] = []
    counts = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slug = _slugify(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.append(slug if n == 0 else f"{slug}-{n}")
    return slugs


def _links(path: Path) -> Iterator[Tuple[int, str, str]]:
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1), match.group(2)


def check_markdown_links() -> List[str]:
    problems: List[str] = []
    for doc in CHECKED_DOCS:
        doc_path = REPO / doc
        if not doc_path.exists():
            problems.append(f"{doc}: checked document is missing")
            continue
        for lineno, text, target in _links(doc_path):
            where = f"{doc}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: syntax alone is the check
            base, _, fragment = target.partition("#")
            target_path = doc_path if not base else (doc_path.parent / base)
            if base and not target_path.exists():
                problems.append(
                    f"{where}: broken link [{text}]({target}) — "
                    f"no such file {base!r}"
                )
                continue
            if fragment and target_path.suffix == ".md":
                if _slugify(fragment) not in _headings(target_path):
                    problems.append(
                        f"{where}: broken anchor [{text}]({target}) — "
                        f"no heading slug {fragment!r} in {target_path.name}"
                    )
    return problems


def _public_defs(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """(qualified name, node) of every public def/class, module included."""
    yield "<module>", tree

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = child.name
                if name.startswith("_") and name != "__init__":
                    continue
                if name == "__init__" and not _nontrivial_init(child):
                    continue
                qualified = f"{prefix}{name}"
                yield qualified, child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, f"{qualified}.")

    yield from walk(tree, "")


def _nontrivial_init(node: ast.AST) -> bool:
    """An ``__init__`` long enough that skipping its docstring is a gap."""
    return isinstance(node, ast.FunctionDef) and len(node.body) > 3


def check_docstrings() -> Tuple[List[str], int, int]:
    missing: List[str] = []
    documented = total = 0
    for package in DOCSTRING_PACKAGES:
        for path in sorted(package.rglob("*.py")):
            rel = path.relative_to(REPO)
            tree = ast.parse(path.read_text())
            for name, node in _public_defs(tree):
                total += 1
                if ast.get_docstring(node):
                    documented += 1
                else:
                    missing.append(f"{rel}: {name} has no docstring")
    return missing, documented, total


def main() -> int:
    failures = 0

    problems = check_markdown_links()
    if problems:
        failures += 1
        print(f"markdown link check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
    else:
        checked = ", ".join(CHECKED_DOCS)
        print(f"markdown link check: ok ({checked})")

    missing, documented, total = check_docstrings()
    coverage = documented / total if total else 1.0
    scope = ", ".join(
        str(p.relative_to(REPO)) for p in DOCSTRING_PACKAGES
    )
    print(
        f"docstring coverage: {documented}/{total} = {coverage:.1%} "
        f"over {scope} (gate: {DOCSTRING_GATE:.0%})"
    )
    if coverage < DOCSTRING_GATE:
        failures += 1
        for line in missing:
            print(f"  {line}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
