"""Link-level traffic accounting.

The simulator records every message as flit-traversals on the directed links
of its XY route.  Per-link utilization feeds the congestion component of the
latency model (the paper notes on-chip latency is a function of link count,
data volume, and congestion — Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from typing import Optional

from repro.noc.routing import LinkId, Router, xy_route_links_cached
from repro.noc.topology import Mesh2D


@dataclass(frozen=True)
class Link:
    """A directed mesh link with an accumulated traffic count."""

    src: int
    dst: int
    flits: int


@dataclass
class TrafficMatrix:
    """Accumulates per-link flit counts for a simulation run.

    With a fault-aware ``router`` installed, messages are charged on the
    links of their *detour* routes, so the matrix keeps decomposing the
    run's data movement exactly even when parts of the mesh are dead.
    """

    mesh: Mesh2D
    _flits: Dict[LinkId, int] = field(default_factory=dict)
    total_messages: int = 0
    total_hops: int = 0
    total_flit_hops: int = 0
    router: Optional[Router] = None

    def record(self, src: int, dst: int, flits: int = 1) -> int:
        """Record a ``flits``-sized message from ``src`` to ``dst``.

        Returns the hop count (0 when src == dst; local accesses use no
        links and contribute no traffic).
        """
        router = self.router
        if router is not None and not router.healthy:
            links = router.route_links(src, dst)
        else:
            links = xy_route_links_cached(self.mesh, src, dst)
        flit_map = self._flits
        for link in links:
            flit_map[link] = flit_map.get(link, 0) + flits
        self.total_messages += 1
        self.total_hops += len(links)
        self.total_flit_hops += len(links) * flits
        return len(links)

    def flits_on(self, src: int, dst: int) -> int:
        """Traffic recorded on the directed link ``src -> dst``."""
        return self._flits.get((src, dst), 0)

    def max_flits_on(self, links: Iterable[LinkId]) -> int:
        """Heaviest recorded load among ``links`` (0 when none recorded)."""
        flit_map = self._flits
        worst = 0
        for link in links:
            count = flit_map.get(link, 0)
            if count > worst:
                worst = count
        return worst

    def links(self) -> List[Link]:
        """All links with nonzero traffic, ordered by (src, dst)."""
        return [
            Link(src, dst, flits)
            for (src, dst), flits in sorted(self._flits.items())
        ]

    def max_link_load(self) -> int:
        """Heaviest per-link flit count (congestion hot spot)."""
        return max(self._flits.values(), default=0)

    def mean_link_load(self) -> float:
        """Average flits per *used* link (0.0 if no traffic)."""
        if not self._flits:
            return 0.0
        return sum(self._flits.values()) / len(self._flits)

    def utilization(self, link: LinkId) -> float:
        """Fraction of total flit-hops carried by ``link``."""
        if self.total_flit_hops == 0:
            return 0.0
        return self._flits.get(link, 0) / self.total_flit_hops

    def merge(self, other: "TrafficMatrix") -> None:
        """Fold another matrix (e.g. from a different phase) into this one."""
        for (link, flits) in other._flits.items():
            self._flits[link] = self._flits.get(link, 0) + flits
        self.total_messages += other.total_messages
        self.total_hops += other.total_hops
        self.total_flit_hops += other.total_flit_hops

    def reset(self) -> None:
        self._flits.clear()
        self.total_messages = 0
        self.total_hops = 0
        self.total_flit_hops = 0
