"""On-chip network substrate: 2D mesh topology, XY routing, traffic, latency.

The paper's target platform (Section 2) is an ``M x N`` mesh where each node
hosts a core, a private L1, and one bank of the shared SNUCA L2.  Data
movement distance is the Manhattan distance between nodes; this package
provides that geometry plus the link-level traffic accounting and the latency
model used by the execution simulator (Figs 18 and 19), and the
:class:`~repro.noc.network.LinkStats` heatmap export that decomposes a
run's data movement onto individual links (see DESIGN.md §8).
"""

from repro.noc.topology import Coord, Mesh2D
from repro.noc.routing import mesh_links, xy_route_links, xy_route_nodes
from repro.noc.traffic import Link, TrafficMatrix
from repro.noc.network import LinkStats, NetworkModel, NetworkParams

__all__ = [
    "Coord",
    "Mesh2D",
    "mesh_links",
    "xy_route_links",
    "xy_route_nodes",
    "Link",
    "TrafficMatrix",
    "LinkStats",
    "NetworkModel",
    "NetworkParams",
]
