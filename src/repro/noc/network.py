"""Network latency model.

Message latency = per-router pipeline delay x hop count + serialization,
inflated by a congestion factor derived from the running per-link load.
This is the component isolated by the paper's Figure 19 (average and maximum
on-chip network latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.noc.topology import Mesh2D
from repro.noc.traffic import TrafficMatrix


@dataclass(frozen=True)
class NetworkParams:
    """Tunable constants of the mesh latency model.

    ``router_cycles`` is the per-hop router+link pipeline latency,
    ``serialization_cycles`` the payload serialization cost per message, and
    ``congestion_weight`` scales how strongly per-link load above the mean
    inflates latency.  Defaults approximate a KNL-class mesh (a handful of
    cycles per hop).
    """

    router_cycles: float = 3.0
    serialization_cycles: float = 1.0
    congestion_weight: float = 1.0
    congestion_reference: float = 64.0  # flits per link considered "loaded"


class NetworkModel:
    """Computes message latencies and tracks latency statistics."""

    def __init__(self, mesh: Mesh2D, params: NetworkParams = NetworkParams()):
        self.mesh = mesh
        self.params = params
        self.traffic = TrafficMatrix(mesh)
        self._latencies: List[float] = []

    def congestion_factor(self, src: int, dst: int) -> float:
        """Multiplier >= 1 reflecting load on the message's route.

        Uses the max per-link flit count already recorded along the XY route,
        normalized by ``congestion_reference``.  A quiet network returns 1.0.
        """
        from repro.noc.routing import xy_route_links_cached

        links = xy_route_links_cached(self.mesh, src, dst)
        if not links:
            return 1.0
        load = self.traffic.max_flits_on(links) / self.params.congestion_reference
        return 1.0 + self.params.congestion_weight * load

    def send(self, src: int, dst: int, flits: int = 1) -> float:
        """Record a message and return its latency in cycles.

        A local message (src == dst) costs nothing on the network.
        """
        if src == dst:
            return 0.0
        factor = self.congestion_factor(src, dst)
        hops = self.traffic.record(src, dst, flits)
        latency = factor * (
            hops * self.params.router_cycles
            + flits * self.params.serialization_cycles
        )
        self._latencies.append(latency)
        return latency

    def average_latency(self) -> float:
        """Mean latency over all non-local messages so far."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def max_latency(self) -> float:
        """Maximum message latency so far (the paper's congestion proxy)."""
        return max(self._latencies, default=0.0)

    def message_count(self) -> int:
        return len(self._latencies)

    def reset(self) -> None:
        self.traffic.reset()
        self._latencies.clear()
