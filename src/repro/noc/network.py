"""Network latency model.

Message latency = per-router pipeline delay x hop count + serialization,
inflated by a congestion factor derived from the running per-link load.
This is the component isolated by the paper's Figure 19 (average and maximum
on-chip network latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from typing import Optional

from repro.noc.routing import LinkId, Router
from repro.noc.topology import Mesh2D
from repro.noc.traffic import TrafficMatrix


@dataclass(frozen=True)
class NetworkParams:
    """Tunable constants of the mesh latency model.

    ``router_cycles`` is the per-hop router+link pipeline latency,
    ``serialization_cycles`` the payload serialization cost per message, and
    ``congestion_weight`` scales how strongly per-link load above the mean
    inflates latency.  Defaults approximate a KNL-class mesh (a handful of
    cycles per hop).
    """

    router_cycles: float = 3.0
    serialization_cycles: float = 1.0
    congestion_weight: float = 1.0
    congestion_reference: float = 64.0  # flits per link considered "loaded"


class NetworkModel:
    """Computes message latencies and tracks latency statistics."""

    def __init__(
        self,
        mesh: Mesh2D,
        params: NetworkParams = NetworkParams(),
        router: Optional[Router] = None,
    ):
        self.mesh = mesh
        self.params = params
        self.router = router
        self.traffic = TrafficMatrix(mesh, router=router)
        self._latencies: List[float] = []

    def congestion_factor(self, src: int, dst: int) -> float:
        """Multiplier >= 1 reflecting load on the message's route.

        Uses the max per-link flit count already recorded along the route
        (the fault-detoured route when a faulty router is installed),
        normalized by ``congestion_reference``.  A quiet network returns 1.0.
        """
        from repro.noc.routing import xy_route_links_cached

        router = self.router
        if router is not None and not router.healthy:
            links = router.route_links(src, dst)
        else:
            links = xy_route_links_cached(self.mesh, src, dst)
        if not links:
            return 1.0
        load = self.traffic.max_flits_on(links) / self.params.congestion_reference
        return 1.0 + self.params.congestion_weight * load

    def send(self, src: int, dst: int, flits: int = 1) -> float:
        """Record a message and return its latency in cycles.

        A local message (src == dst) costs nothing on the network.
        """
        if src == dst:
            return 0.0
        factor = self.congestion_factor(src, dst)
        hops = self.traffic.record(src, dst, flits)
        latency = factor * (
            hops * self.params.router_cycles
            + flits * self.params.serialization_cycles
        )
        self._latencies.append(latency)
        return latency

    def average_latency(self) -> float:
        """Mean latency over all non-local messages so far."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def max_latency(self) -> float:
        """Maximum message latency so far (the paper's congestion proxy)."""
        return max(self._latencies, default=0.0)

    def message_count(self) -> int:
        return len(self._latencies)

    def reset(self) -> None:
        """Clear all recorded traffic and latency statistics."""
        self.traffic.reset()
        self._latencies.clear()

    def link_stats(self) -> "LinkStats":
        """Snapshot the per-link flit volumes recorded so far."""
        return LinkStats.from_traffic(self.mesh, self.traffic)


@dataclass(frozen=True)
class LinkStats:
    """An immutable per-link flit-volume snapshot of one mesh.

    The simulator charges every data message as flit traversals on the
    directed links of its XY route (:class:`~repro.noc.traffic
    .TrafficMatrix`), and every data flit-hop is exactly one unit of the
    paper's ``DataMovement`` metric — so the volumes here *decompose* a
    run's total data movement onto individual NoC links, which is what
    lets a Fig-13-style headline number be localized to the mesh rows
    and columns that actually carry it.

    ``flits`` maps directed ``(src, dst)`` links to flit counts; links
    with zero traffic are omitted.
    """

    cols: int
    rows: int
    flits: Mapping[LinkId, int]

    @classmethod
    def from_traffic(cls, mesh: Mesh2D, traffic: TrafficMatrix) -> "LinkStats":
        """Snapshot a live traffic matrix (copies the counts)."""
        return cls(mesh.cols, mesh.rows, dict(traffic._flits))

    @classmethod
    def from_link_flits(
        cls, cols: int, rows: int, flits: Mapping[LinkId, int]
    ) -> "LinkStats":
        """Build from a raw link->flits mapping (e.g. SimMetrics.link_flits)."""
        return cls(cols, rows, dict(flits))

    def total_flit_hops(self) -> int:
        """Sum of all per-link volumes (== the run's data movement)."""
        return sum(self.flits.values())

    def node_throughput(self) -> List[int]:
        """Per-node flits leaving each node (index = node id).

        Forwarded traffic counts at every router on the route, so hot
        *through* nodes show up, not just endpoints.
        """
        out = [0] * (self.cols * self.rows)
        for (src, _dst), flits in self.flits.items():
            out[src] += flits
        return out

    def to_json(self) -> Dict:
        """The heatmap as the ``link_heatmap`` object of ``report.json``.

        Links are emitted in sorted (src, dst) order so serialized
        heatmaps from identical runs compare byte-for-byte.
        """
        return {
            "mesh": {"cols": self.cols, "rows": self.rows},
            "links": [
                {"src": src, "dst": dst, "flits": flits}
                for (src, dst), flits in sorted(self.flits.items())
            ],
            "total_flit_hops": self.total_flit_hops(),
        }

    def ascii_grid(self) -> str:
        """Render the mesh as an ASCII grid with per-link volumes.

        Nodes print as ``[id]``; the number on each horizontal/vertical
        edge is the *sum of both directions* on that physical link (the
        JSON form keeps directions separate).  Example for a 2x2 mesh::

            [  0]--  12--[  1]
              |           |
              30           0
              |           |
            [  2]--   4--[  3]
        """
        def edge(a: int, b: int) -> int:
            return self.flits.get((a, b), 0) + self.flits.get((b, a), 0)

        lines: List[str] = []
        for y in range(self.rows):
            row_parts: List[str] = []
            for x in range(self.cols):
                node = y * self.cols + x
                row_parts.append(f"[{node:>3}]")
                if x + 1 < self.cols:
                    row_parts.append(f"--{edge(node, node + 1):>4}--")
            lines.append("".join(row_parts))
            if y + 1 < self.rows:
                bars: List[str] = []
                vols: List[str] = []
                for x in range(self.cols):
                    node = y * self.cols + x
                    pad = "" if x == 0 else " " * 8
                    bars.append(pad + "  |  ")
                    vols.append(pad + f"{edge(node, node + self.cols):>4} ")
                lines.append("".join(bars))
                lines.append("".join(vols))
                lines.append("".join(bars))
        return "\n".join(lines)
