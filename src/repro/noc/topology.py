"""2D mesh topology and Manhattan-distance geometry (paper Section 2).

Nodes are labelled ``(x, y)`` exactly as in the paper's Figure 1, with ``x``
the column and ``y`` the row.  The data movement distance between nodes is

    MD(n_ij, n_xy) = |i - x| + |j - y|

which is the minimum number of mesh links a message must traverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Meshes up to this many nodes eagerly precompute the all-pairs distance
#: table at construction (covers the paper's 6x6 and every test mesh, where
#: the nested-list lookup wins on the scalar hot path).  Larger meshes
#: answer queries on demand: closed-form arithmetic per pair plus memoized
#: per-source rows, so a 16x16 (or 100x100) mesh never materializes an
#: O(nodes^2) table just to be constructed.
_EAGER_DISTANCE_NODES = 64

#: Hard cap for *explicitly requested* dense tables (:attr:`distance_table`
#: / :meth:`distance_rows` force one).  Above this the dense form is
#: refused — callers hold the sparse interface (:meth:`distance_fn`,
#: :meth:`distance_row`) instead, keeping memory bounded by design.
_DISTANCE_TABLE_MAX_NODES = 4096


@dataclass(frozen=True, order=True, slots=True)
class Coord:
    """A node location ``(x, y)`` on the mesh."""

    x: int
    y: int

    def manhattan(self, other: "Coord") -> int:
        """Minimum number of links between this node and ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __str__(self) -> str:
        return f"({self.x},{self.y})"


class Mesh2D:
    """An ``cols x rows`` mesh of nodes with row-major integer node ids.

    Node id 0 is ``(0, 0)`` (bottom-left by convention), and ids increase
    along x first:  ``node_id = y * cols + x``.
    """

    def __init__(self, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ConfigurationError(f"mesh dimensions must be >= 1, got {cols}x{rows}")
        self.cols = cols
        self.rows = rows
        self.node_count = cols * rows
        self._distance_np: Optional[np.ndarray] = None
        self._distance_rows: Optional[List[List[int]]] = None
        self._row_cache: dict = {}
        if self.node_count <= _EAGER_DISTANCE_NODES:
            self._build_distance_table()

    def _build_distance_table(self) -> None:
        ids = np.arange(self.node_count)
        xs = ids % self.cols
        ys = ids // self.cols
        table = np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        self._distance_np = table
        # Plain nested lists: scalar indexing beats NumPy item access on the
        # per-call hot path, and the values are genuine ints.
        self._distance_rows = table.tolist()

    @property
    def distance_table(self) -> np.ndarray:
        """All-pairs Manhattan distances, ``table[a, b]`` (node-id indexed).

        Dense and O(nodes^2): available on demand up to
        :data:`_DISTANCE_TABLE_MAX_NODES` nodes (differential oracles and
        tests want the whole matrix); beyond that it refuses — large-mesh
        callers use the sparse interface (:meth:`distance_fn`,
        :meth:`distance_row`) instead.
        """
        if self._distance_np is None:
            if self.node_count > _DISTANCE_TABLE_MAX_NODES:
                raise ConfigurationError(
                    f"dense distance table refused for {self.cols}x{self.rows} "
                    f"({self.node_count} nodes > cap {_DISTANCE_TABLE_MAX_NODES}); "
                    "use distance_fn()/distance_row() instead"
                )
            self._build_distance_table()
        return self._distance_np

    def distance_rows(self) -> Optional[List[List[int]]]:
        """Nested-list all-pairs distances (``rows[a][b]``), or ``None``.

        Hot compiler/simulator loops index this directly — a plain list
        lookup beats a bounds-checked method call.  ``None`` for meshes
        above the eager threshold (they never materialized the table);
        callers keep :meth:`distance` / :meth:`distance_fn` there.
        """
        return self._distance_rows

    def distance_fn(self) -> Callable[[int, int], int]:
        """Fastest available ``(a, b) -> hops`` callable for valid node ids.

        Small meshes return a nested-list table lookup (bit-identical to
        the historical eager-table behaviour); large meshes return a
        closed-form callable — O(1) arithmetic per query, no O(nodes^2)
        state.  Both compute the same pure Manhattan values.
        """
        rows = self._distance_rows
        if rows is not None:
            return lambda a, b: rows[a][b]
        cols = self.cols

        def manhattan(a: int, b: int) -> int:
            ay, ax = divmod(a, cols)
            by, bx = divmod(b, cols)
            return abs(ax - bx) + abs(ay - by)

        return manhattan

    def distance_row(self, node_id: int) -> np.ndarray:
        """Distances from ``node_id`` to every node (memoized per source).

        The sparse/on-demand complement of :attr:`distance_table` for
        vectorized consumers on large meshes: each requested source costs
        O(nodes) once and is cached, so touching ``k`` sources stores
        ``k * nodes`` entries instead of ``nodes^2``.
        """
        cached = self._row_cache.get(node_id)
        if cached is not None:
            return cached
        self._check_id(node_id)
        ids = np.arange(self.node_count)
        row = np.abs(ids % self.cols - node_id % self.cols) + np.abs(
            ids // self.cols - node_id // self.cols
        )
        self._row_cache[node_id] = row
        return row

    def coord_of(self, node_id: int) -> Coord:
        """Coordinate of ``node_id`` (row-major)."""
        self._check_id(node_id)
        return Coord(node_id % self.cols, node_id // self.cols)

    def id_of(self, coord: Coord) -> int:
        """Node id of ``coord``."""
        if not self.contains(coord):
            raise ConfigurationError(f"coordinate {coord} outside {self.cols}x{self.rows} mesh")
        return coord.y * self.cols + coord.x

    def contains(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.cols and 0 <= coord.y < self.rows

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance (hop count) between node ids ``a`` and ``b``."""
        rows = self._distance_rows
        if rows is not None and 0 <= a < self.node_count and 0 <= b < self.node_count:
            return rows[a][b]
        return self.coord_of(a).manhattan(self.coord_of(b))

    def coords(self) -> Iterator[Coord]:
        """All node coordinates in id order."""
        for node_id in range(self.node_count):
            yield self.coord_of(node_id)

    def neighbors(self, node_id: int) -> List[int]:
        """Node ids adjacent (one link away) to ``node_id``."""
        c = self.coord_of(node_id)
        result = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            n = Coord(c.x + dx, c.y + dy)
            if self.contains(n):
                result.append(self.id_of(n))
        return result

    def corner_ids(self) -> Tuple[int, int, int, int]:
        """The four corner node ids (paper attaches MCs to the corners)."""
        return (
            self.id_of(Coord(0, 0)),
            self.id_of(Coord(self.cols - 1, 0)),
            self.id_of(Coord(0, self.rows - 1)),
            self.id_of(Coord(self.cols - 1, self.rows - 1)),
        )

    def quadrant_of(self, node_id: int) -> int:
        """Quadrant index 0..3 of a node (used by KNL quadrant/SNC-4 modes).

        Quadrants split the mesh at the column/row midpoints; for odd
        dimensions the extra column/row joins the higher quadrant, which
        keeps every node in exactly one quadrant.
        """
        c = self.coord_of(node_id)
        half_x = self.cols // 2
        half_y = self.rows // 2
        qx = 0 if c.x < half_x else 1
        qy = 0 if c.y < half_y else 1
        return qy * 2 + qx

    def nodes_in_quadrant(self, quadrant: int) -> List[int]:
        """All node ids whose :meth:`quadrant_of` equals ``quadrant``."""
        if not 0 <= quadrant <= 3:
            raise ConfigurationError(f"quadrant must be 0..3, got {quadrant}")
        return [n for n in range(self.node_count) if self.quadrant_of(n) == quadrant]

    def diameter(self) -> int:
        """Longest shortest-path distance on the mesh."""
        return (self.cols - 1) + (self.rows - 1)

    def center_id(self) -> int:
        """Id of the (floor-)central node."""
        return self.id_of(Coord(self.cols // 2, self.rows // 2))

    def __repr__(self) -> str:
        return f"Mesh2D({self.cols}x{self.rows})"

    def _check_id(self, node_id: int) -> None:
        if not 0 <= node_id < self.node_count:
            raise ConfigurationError(
                f"node id {node_id} outside mesh with {self.node_count} nodes"
            )
