"""Dimension-ordered (XY) routing over the 2D mesh.

KNL's mesh routes packets first along rows then along columns; we use the
same deterministic XY routing so two messages between the same endpoints
always use the same links, which is what makes the paper's "overlapping
network paths" observation (Figure 3) well defined.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.topology import Coord, Mesh2D

# A link is a directed pair of adjacent node ids.
LinkId = Tuple[int, int]


def mesh_links(mesh: Mesh2D) -> List[LinkId]:
    """Every directed link of ``mesh``, sorted by (src, dst).

    A ``cols x rows`` mesh has ``2 * (cols*(rows-1) + rows*(cols-1))``
    directed links; any link a route can traverse is in this list, so it
    is the canonical domain for per-link accounting (heatmaps, schema
    validation of ``report.json``).
    """
    links: List[LinkId] = []
    for src in range(mesh.node_count):
        for dst in mesh.neighbors(src):
            links.append((src, dst))
    links.sort()
    return links


def xy_route_nodes(mesh: Mesh2D, src: int, dst: int) -> List[int]:
    """The node ids visited routing from ``src`` to ``dst`` (inclusive).

    X dimension is corrected first, then Y, matching hardware XY routing.
    """
    path = [src]
    cur = mesh.coord_of(src)
    target = mesh.coord_of(dst)
    while cur.x != target.x:
        step = 1 if target.x > cur.x else -1
        cur = Coord(cur.x + step, cur.y)
        path.append(mesh.id_of(cur))
    while cur.y != target.y:
        step = 1 if target.y > cur.y else -1
        cur = Coord(cur.x, cur.y + step)
        path.append(mesh.id_of(cur))
    return path


def xy_route_links(mesh: Mesh2D, src: int, dst: int) -> List[LinkId]:
    """The directed links traversed routing from ``src`` to ``dst``.

    The length of the returned list equals the Manhattan distance, so link
    accounting and the paper's data-movement metric agree by construction.
    """
    return list(xy_route_links_cached(mesh, src, dst))


#: Per-mesh route caches stop growing past this many (src, dst) pairs — a
#: memory bound for very large meshes; real mesh sizes (n^2 pairs) fit.
_ROUTE_CACHE_LIMIT = 65536


def xy_route_links_cached(mesh: Mesh2D, src: int, dst: int) -> Tuple[LinkId, ...]:
    """Immutable memoized link route — the hot-path variant.

    XY routes are pure functions of the endpoints and a mesh has at most
    ``node_count**2`` of them, so each is walked once per mesh and the
    resulting tuple shared by every later message between the same pair
    (the simulator routes the same endpoints millions of times).
    """
    cache = getattr(mesh, "_xy_link_cache", None)
    if cache is None:
        cache = {}
        mesh._xy_link_cache = cache
    route = cache.get((src, dst))
    if route is None:
        nodes = xy_route_nodes(mesh, src, dst)
        route = tuple((nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1))
        if len(cache) < _ROUTE_CACHE_LIMIT:
            cache[(src, dst)] = route
    return route
