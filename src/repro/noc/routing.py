"""Dimension-ordered (XY) routing over the 2D mesh, plus fault detours.

KNL's mesh routes packets first along rows then along columns; we use the
same deterministic XY routing so two messages between the same endpoints
always use the same links, which is what makes the paper's "overlapping
network paths" observation (Figure 3) well defined.

:class:`Router` layers graceful degradation on top (DESIGN.md section 9):
when a :class:`~repro.faults.plan.FaultPlan` marks links or tiles dead,
routes detour — first trying the orthogonal YX dimension order (the
O1TURN trick: between any pair the XY and YX paths are link-disjoint
except at the endpoints, so a single dead link never kills both), then
falling back to a deterministic BFS shortest path over the surviving
graph.  Every route, detoured or not, is a walk over live mesh links, so
per-link accounting still decomposes data movement exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro import check
from repro.errors import FaultError
from repro.noc.topology import Coord, Mesh2D

# A link is a directed pair of adjacent node ids.
LinkId = Tuple[int, int]


def mesh_links(mesh: Mesh2D) -> List[LinkId]:
    """Every directed link of ``mesh``, sorted by (src, dst).

    A ``cols x rows`` mesh has ``2 * (cols*(rows-1) + rows*(cols-1))``
    directed links; any link a route can traverse is in this list, so it
    is the canonical domain for per-link accounting (heatmaps, schema
    validation of ``report.json``).
    """
    links: List[LinkId] = []
    for src in range(mesh.node_count):
        for dst in mesh.neighbors(src):
            links.append((src, dst))
    links.sort()
    return links


def xy_route_nodes(mesh: Mesh2D, src: int, dst: int) -> List[int]:
    """The node ids visited routing from ``src`` to ``dst`` (inclusive).

    X dimension is corrected first, then Y, matching hardware XY routing.
    """
    path = [src]
    cur = mesh.coord_of(src)
    target = mesh.coord_of(dst)
    while cur.x != target.x:
        step = 1 if target.x > cur.x else -1
        cur = Coord(cur.x + step, cur.y)
        path.append(mesh.id_of(cur))
    while cur.y != target.y:
        step = 1 if target.y > cur.y else -1
        cur = Coord(cur.x, cur.y + step)
        path.append(mesh.id_of(cur))
    return path


def xy_route_links(mesh: Mesh2D, src: int, dst: int) -> List[LinkId]:
    """The directed links traversed routing from ``src`` to ``dst``.

    The length of the returned list equals the Manhattan distance, so link
    accounting and the paper's data-movement metric agree by construction.
    """
    return list(xy_route_links_cached(mesh, src, dst))


#: Per-mesh route caches stop growing past this many (src, dst) pairs — a
#: memory bound for very large meshes; real mesh sizes (n^2 pairs) fit.
_ROUTE_CACHE_LIMIT = 65536


def xy_route_links_cached(mesh: Mesh2D, src: int, dst: int) -> Tuple[LinkId, ...]:
    """Immutable memoized link route — the hot-path variant.

    XY routes are pure functions of the endpoints and a mesh has at most
    ``node_count**2`` of them, so each is walked once per mesh and the
    resulting tuple shared by every later message between the same pair
    (the simulator routes the same endpoints millions of times).
    """
    cache = getattr(mesh, "_xy_link_cache", None)
    if cache is None:
        cache = {}
        mesh._xy_link_cache = cache
    route = cache.get((src, dst))
    if route is None:
        nodes = xy_route_nodes(mesh, src, dst)
        route = tuple((nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1))
        if len(cache) < _ROUTE_CACHE_LIMIT:
            cache[(src, dst)] = route
    return route


def yx_route_nodes(mesh: Mesh2D, src: int, dst: int) -> List[int]:
    """The YX (column-first) route — O1TURN's second dimension order."""
    path = [src]
    cur = mesh.coord_of(src)
    target = mesh.coord_of(dst)
    while cur.y != target.y:
        step = 1 if target.y > cur.y else -1
        cur = Coord(cur.x, cur.y + step)
        path.append(mesh.id_of(cur))
    while cur.x != target.x:
        step = 1 if target.x > cur.x else -1
        cur = Coord(cur.x + step, cur.y)
        path.append(mesh.id_of(cur))
    return path


def _links_of(nodes: List[int]) -> Tuple[LinkId, ...]:
    return tuple((nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1))


class Router:
    """Fault-aware route oracle over one mesh.

    With no faults installed the router is transparent: it answers from
    the shared per-mesh XY cache and :meth:`hops` is the Manhattan
    distance, so healthy runs are bit-identical to the pre-fault code.

    With faults, :meth:`route_links` returns the detour route (XY if
    clean, else YX, else BFS over the surviving graph) and :meth:`hops`
    its true link count — which is what both the congestion model and the
    data-movement accounting must use for the heatmap invariant
    (per-link flits summing exactly to ``DataMovement``) to keep holding.

    The detour cache is invalidated whenever the fault set changes; the
    ``epoch`` counter names the current fault configuration, so consumers
    that key anything on routes can compare epochs.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        dead_links: Iterable[LinkId] = (),
        dead_nodes: Iterable[int] = (),
    ):
        self.mesh = mesh
        self.epoch = 0
        self._cache: Dict[Tuple[int, int], Tuple[LinkId, ...]] = {}
        self.dead_links: FrozenSet[LinkId] = frozenset()
        self.dead_nodes: FrozenSet[int] = frozenset()
        self._distance = mesh.distance
        if dead_links or dead_nodes:
            self.set_faults(dead_links, dead_nodes)

    @property
    def healthy(self) -> bool:
        """True when no link or node faults are installed."""
        return not self.dead_links and not self.dead_nodes

    def set_faults(
        self, dead_links: Iterable[LinkId], dead_nodes: Iterable[int]
    ) -> int:
        """Install a new fault configuration; returns the new epoch.

        Dead links are directed ids (a failed physical link contributes
        both directions).  Links touching a dead node are implied dead.
        The route cache is dropped — detours computed under the previous
        epoch are no longer valid.
        """
        self.dead_nodes = frozenset(dead_nodes)
        dead = set(dead_links)
        for node in self.dead_nodes:
            for neighbor in self.mesh.neighbors(node):
                dead.add((node, neighbor))
                dead.add((neighbor, node))
        self.dead_links = frozenset(dead)
        self._cache.clear()
        self.epoch += 1
        if check.enabled():
            # Check mode: audit the new configuration's detours against
            # Floyd-Warshall before any consumer routes through them.
            from repro.check.invariants import check_router_distances

            check_router_distances(self)
        return self.epoch

    def alive(self, node: int) -> bool:
        return node not in self.dead_nodes

    def route_links(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        """The directed links a message traverses from ``src`` to ``dst``."""
        if self.healthy:
            return xy_route_links_cached(self.mesh, src, dst)
        if src == dst:
            return ()
        route = self._cache.get((src, dst))
        if route is None:
            route = self._compute(src, dst)
            if len(self._cache) < _ROUTE_CACHE_LIMIT:
                self._cache[(src, dst)] = route
        return route

    def route_nodes(self, src: int, dst: int) -> List[int]:
        """Node ids visited from ``src`` to ``dst`` (inclusive)."""
        nodes = [src]
        nodes.extend(link[1] for link in self.route_links(src, dst))
        return nodes

    def hops(self, src: int, dst: int) -> int:
        """True link count of the (possibly detoured) route."""
        if self.healthy:
            return self._distance(src, dst)
        if src == dst:
            return 0
        return len(self.route_links(src, dst))

    def hops_fn(self):
        """Fastest available ``(a, b) -> hops`` callable."""
        if self.healthy:
            return self.mesh.distance_fn()
        return self.hops

    def _clean(self, links: Tuple[LinkId, ...]) -> bool:
        dead = self.dead_links
        return not any(link in dead for link in links)

    def _compute(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        if src in self.dead_nodes or dst in self.dead_nodes:
            raise FaultError(
                f"route endpoint on offline tile: {src} -> {dst} "
                f"(dead: {sorted(self.dead_nodes)})"
            )
        xy = xy_route_links_cached(self.mesh, src, dst)
        if self._clean(xy):
            return xy
        yx = _links_of(yx_route_nodes(self.mesh, src, dst))
        if self._clean(yx):
            return yx
        return self._bfs(src, dst)

    def _bfs(self, src: int, dst: int) -> Tuple[LinkId, ...]:
        """Deterministic shortest path over the surviving graph.

        Breadth-first with neighbors expanded in the mesh's fixed
        (+x, -x, +y, -y) order, so identical fault sets always yield
        identical detours.
        """
        mesh = self.mesh
        dead_links = self.dead_links
        parent: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            if node == dst:
                break
            for neighbor in mesh.neighbors(node):
                if neighbor in parent or (node, neighbor) in dead_links:
                    continue
                parent[neighbor] = node
                queue.append(neighbor)
        if dst not in parent:
            raise FaultError(
                f"no surviving route {src} -> {dst}: the fault plan "
                "disconnects the mesh"
            )
        nodes = [dst]
        while nodes[-1] != src:
            nodes.append(parent[nodes[-1]])
        nodes.reverse()
        return _links_of(nodes)

    def check_connected(self, alive_nodes: Optional[Iterable[int]] = None) -> None:
        """Raise :class:`FaultError` unless all live tiles stay connected."""
        nodes = (
            sorted(alive_nodes)
            if alive_nodes is not None
            else [n for n in range(self.mesh.node_count) if self.alive(n)]
        )
        if not nodes:
            raise FaultError("fault plan kills every tile")
        seen = {nodes[0]}
        queue = deque([nodes[0]])
        targets = set(nodes)
        dead_links = self.dead_links
        while queue:
            node = queue.popleft()
            for neighbor in self.mesh.neighbors(node):
                if (
                    neighbor in seen
                    or neighbor in self.dead_nodes
                    or (node, neighbor) in dead_links
                ):
                    continue
                seen.add(neighbor)
                queue.append(neighbor)
        missing = targets - seen
        if missing:
            raise FaultError(
                f"fault plan disconnects the mesh: tiles {sorted(missing)} "
                "are unreachable from the surviving network"
            )
