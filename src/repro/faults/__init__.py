"""Fault injection & graceful degradation (see DESIGN.md section 9).

Real KNL-class parts ship with disabled tiles, failed mesh links, and
partially-degraded memory channels; the partitioner's data-movement
minimization has to keep working on that imperfect machine.  This package
provides the deterministic :class:`~repro.faults.plan.FaultPlan` input
format; the machine consumes a plan through
:meth:`repro.arch.machine.Machine.apply_faults`, which re-homes L2 banks
off dead tiles, wires fault-aware detour routing into the NoC, excludes
offline tiles from placement, and arms the simulator's mid-run
relocation/retry path.
"""

from repro.faults.plan import (
    PLAN_VERSION,
    ChannelDegrade,
    FaultPlan,
    LinkFault,
    NodeFault,
    random_plan,
)

__all__ = [
    "PLAN_VERSION",
    "ChannelDegrade",
    "FaultPlan",
    "LinkFault",
    "NodeFault",
    "random_plan",
]
