"""Deterministic fault plans (the degradation subsystem's input).

A :class:`FaultPlan` describes every hardware defect one run should model:

* **link faults** — a physical mesh link is down; both directions of the
  link stop carrying traffic and routes detour around it;
* **node faults** — a tile is offline; its core executes nothing, its L2
  bank is re-homed to the nearest healthy tile, and no route may pass
  through it;
* **channel degradations** — an MCDRAM/DDR channel answers at a latency
  multiple of its healthy speed (partially-failed stacks on real parts).

Link and node faults carry an ``at_unit`` activation epoch: ``0`` means
the fault exists before the run starts (the compiler sees it and plans
around it); ``at_unit = k > 0`` means the fault strikes after the
simulator has completed ``k`` subcomputations, which exercises mid-run
relocation and route-cache invalidation.

Plans are plain JSON documents so they can be versioned next to the
experiment configs::

    {
      "version": 1,
      "seed": 42,
      "links": [{"src": 1, "dst": 2}, {"src": 5, "dst": 9, "at_unit": 64}],
      "nodes": [{"node": 10}],
      "channels": [{"channel": 2, "latency_factor": 2.5}]
    }

Serialization is canonical (sorted keys, sorted fault entries), so a plan
round-trips through JSON byte-for-byte — seeded plans are reproducible
artifacts, not ephemeral state.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import FaultError

PLAN_VERSION = 1

#: (src, dst) directed link id, matching :mod:`repro.noc.routing`.
LinkId = Tuple[int, int]


@dataclass(frozen=True, order=True)
class LinkFault:
    """One failed mesh link (undirected: both directions stop working)."""

    src: int
    dst: int
    at_unit: int = 0

    def directed(self) -> Tuple[LinkId, LinkId]:
        """Both directed link ids killed by this fault."""
        return ((self.src, self.dst), (self.dst, self.src))


@dataclass(frozen=True, order=True)
class NodeFault:
    """One offline tile (core + L2 bank + router all unavailable)."""

    node: int
    at_unit: int = 0


@dataclass(frozen=True, order=True)
class ChannelDegrade:
    """A memory channel running at ``latency_factor`` x healthy latency."""

    channel: int
    latency_factor: float = 2.0


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic description of one machine's defects."""

    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    nodes: Tuple[NodeFault, ...] = ()
    channels: Tuple[ChannelDegrade, ...] = ()
    description: str = ""

    def __post_init__(self):
        # Canonicalize entry order so equality, fingerprints, and JSON
        # round-trips are insensitive to construction order.
        object.__setattr__(self, "links", tuple(sorted(self.links)))
        object.__setattr__(self, "nodes", tuple(sorted(self.nodes)))
        object.__setattr__(self, "channels", tuple(sorted(self.channels)))

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the plan describes a perfectly healthy machine."""
        return not (self.links or self.nodes or self.channels)

    def static_dead_links(self) -> FrozenSet[LinkId]:
        """Directed links already down before the run starts."""
        dead: Set[LinkId] = set()
        for fault in self.links:
            if fault.at_unit <= 0:
                dead.update(fault.directed())
        return frozenset(dead)

    def static_dead_nodes(self) -> FrozenSet[int]:
        """Tiles already offline before the run starts."""
        return frozenset(f.node for f in self.nodes if f.at_unit <= 0)

    def all_dead_links(self) -> FrozenSet[LinkId]:
        """Every directed link that is down at any point of the run."""
        dead: Set[LinkId] = set()
        for fault in self.links:
            dead.update(fault.directed())
        return frozenset(dead)

    def all_dead_nodes(self) -> FrozenSet[int]:
        """Every tile that is offline at any point of the run."""
        return frozenset(f.node for f in self.nodes)

    def midrun_events(self) -> List[Tuple[int, object]]:
        """Faults that strike mid-run, sorted by (at_unit, fault).

        Returns ``(at_unit, fault)`` pairs where ``fault`` is a
        :class:`LinkFault` or :class:`NodeFault` with ``at_unit > 0``.
        """
        events: List[Tuple[int, object]] = []
        for fault in self.links:
            if fault.at_unit > 0:
                events.append((fault.at_unit, fault))
        for fault in self.nodes:
            if fault.at_unit > 0:
                events.append((fault.at_unit, fault))
        events.sort(key=lambda e: (e[0], repr(e[1])))
        return events

    def channel_factors(self) -> Dict[int, float]:
        """channel index -> latency multiplier (absent = healthy)."""
        return {c.channel: c.latency_factor for c in self.channels}

    # -- serialization -----------------------------------------------------

    def to_json(self) -> Dict:
        """Canonical JSON-safe dict (sorted entries; round-trips exactly)."""
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "description": self.description,
            "links": [
                {"src": f.src, "dst": f.dst, "at_unit": f.at_unit}
                for f in sorted(self.links)
            ],
            "nodes": [
                {"node": f.node, "at_unit": f.at_unit} for f in sorted(self.nodes)
            ],
            "channels": [
                {"channel": c.channel, "latency_factor": c.latency_factor}
                for c in sorted(self.channels)
            ],
        }

    def dumps(self) -> str:
        """Canonical JSON text (stable key order, trailing newline)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def dump(self, path: str) -> None:
        """Write the canonical JSON form to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.dumps())

    @classmethod
    def from_json(cls, data: Dict) -> "FaultPlan":
        """Parse a plan dict; raises :class:`FaultError` on malformed input."""
        if not isinstance(data, dict):
            raise FaultError(f"fault plan must be a JSON object, got {type(data).__name__}")
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise FaultError(f"unsupported fault plan version {version!r}")
        known = {"version", "seed", "description", "links", "nodes", "channels"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultError(
                f"unknown fault plan field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        try:
            links = tuple(
                sorted(
                    LinkFault(int(e["src"]), int(e["dst"]), int(e.get("at_unit", 0)))
                    for e in data.get("links", ())
                )
            )
            nodes = tuple(
                sorted(
                    NodeFault(int(e["node"]), int(e.get("at_unit", 0)))
                    for e in data.get("nodes", ())
                )
            )
            channels = tuple(
                sorted(
                    ChannelDegrade(
                        int(e["channel"]), float(e.get("latency_factor", 2.0))
                    )
                    for e in data.get("channels", ())
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault plan entry: {exc}") from exc
        return cls(
            seed=int(data.get("seed", 0)),
            links=links,
            nodes=nodes,
            channels=channels,
            description=str(data.get("description", "")),
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_json(json.loads(text))
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        try:
            with open(path) as fh:
                return cls.loads(fh.read())
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path!r}: {exc}") from exc

    def fingerprint(self) -> str:
        """Short stable content hash (memoization keys, report provenance)."""
        digest = hashlib.sha256(
            json.dumps(self.to_json(), sort_keys=True).encode()
        ).hexdigest()
        return digest[:16]


def random_plan(
    cols: int,
    rows: int,
    seed: int = 0,
    link_count: int = 2,
    node_count: int = 1,
    degraded_channel_count: int = 1,
    latency_factor: float = 2.5,
    protected_nodes: Sequence[int] = (),
    midrun_node_at: Optional[int] = None,
) -> FaultPlan:
    """A seeded, reproducible fault plan for a ``cols x rows`` mesh.

    Picks ``link_count`` distinct physical links and ``node_count`` tiles
    (never from ``protected_nodes`` — callers pass the MC/EDC nodes, which
    must stay reachable), plus ``degraded_channel_count`` degraded memory
    channels.  The same arguments always produce the same plan.

    ``midrun_node_at``, when given, makes the *last* chosen node fault
    strike after that many completed units instead of before the run.
    """
    rng = random.Random(seed)
    node_total = cols * rows
    protected = set(protected_nodes)

    all_links: List[Tuple[int, int]] = []
    for node in range(node_total):
        x, y = node % cols, node // cols
        if x + 1 < cols:
            all_links.append((node, node + 1))
        if y + 1 < rows:
            all_links.append((node, node + cols))
    eligible_nodes = [n for n in range(node_total) if n not in protected]
    if node_count > len(eligible_nodes):
        raise FaultError(
            f"cannot pick {node_count} faulty nodes from "
            f"{len(eligible_nodes)} unprotected tiles"
        )
    if link_count > len(all_links):
        raise FaultError(f"mesh has only {len(all_links)} links")

    chosen_nodes = sorted(rng.sample(eligible_nodes, node_count))
    # Avoid links touching protected nodes so corner MCs / edge EDCs never
    # lose their last attachment on small meshes.
    safe_links = [
        (a, b)
        for (a, b) in all_links
        if a not in protected and b not in protected
    ] or all_links
    chosen_links = sorted(rng.sample(safe_links, min(link_count, len(safe_links))))
    chosen_channels = sorted(rng.sample(range(4), min(degraded_channel_count, 4)))

    node_faults = []
    for i, node in enumerate(chosen_nodes):
        at_unit = 0
        if midrun_node_at is not None and i == len(chosen_nodes) - 1:
            at_unit = midrun_node_at
        node_faults.append(NodeFault(node, at_unit))
    return FaultPlan(
        seed=seed,
        links=tuple(LinkFault(a, b) for (a, b) in chosen_links),
        nodes=tuple(node_faults),
        channels=tuple(
            ChannelDegrade(c, latency_factor) for c in chosen_channels
        ),
        description=f"random_plan(seed={seed}, {cols}x{rows})",
    )
