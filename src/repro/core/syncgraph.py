"""Synchronization graph and transitive-closure minimization (Section 4.5).

Each subcomputation instance is a node; a synchronization arc runs from a
producer to the consumer that must wait for its result (cross-node child
results, plus inter-statement dependences inside a window).  Following the
paper's Midkiff/Padua-style strategy, an arc is *redundant* when a chain of
other arcs already orders the pair — e.g. with sub1 -> sub2 -> ... -> subr
in place, a direct sub1 -> subr arc adds nothing and is dropped.

Arcs must respect creation order (producer uid < consumer uid), which makes
the graph a DAG topologically sorted by uid; reachability is computed with
per-node bitmasks in one reverse sweep.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set, Tuple

from repro.errors import SchedulingError


class SyncGraph:
    """A DAG of synchronization arcs with transitive reduction."""

    def __init__(self):
        self._succ: Dict[int, Set[int]] = {}
        self.arcs_added = 0

    def add_arc(self, producer: int, consumer: int) -> None:
        """Record that ``consumer`` must wait for ``producer``."""
        if producer == consumer:
            raise SchedulingError(f"self-synchronization on subcomputation {producer}")
        successors = self._succ.setdefault(producer, set())
        if consumer not in successors:
            successors.add(consumer)
            self.arcs_added += 1

    def arc_count(self) -> int:
        """Number of synchronization arcs currently in the graph."""
        return sum(len(s) for s in self._succ.values())

    def arcs(self) -> List[Tuple[int, int]]:
        """All arcs as (producer uid, consumer uid) pairs."""
        out = []
        for producer in sorted(self._succ):
            for consumer in sorted(self._succ[producer]):
                out.append((producer, consumer))
        return out

    def minimize(self) -> int:
        """Drop redundant arcs (transitive reduction); returns #removed.

        An arc (u, v) is removed when v is reachable from u through another
        successor of u.  Reachability bitmasks are computed in reverse
        topological order (the graph is a DAG by construction: a consumed
        subcomputation is closed and can never gain new inputs).
        """
        nodes: Set[int] = set(self._succ)
        for successors in self._succ.values():
            nodes.update(successors)
        # Uids can be large and sparse; bitmasks index dense positions.
        position = {node: i for i, node in enumerate(sorted(nodes))}
        reach: Dict[int, int] = {}
        for node in self._reverse_topological(nodes):
            mask = 1 << position[node]
            for successor in self._succ.get(node, ()):
                mask |= reach.get(successor, 1 << position[successor])
            reach[node] = mask

        removed = 0
        for node in sorted(self._succ):
            successors = sorted(self._succ[node])
            keep: Set[int] = set(successors)
            for candidate in successors:
                others = 0
                for other in keep:
                    if other != candidate:
                        others |= reach.get(other, 1 << position[other])
                if (others >> position[candidate]) & 1:
                    keep.discard(candidate)
                    removed += 1
            self._succ[node] = keep
        return removed

    def minimize_in(self, session) -> int:
        """Minimize under a session's pipeline shape; returns the arc count.

        This is the inline ``sync_minimize`` pass: a session that skips it
        (``--skip-pass sync_minimize``) leaves every arc in place, a
        present session is charged the wall time, and check mode audits
        the result against the reference transitive reduction.  ``None``
        (bare API use, no pipeline) minimizes unconditionally, untimed.
        """
        from repro import check

        if session is not None and not session.pass_enabled("sync_minimize"):
            return self.arc_count()
        arcs_before = self.arcs() if check.enabled() else None
        if session is not None:
            started = time.perf_counter()
            self.minimize()
            session.add_pass_seconds(
                "sync_minimize", time.perf_counter() - started
            )
        else:
            self.minimize()
        if arcs_before is not None:
            # Check mode: the bitmask sweep must produce exactly the
            # unique transitive reduction of the arcs it was handed.
            from repro.check import invariants

            invariants.check_syncgraph_minimized(arcs_before, self.arcs())
        return self.arc_count()

    def _reverse_topological(self, nodes: Set[int]) -> List[int]:
        """Nodes in reverse topological order (iterative DFS post-order)."""
        visited: Set[int] = set()
        order: List[int] = []
        for start in sorted(nodes):
            if start in visited:
                continue
            stack: List[Tuple[int, bool]] = [(start, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if node in visited:
                    continue
                visited.add(node)
                stack.append((node, True))
                for successor in sorted(self._succ.get(node, ()), reverse=True):
                    if successor not in visited:
                        stack.append((successor, False))
        return order

    def merge(self, other: "SyncGraph") -> None:
        """Absorb ``other``'s arcs into this graph."""
        for producer, successors in other._succ.items():
            for consumer in successors:
                self.add_arc(producer, consumer)
