"""Kruskal's minimum-spanning-tree over mesh nodes (paper Section 3.2).

The graph's vertices are mesh nodes holding a statement's data, edges are
weighted by Manhattan distance, and the MST's total weight is the minimum
data movement.  Hierarchical use (nested operand sets) passes a shared
:class:`~repro.utils.union_find.UnionFind` so already-processed inner sets
enter the next level as single components, exactly as Algorithm 1 keeps
``MSTedges`` across ``Vset`` levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.union_find import UnionFind


@dataclass(frozen=True, slots=True)
class MstEdge:
    """An accepted MST edge between two mesh nodes."""

    a: int
    b: int
    weight: int


def kruskal(
    vertices: Sequence[int],
    distance: Callable[[int, int], int],
    union_find: Optional[UnionFind] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[MstEdge]:
    """Connect ``vertices`` with minimum total ``distance``.

    ``union_find`` lets callers pre-join vertices (hierarchical levels);
    vertices already connected contribute no edge.  Ties between equal
    weights are broken by the deterministic (a, b) order unless ``rng`` is
    given, in which case equal-weight runs are shuffled — the paper breaks
    ties randomly (Section 5), and the rng keeps that reproducible.
    """
    uf = union_find if union_find is not None else UnionFind()
    for vertex in vertices:
        uf.add(vertex)

    edges: List[Tuple[int, int, int]] = []
    ordered = sorted(set(vertices))
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            edges.append((distance(a, b), a, b))
    edges.sort()

    if rng is not None:
        edges = _shuffle_ties(edges, rng)

    accepted: List[MstEdge] = []
    for weight, a, b in edges:
        if uf.union(a, b):
            accepted.append(MstEdge(a, b, weight))
    return accepted


def _shuffle_ties(
    edges: List[Tuple[int, int, int]], rng: np.random.Generator
) -> List[Tuple[int, int, int]]:
    """Shuffle runs of equal-weight edges in place, preserving weight order."""
    result: List[Tuple[int, int, int]] = []
    run: List[Tuple[int, int, int]] = []
    current_weight: Optional[int] = None
    for edge in edges:
        if current_weight is None or edge[0] == current_weight:
            run.append(edge)
            current_weight = edge[0]
        else:
            rng.shuffle(run)  # type: ignore[arg-type]
            result.extend(run)
            run = [edge]
            current_weight = edge[0]
    if run:
        rng.shuffle(run)  # type: ignore[arg-type]
        result.extend(run)
    return result


def tree_weight(edges: Sequence[MstEdge]) -> int:
    """Total weight of a set of MST edges (the data-movement metric)."""
    return sum(edge.weight for edge in edges)
