"""The paper's contribution: NDP-aware subcomputation partitioning.

Pipeline (Algorithm 1):

1. :mod:`repro.core.locator` — data location detection (``GetNode``): SNUCA
   home bank from the address bits, memory controller when the L2 miss
   predictor says the data is off chip, L1 copies from the
   ``variable2node_map`` built by previously scheduled subcomputations.
2. :mod:`repro.core.splitter` — single statement splitting: hierarchical
   Kruskal MST over the statement's nested operand sets.
3. :mod:`repro.core.scheduler` — subcomputation scheduling: leaf-to-root
   combines with load balancing and value-location tracking.
4. :mod:`repro.core.window` — multi-statement windows with L1-reuse modeling
   and the adaptive per-nest window-size search.
5. :mod:`repro.core.syncgraph` — synchronization arcs + transitive-closure
   minimization.
6. :mod:`repro.core.codegen` — per-node generated code (paper Figure 8).
7. :mod:`repro.core.partitioner` — the ``NdpPartitioner`` facade tying it
   all together.
"""

from repro.core.locator import DataLocator, Location, VariableToNodeMap
from repro.core.mst import MstEdge, kruskal
from repro.core.balancer import LoadBalancer, OP_COSTS
from repro.core.subcomputation import GatheredInput, SubResult, Subcomputation
from repro.core.splitter import split_statement, StatementSplit
from repro.core.scheduler import StatementSchedule, schedule_statement
from repro.core.window import (
    NestSchedule,
    WindowConfig,
    WindowScheduler,
    WindowSizeSearch,
)
from repro.core.syncgraph import SyncGraph
from repro.core.codegen import GeneratedCode, generate_code
from repro.core.partitioner import NdpPartitioner, PartitionResult, PartitionConfig

__all__ = [
    "DataLocator",
    "Location",
    "VariableToNodeMap",
    "MstEdge",
    "kruskal",
    "LoadBalancer",
    "OP_COSTS",
    "GatheredInput",
    "SubResult",
    "Subcomputation",
    "split_statement",
    "StatementSplit",
    "StatementSchedule",
    "schedule_statement",
    "NestSchedule",
    "WindowConfig",
    "WindowScheduler",
    "WindowSizeSearch",
    "SyncGraph",
    "GeneratedCode",
    "generate_code",
    "NdpPartitioner",
    "PartitionResult",
    "PartitionConfig",
]
