"""Single statement splitting (paper Section 4.2, Algorithm 1 lines 1-32).

For one statement instance:

1. parse the RHS into nested operand sets (``variable_parsing``);
2. resolve every leaf operand to mesh-node candidates via ``GetNode``
   (L1 copies from the ``variable2node_map`` first, then home bank or MC);
3. innermost set first, run Kruskal's algorithm over the set's members,
   treating already-processed inner sets as single components whose
   attachment points are *all* their member nodes (an edge to a component
   costs the minimum distance to any member, paper Figure 10's edge ③);
4. the store target joins the outermost set — the result is never migrated,
   so the spanning tree is anchored at the output's home node.

The output is a :class:`StatementSplit`: the leaf locations, the accepted
MST edges (whose total weight is the paper's data-movement metric), and the
ordered :class:`MergeStep` log that the scheduler turns into
subcomputations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.locator import DataLocator, Location, VariableToNodeMap
from repro.core.mst import MstEdge
from repro.errors import SchedulingError
from repro.ir.nested_sets import LeafOperand, OperandSet, build_operand_tree
from repro.ir.statement import Access, StatementInstance
from repro.obs.tracer import get_tracer
from repro.utils.union_find import UnionFind


class LeafInfo(NamedTuple):
    """A resolved leaf operand: which member it is and where its data lives.

    A NamedTuple, not a frozen dataclass: leaves are rebuilt per instance
    on the vectorized split fast paths, so construction cost matters.
    """

    member_id: int
    position: int          # index into instance.reads
    access: Access
    location: Location
    vertex: int            # the node chosen to represent the leaf in the MST
    negated: bool = False
    inverted: bool = False


@dataclass(frozen=True, slots=True)
class SetRecord:
    """One operand set: its operator class and its member ids."""

    set_id: int
    op_kind: str
    member_ids: Tuple[int, ...]
    extra_ops: int = 0
    depth: int = 0


@dataclass(frozen=True, slots=True)
class MergeStep:
    """One Kruskal union: combine members ``left``/``right`` of ``set_id``.

    ``edge`` records the attachment nodes and the Manhattan weight that
    Kruskal accepted.
    """

    set_id: int
    op_kind: str
    left: int
    right: int
    edge: MstEdge


@dataclass(slots=True)
class StatementSplit:
    """The splitter's result for one statement instance."""

    instance: StatementInstance
    leaves: Dict[int, LeafInfo]
    sets: List[SetRecord]
    merges: List[MergeStep]
    mst_edges: List[MstEdge]
    store_member: int
    store_node: int
    root_member: int

    @property
    def mst_weight(self) -> int:
        """Total MST weight — the statement's minimized data movement."""
        return sum(edge.weight for edge in self.mst_edges)

    @property
    def leaf_count(self) -> int:
        """Number of leaf operands resolved for this statement."""
        return len(self.leaves)


def _choose_leaf_vertex(
    location: Location,
    other_primaries: Sequence[int],
    store_node: int,
    distance: Callable[[int, int], int],
) -> int:
    """Pick the candidate node that represents a leaf in the MST.

    A datum modeled as L1-resident somewhere may be cheaper to use from that
    node than from its home bank (paper Figure 11 uses n_D(i) for C(i)); we
    pick the candidate minimizing total distance to the other operands and
    the store target.
    """
    candidates = location.candidates()
    if len(candidates) == 1:
        return candidates[0]
    anchors = list(other_primaries) + [store_node]

    def spread(node: int) -> Tuple[int, int]:
        return (sum(distance(node, a) for a in anchors), node)

    return min(candidates, key=spread)


def split_statement(
    instance: StatementInstance,
    locator: DataLocator,
    var2node: Optional[VariableToNodeMap] = None,
    rng: Optional[np.random.Generator] = None,
    flatten_products: bool = False,
) -> StatementSplit:
    """Split one statement instance into an MST of subcomputation sites."""
    distance = locator.machine.mesh.distance_fn()
    tree = build_operand_tree(instance.statement.rhs, flatten_products)
    store_node = locator.store_node(instance.write)

    leaves: Dict[int, LeafInfo] = {}
    sets: List[SetRecord] = []
    merges: List[MergeStep] = []
    mst_edges: List[MstEdge] = []
    component_nodes: Dict[int, Tuple[int, ...]] = {}
    next_id = [0]

    def fresh_id() -> int:
        next_id[0] += 1
        return next_id[0] - 1

    if tree is None:
        # Pure-constant RHS: a single store subcomputation, no movement.
        store_member = fresh_id()
        component_nodes[store_member] = (store_node,)
        return StatementSplit(
            instance=instance,
            leaves={},
            sets=[],
            merges=[],
            mst_edges=[],
            store_member=store_member,
            store_node=store_node,
            root_member=store_member,
        )

    # Resolve all leaf locations first so vertex choice can see the others.
    flat_leaves = tree.leaves()
    locations = [
        locator.locate(instance.read_for_position(leaf.position), var2node)
        for leaf in flat_leaves
    ]
    primaries = [loc.primary for loc in locations]
    vertex_by_position: Dict[int, int] = {}
    location_by_position: Dict[int, Location] = {}
    for leaf, location in zip(flat_leaves, locations):
        others = [p for j, p in enumerate(primaries) if flat_leaves[j].position != leaf.position]
        vertex = _choose_leaf_vertex(location, others, store_node, distance)
        vertex_by_position[leaf.position] = vertex
        location_by_position[leaf.position] = location

    # The store target joins the outermost operand set as one more component
    # (the paper's nested-set example lists the output among the members, and
    # Figure 9's MST anchors at the store node).
    store_member = fresh_id()
    component_nodes[store_member] = (store_node,)

    def build_member(node, depth: int, is_root: bool = False) -> int:
        """Register a leaf or run a set's Kruskal; returns the member id."""
        if isinstance(node, LeafOperand):
            member = fresh_id()
            location = location_by_position[node.position]
            leaves[member] = LeafInfo(
                member_id=member,
                position=node.position,
                access=location.access,
                location=location,
                vertex=vertex_by_position[node.position],
                negated=node.negated,
                inverted=node.inverted,
            )
            component_nodes[member] = (leaves[member].vertex,)
            if is_root:
                # Copy/scale statement: connect the lone operand to the store.
                set_id = fresh_id()
                sets.append(SetRecord(set_id, "+", (member, store_member), 0, depth))
                _kruskal_over_members(set_id, "+", [member, store_member])
                component_nodes[set_id] = tuple(
                    sorted(set(component_nodes[member] + component_nodes[store_member]))
                )
                return set_id
            return member
        if not isinstance(node, OperandSet):
            raise SchedulingError(f"unexpected operand node {type(node).__name__}")
        member_ids = [build_member(child, depth + 1) for child in node.members]
        if is_root:
            member_ids.append(store_member)
        set_id = fresh_id()
        sets.append(
            SetRecord(set_id, node.op_kind, tuple(member_ids), node.extra_ops, depth)
        )
        _kruskal_over_members(set_id, node.op_kind, member_ids)
        component_nodes[set_id] = tuple(
            sorted({n for m in member_ids for n in component_nodes[m]})
        )
        return set_id

    def _kruskal_over_members(set_id: int, op_kind: str, member_ids: List[int]) -> None:
        """Kruskal treating each member as a single component (paper 4.2)."""
        if len(member_ids) < 2:
            return
        candidate_edges: List[Tuple[int, int, int, MstEdge]] = []
        for i, ma in enumerate(member_ids):
            nodes_a = component_nodes[ma]
            for mb in member_ids[i + 1:]:
                best_w = -1
                best_na = best_nb = 0
                for na in nodes_a:
                    for nb in component_nodes[mb]:
                        w = distance(na, nb)
                        if best_w < 0 or w < best_w:
                            best_w = w
                            best_na = na
                            best_nb = nb
                assert best_w >= 0
                candidate_edges.append(
                    (best_w, ma, mb, MstEdge(best_na, best_nb, best_w))
                )
        # (weight, ma, mb) is unique per pair, so the MstEdge in position 3
        # is never compared: plain tuple sort == the old explicit key.
        candidate_edges.sort()
        if rng is not None:
            candidate_edges = _shuffle_equal_weights(candidate_edges, rng)
        uf = UnionFind(member_ids)
        for weight, ma, mb, edge in candidate_edges:
            if uf.union(ma, mb):
                merges.append(MergeStep(set_id, op_kind, ma, mb, edge))
                mst_edges.append(edge)

    root_member = build_member(tree, 0, is_root=True)

    split = StatementSplit(
        instance=instance,
        leaves=leaves,
        sets=sets,
        merges=merges,
        mst_edges=mst_edges,
        store_member=store_member,
        store_node=store_node,
        root_member=root_member,
    )
    tracer = get_tracer()
    if tracer.debug:
        # Firehose (one event per freshly split instance): debug only.
        tracer.point(
            "split.statement",
            seq=instance.seq,
            leaves=split.leaf_count,
            mst_weight=split.mst_weight,
            store_node=store_node,
        )
    return split


def _shuffle_equal_weights(
    edges: List[Tuple[int, int, int, MstEdge]], rng: np.random.Generator
) -> List[Tuple[int, int, int, MstEdge]]:
    result: List[Tuple[int, int, int, MstEdge]] = []
    run: List[Tuple[int, int, int, MstEdge]] = []
    weight: Optional[int] = None
    for edge in edges:
        if weight is None or edge[0] == weight:
            run.append(edge)
            weight = edge[0]
        else:
            indices = rng.permutation(len(run))
            result.extend(run[i] for i in indices)
            run = [edge]
            weight = edge[0]
    if run:
        indices = rng.permutation(len(run))
        result.extend(run[i] for i in indices)
    return result
