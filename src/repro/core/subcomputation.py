"""Subcomputations: the unit of placement (paper Section 3.1).

A statement instance is split into a DAG of subcomputations.  Each
subcomputation executes on one mesh node, consumes *gathered inputs* (raw
array elements fetched from their locations) and/or the *results* of child
subcomputations (messages from other nodes, each requiring a point-to-point
synchronization), applies an associative chain of operations, and either
feeds its parent or performs the final store.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.ir.statement import Access


# The three record types below are NamedTuples, not frozen dataclasses:
# they are constructed hundreds of thousands of times per compile (every
# gather, every child result, every scheduled unit), and tuple construction
# avoids the per-field ``object.__setattr__`` cost a frozen dataclass pays.


class GatheredInput(NamedTuple):
    """A raw datum fetched into the subcomputation's node.

    ``from_node``/``hops`` are the compiler's prediction of where the datum
    is and how far it travels (0 hops for a modeled L1 hit at the execution
    node); the simulator recomputes the truth with real caches.
    """

    access: Access
    from_node: int
    hops: int
    l1_hit: bool = False
    off_chip: bool = False  # predictor said the datum misses L2


class SubResult(NamedTuple):
    """A child subcomputation's result arriving over the network."""

    producer_uid: int
    from_node: int
    hops: int


class Subcomputation(NamedTuple):
    """One scheduled subcomputation.

    ``op`` is the associative operator class applied at this node (``'+'``
    or ``'*'``; ``'move'`` for pure data forwarding); ``op_count`` the number
    of primitive binary ops folded into this node; ``cost`` the
    load-balancer cost (division weighted 10x); ``store`` the output access
    when this is the statement's final subcomputation.
    """

    uid: int
    seq: int            # statement instance ordinal this belongs to
    node: int
    op: str
    op_count: int
    cost: float
    gathered: Tuple[GatheredInput, ...] = ()
    sub_results: Tuple[SubResult, ...] = ()
    store: Optional[Access] = None
    op_breakdown: Tuple[Tuple[str, int], ...] = ()
    # Pretty-print override: unsplit statements render their original text.
    source: str = ""

    @property
    def is_final(self) -> bool:
        """True for the subcomputation that stores the statement's result."""
        return self.store is not None

    @property
    def movement(self) -> int:
        """Predicted links traversed by everything arriving at this node."""
        return sum(g.hops for g in self.gathered) + sum(
            r.hops for r in self.sub_results
        )

    @property
    def sync_count(self) -> int:
        """Point-to-point synchronizations this subcomputation waits on."""
        return len(self.sub_results)

    def describe(self) -> str:
        """One-line human-readable rendering (for code listings)."""
        inputs = [str(g.access) for g in self.gathered]
        inputs += [f"T{r.producer_uid}" for r in self.sub_results]
        joined = f" {self.op} ".join(inputs) if inputs else "<empty>"
        target = str(self.store) if self.store else f"T{self.uid}"
        return f"node {self.node}: {target} = {joined}"
