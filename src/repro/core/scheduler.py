"""Subcomputation scheduling (paper Section 4.3, Algorithm 1 lines 40-58).

The splitter's MST tells us *which* node pairs exchange values; scheduling
decides *where each combine executes* and materializes the subcomputation
DAG.  We process the Kruskal merge log in acceptance order, tracking for
every connected component the node currently holding its accumulated value:

* merging two components combines their values at one of the two value
  nodes — the load balancer arbitrates between them (Section 4.5's 10%
  rule), and consecutive merges landing on the same node with the same
  operator fold into a single subcomputation;
* any merge involving the component that contains the *store target* is
  pinned to the store node: the final result is never migrated
  (Section 4.5), so values flow toward the output's home;
* raw leaf data is gathered when first consumed: zero hops when the
  ``variable2node_map`` modeled it L1-resident at the combine node
  (the data-reuse win of Figure 11), otherwise fetched from its primary
  location (home bank, or memory controller on a predicted L2 miss).

A node with two or more child results needs a synchronization before it can
combine (Figure 6); those arcs come out as ``sync_arcs`` and are later
minimized by :mod:`repro.core.syncgraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.balancer import LoadBalancer, op_cost
from repro.core.locator import DataLocator, VariableToNodeMap
from repro.core.splitter import LeafInfo, StatementSplit
from repro.core.subcomputation import GatheredInput, SubResult, Subcomputation
from repro.errors import SchedulingError
from repro.ir.statement import StatementInstance
from repro.utils.union_find import DenseUnionFind

#: Memoized static per-statement operator info, keyed by statement
#: identity: (statement, counts, total op count, weighted cost, sorted
#: breakdown).  The statement object is held in the value so a live cache
#: entry can never alias a recycled ``id``.
_OP_INFO_CACHE: Dict[int, tuple] = {}
_OP_INFO_LIMIT = 1 << 13


def _op_info(statement):
    """(statement, counts, op_count, cost, breakdown) — static per statement."""
    cached = _OP_INFO_CACHE.get(id(statement))
    if cached is not None and cached[0] is statement:
        return cached
    counts = statement.operator_counts()
    info = (
        statement,
        counts,
        sum(counts.values()),
        sum(op_cost(op, n) for op, n in counts.items()),
        tuple(sorted(counts.items())),
    )
    if len(_OP_INFO_CACHE) < _OP_INFO_LIMIT or cached is not None:
        _OP_INFO_CACHE[id(statement)] = info
    return info


class _Builder:
    """A subcomputation under construction (open until consumed)."""

    __slots__ = ("uid", "seq", "node", "op", "gathered", "sub_results", "ops", "open")

    def __init__(self, uid: int, seq: int, node: int, op: str):
        self.uid = uid
        self.seq = seq
        self.node = node
        self.op = op
        self.gathered: List[GatheredInput] = []
        self.sub_results: List[SubResult] = []
        self.ops: List[str] = []  # concrete operator per input beyond the first
        self.open = True

    @property
    def input_count(self) -> int:
        """Number of value inputs (sub-results + gathered operands)."""
        return len(self.gathered) + len(self.sub_results)

    def finalize(self, store=None) -> Subcomputation:
        """Freeze the builder into an immutable :class:`Subcomputation`."""
        breakdown: Dict[str, int] = {}
        for op in self.ops:
            breakdown[op] = breakdown.get(op, 0) + 1
        cost = sum(op_cost(op) for op in self.ops)
        return Subcomputation(
            uid=self.uid,
            seq=self.seq,
            node=self.node,
            op=self.op,
            op_count=len(self.ops),
            cost=cost,
            gathered=tuple(self.gathered),
            sub_results=tuple(self.sub_results),
            store=store,
            op_breakdown=tuple(sorted(breakdown.items())),
        )


@dataclass
class StatementSchedule:
    """The scheduled subcomputations of one statement instance."""

    instance: StatementInstance
    subcomputations: Tuple[Subcomputation, ...]
    final_uid: int
    store_node: int
    mst_weight: int

    @cached_property
    def movement(self) -> int:
        """Achieved data movement: links traversed by all inputs."""
        return sum(s.movement for s in self.subcomputations)

    @property
    def l1_hits_modeled(self) -> int:
        """Compile-time L1 reuse hits modeled for this schedule."""
        return sum(
            1 for s in self.subcomputations for g in s.gathered if g.l1_hit
        )

    @property
    def gathers(self) -> int:
        """Total operand-gather messages across subcomputations."""
        return sum(len(s.gathered) for s in self.subcomputations)

    def sync_arcs(self) -> List[Tuple[int, int]]:
        """(producer_uid, consumer_uid) pairs needing point-to-point syncs.

        Only cross-node results require a synchronization; a value produced
        and consumed on the same node is ordinary sequential dataflow.
        """
        arcs = []
        for sub in self.subcomputations:
            for result in sub.sub_results:
                if result.from_node != sub.node:
                    arcs.append((result.producer_uid, sub.uid))
        return arcs

    def parallel_degree(self) -> int:
        """Max number of this statement's subcomputations runnable at once.

        Width of the widest level of the subcomputation DAG (children must
        finish before parents, independent siblings run in parallel on their
        different nodes).
        """
        level: Dict[int, int] = {}
        width: Dict[int, int] = {}
        for sub in self.subcomputations:  # creation order is topological
            child_levels = [
                level[r.producer_uid]
                for r in sub.sub_results
                if r.producer_uid in level
            ]
            lvl = 1 + max(child_levels, default=-1 + 1)
            if not child_levels:
                lvl = 0
            level[sub.uid] = lvl
            width[lvl] = width.get(lvl, 0) + 1
        return max(width.values(), default=1)

    def remapped_op_breakdown(self) -> Dict[str, int]:
        """Operator counts of subcomputations executing off the store node.

        These are the computations our scheme re-maps relative to the
        default execution (everything at the store node) — Table 3's metric.
        """
        counts: Dict[str, int] = {}
        for sub in self.subcomputations:
            if sub.node != self.store_node:
                for op, count in sub.op_breakdown:
                    counts[op] = counts.get(op, 0) + count
        return counts


def star_cost(
    instance: StatementInstance,
    locator: DataLocator,
    var2node: Optional[VariableToNodeMap] = None,
    exec_node: Optional[int] = None,
    tables=None,
) -> int:
    """Predicted movement of the unsplit schedule (default execution).

    All inputs gathered at ``exec_node`` (the default placement's node for
    this instance; the output's home when not given), one block fetch per
    distinct block, zero for blocks modeled L1-resident there.  The window
    scheduler splits a statement only when the MST beats this — splitting
    that *increases* movement would defeat the metric the paper optimizes.
    """
    distance = locator.machine.mesh.distance_fn()
    if tables is not None:
        # Table-backed path: same answers as locate(), batched up front.
        it, s = divmod(instance.seq - tables.seq_base, tables.body_size)
        store = tables.store_node[s][it]
        node = exec_node if exec_node is not None else store
        read_blocks = tables.read_block[s]
        read_primary = tables.read_primary[s]
        cost = 0
        seen_blocks = set()
        for position in range(len(instance.reads)):
            block = read_blocks[position][it]
            if block in seen_blocks:
                continue
            seen_blocks.add(block)
            if var2node is not None and node in var2node.nodes_with(block):
                continue
            cost += distance(read_primary[position][it], node)
        return cost + distance(node, store)
    node = exec_node if exec_node is not None else locator.store_node(instance.write)
    cost = 0
    seen_blocks = set()
    for access in instance.reads:
        block = locator.block_of(access)
        if block in seen_blocks:
            continue
        seen_blocks.add(block)
        location = locator.locate(access, var2node)
        if node in location.l1_copies:
            continue
        cost += distance(location.primary, node)
    # The result must reach its home bank from the execution node.
    cost += distance(node, locator.store_node(instance.write))
    return cost


def schedule_star(
    instance: StatementInstance,
    locator: DataLocator,
    balancer: LoadBalancer,
    uid_counter: Iterator[int],
    var2node: Optional[VariableToNodeMap] = None,
    exec_node: Optional[int] = None,
    hit_model: Optional[VariableToNodeMap] = None,
    tables=None,
) -> StatementSchedule:
    """Schedule the whole statement unsplit, as the default execution would.

    One subcomputation at ``exec_node`` (default placement's node, or the
    output's home node) gathers every input, computes, and stores.
    ``hit_model`` (the persistent default-execution L1 model) marks which
    gathers are expected L1 hits; fetched blocks are still recorded into the
    window's ``var2node`` so later statements can reuse them.
    """
    distance = locator.machine.mesh.distance_fn()
    gathered = []
    if tables is not None:
        # Table-backed path: blocks/primaries/verdicts from the per-nest
        # tables instead of per-access locate() chains (same answers).
        it, s = divmod(instance.seq - tables.seq_base, tables.body_size)
        node = (
            exec_node if exec_node is not None else tables.store_node[s][it]
        )
        read_blocks = tables.read_block[s]
        read_primary = tables.read_primary[s]
        read_on_chip = tables.read_on_chip[s]
        copies_map = hit_model if hit_model is not None else var2node
        for position, access in enumerate(instance.reads):
            block = read_blocks[position][it]
            if copies_map is not None and node in copies_map.nodes_with(block):
                gathered.append(GatheredInput(access, node, 0, l1_hit=True))
            else:
                primary = read_primary[position][it]
                gathered.append(
                    GatheredInput(
                        access,
                        primary,
                        distance(primary, node),
                        off_chip=not read_on_chip[position][it],
                    )
                )
            if var2node is not None:
                var2node.record(block, node)
            if hit_model is not None:
                hit_model.record(block, node)
        write_block = tables.write_block[s][it]
    else:
        node = (
            exec_node
            if exec_node is not None
            else locator.store_node(instance.write)
        )
        for access in instance.reads:
            location = locator.locate(access, hit_model or var2node)
            if node in location.l1_copies:
                gathered.append(GatheredInput(access, node, 0, l1_hit=True))
            else:
                hops = distance(location.primary, node)
                gathered.append(
                    GatheredInput(
                        access, location.primary, hops, off_chip=not location.on_chip
                    )
                )
            if var2node is not None:
                var2node.record(locator.block_of(access), node)
            if hit_model is not None:
                hit_model.record(locator.block_of(access), node)
        write_block = None
    _, _, op_count, cost, breakdown = _op_info(instance.statement)
    sub = Subcomputation(
        uid=next(uid_counter),
        seq=instance.seq,
        node=node,
        op="+",
        op_count=op_count,
        cost=cost,
        gathered=tuple(gathered),
        sub_results=(),
        store=instance.write,
        op_breakdown=breakdown,
        source=str(instance),
    )
    balancer.record(node, cost)
    if var2node is not None or hit_model is not None:
        if write_block is None:
            write_block = locator.block_of(instance.write)
        if var2node is not None:
            var2node.record(write_block, node)
        if hit_model is not None:
            hit_model.record(write_block, node)
    return StatementSchedule(
        instance=instance,
        subcomputations=(sub,),
        final_uid=sub.uid,
        store_node=node,
        mst_weight=sub.movement,
    )


def schedule_statement(
    split: StatementSplit,
    locator: DataLocator,
    balancer: LoadBalancer,
    uid_counter: Iterator[int],
    var2node: Optional[VariableToNodeMap] = None,
    hit_model: Optional[VariableToNodeMap] = None,
    tables=None,
) -> StatementSchedule:
    """Turn a :class:`StatementSplit` into scheduled subcomputations.

    ``var2node`` is the window-scoped reuse map (Algorithm 1's
    ``variable2node_map``); ``hit_model`` is the persistent model of the
    real caches' contents used to mark expected L1 hits and predict
    movement (real L1s do not forget at window boundaries).
    """
    machine = locator.machine
    distance = machine.mesh.distance_fn()
    instance = split.instance
    store_node = split.store_node

    if tables is not None:
        it, s = divmod(instance.seq - tables.seq_base, tables.body_size)
        read_blocks = tables.read_block[s]

        def block_of_leaf(leaf: LeafInfo) -> int:
            return read_blocks[leaf.position][it]

        write_block = tables.write_block[s][it]
    else:

        def block_of_leaf(leaf: LeafInfo) -> int:
            return locator.block_of(leaf.access)

        write_block = None

    # Member/set ids are allocated from one counter starting at the store
    # member, and the root member is handed out last — so every id this
    # split references fits in [0, root_member].
    components = DenseUnionFind(max(split.store_member, split.root_member) + 1)
    carriers: Dict[int, object] = {}  # root id -> LeafInfo | _Builder | "store"
    builders: List[_Builder] = []

    def carrier_of(member: int):
        """The value carrier currently representing ``member``'s component."""
        return carriers[components.find(member)]

    def set_carrier(member: int, carrier) -> None:
        """Re-point ``member``'s component at a new value carrier."""
        carriers[components.find(member)] = carrier

    # Initialize leaf and store carriers.
    for member, leaf in split.leaves.items():
        carriers[member] = leaf
    carriers[split.store_member] = "store"
    # Every set id aliases its first member: once the set's own merges have
    # connected its members (merges are ordered innermost-first), a parent
    # merge that references the set id resolves to the right component.
    for record in split.sets:
        anchor = record.member_ids[0] if record.member_ids else split.store_member
        anchor_root = components.find(anchor)
        anchor_carrier = carriers[anchor_root]
        components.union(record.set_id, anchor)
        carriers[components.find(record.set_id)] = anchor_carrier

    def effective_op(set_op: str, leaf: Optional[LeafInfo]) -> str:
        """The operator a merged leaf contributes (sign/inverse folded)."""
        if leaf is not None:
            if leaf.inverted:
                return "/"
            if leaf.negated:
                return "-"
        return set_op

    def gather(leaf: LeafInfo, at_node: int) -> GatheredInput:
        """Record pulling ``leaf``'s value to ``at_node``, charging hops."""
        location = leaf.location
        block = block_of_leaf(leaf)
        resident = at_node in location.l1_copies or (
            hit_model is not None and at_node in hit_model.nodes_with(block)
        )
        if resident:
            gathered = GatheredInput(leaf.access, at_node, 0, l1_hit=True)
        else:
            hops = distance(location.primary, at_node)
            gathered = GatheredInput(
                leaf.access,
                location.primary,
                hops,
                l1_hit=False,
                off_chip=not location.on_chip,
            )
        if var2node is not None:
            var2node.record(block, at_node)
        if hit_model is not None:
            hit_model.record(block, at_node)
        return gathered

    def materialize(carrier, at_node: int, into: _Builder, set_op: str) -> None:
        """Feed a component's value into ``into`` (which runs at at_node)."""
        if carrier == "store":
            return  # the store anchor carries no value
        if isinstance(carrier, LeafInfo):
            # The MST placed this leaf at its vertex; if that vertex holds
            # an L1 copy and the combine runs elsewhere, read the copy there
            # and forward it (a pure-move subcomputation) rather than
            # refetching from the home bank — the Figure 11 reuse.
            if (
                at_node != carrier.vertex
                and carrier.vertex in carrier.location.l1_copies
            ):
                forward = new_builder(carrier.vertex, "move")
                forward.gathered.append(
                    GatheredInput(carrier.access, carrier.vertex, 0, l1_hit=True)
                )
                if var2node is not None or hit_model is not None:
                    block = block_of_leaf(carrier)
                    if var2node is not None:
                        var2node.record(block, carrier.vertex)
                    if hit_model is not None:
                        hit_model.record(block, carrier.vertex)
                forward.open = False
                into.sub_results.append(
                    SubResult(
                        forward.uid, carrier.vertex, distance(carrier.vertex, at_node)
                    )
                )
                if into.input_count > 1:
                    into.ops.append(effective_op(set_op, carrier))
                return
            into.gathered.append(gather(carrier, at_node))
            if into.input_count > 1:
                into.ops.append(effective_op(set_op, carrier))
            return
        if isinstance(carrier, _Builder):
            carrier.open = False
            hops = distance(carrier.node, at_node)
            into.sub_results.append(SubResult(carrier.uid, carrier.node, hops))
            if into.input_count > 1:
                into.ops.append(set_op)
            return
        raise SchedulingError(f"unknown carrier {carrier!r}")

    def value_node(carrier) -> int:
        if carrier == "store":
            return store_node
        if isinstance(carrier, LeafInfo):
            return carrier.vertex
        return carrier.node

    def new_builder(node: int, op: str) -> _Builder:
        builder = _Builder(next(uid_counter), instance.seq, node, op)
        builders.append(builder)
        return builder

    store_root = lambda: components.find(split.store_member)

    final_merge = split.merges[-1] if split.merges else None
    for merge in split.merges:
        root_a = components.find(merge.left)
        root_b = components.find(merge.right)
        if root_a == root_b:
            raise SchedulingError("merge joins an already-connected component")
        carrier_a, carrier_b = carriers[root_a], carriers[root_b]
        touches_store = store_root() in (root_a, root_b)

        # A merge with the *bare* store anchor moves nothing yet: the value
        # stays where it is and flows to the store only at the final merge
        # (the paper's MST walk ends at the store node; pulling operands to
        # the store early would retrace tree edges).
        if touches_store and merge is not final_merge:
            store_side = carrier_a if carriers[root_a] == "store" else None
            if store_side is None and carrier_b == "store":
                store_side = carrier_b
            if store_side is not None:
                other = carrier_b if carrier_a == "store" else carrier_a
                components.union(merge.left, merge.right)
                set_carrier(merge.left, other)
                continue

        # Decide the combine node.
        merge_cost = op_cost(merge.op_kind)
        if touches_store and merge is final_merge:
            combine_node = store_node
        else:
            node_a, node_b = value_node(carrier_a), value_node(carrier_b)
            # Values flow toward the store: prefer the endpoint closer to
            # it (the paper computes C+D in n_D, the member nearer n_A);
            # among equals, prefer folding into an open builder.
            def rank(item):
                carrier, node = item
                foldable = (
                    isinstance(carrier, _Builder)
                    and carrier.open
                    and carrier.op == merge.op_kind
                )
                return (distance(node, store_node), 0 if foldable else 1, node)

            ordered = sorted(
                ((carrier_a, node_a), (carrier_b, node_b)), key=rank
            )
            preferred = []
            for _, node in ordered:
                if node not in preferred:
                    preferred.append(node)
            combine_node = balancer.choose(preferred, merge_cost)

        # Reuse an open builder at the combine node when ops match.
        target: Optional[_Builder] = None
        for carrier in (carrier_a, carrier_b):
            if (
                isinstance(carrier, _Builder)
                and carrier.open
                and carrier.node == combine_node
                and carrier.op == merge.op_kind
            ):
                target = carrier
                break
        if target is None:
            target = new_builder(combine_node, merge.op_kind)
            materialize(carrier_a, combine_node, target, merge.op_kind)
            materialize(carrier_b, combine_node, target, merge.op_kind)
        else:
            other = carrier_b if target is carrier_a else carrier_a
            materialize(other, combine_node, target, merge.op_kind)
        balancer.record(combine_node, merge_cost)

        components.union(merge.left, merge.right)
        # The set ids themselves become members of parent sets; keep them
        # joined to their components so later merges resolve carriers.
        set_carrier(merge.left, target)

    # Materialize the final subcomputation at the store node.
    root_carrier = carrier_of(split.store_member)
    if isinstance(root_carrier, _Builder):
        final_builder = root_carrier
        if final_builder.node != store_node:
            mover = new_builder(store_node, "move")
            materialize(final_builder, store_node, mover, "move")
            mover.ops = []
            final_builder = mover
    elif isinstance(root_carrier, LeafInfo):
        # Copy statement: one gather into the store node.
        final_builder = new_builder(store_node, "move")
        final_builder.gathered.append(gather(root_carrier, store_node))
    else:  # pure-constant statement
        final_builder = new_builder(store_node, "move")
    final_builder.open = False

    # Constants folded out of the operand sets still cost ops at the root.
    extra_ops = sum(record.extra_ops for record in split.sets)
    for _ in range(extra_ops):
        final_builder.ops.append(final_builder.op if final_builder.op != "move" else "+")
    if extra_ops:
        balancer.record(final_builder.node, sum(op_cost(o) for o in final_builder.ops[-extra_ops:]))

    # The result now lives in the store node's L1; later statements in the
    # window can reuse it from there (flow-dependence reuse).
    if var2node is not None or hit_model is not None:
        if write_block is None:
            write_block = locator.block_of(instance.write)
        if var2node is not None:
            var2node.record(write_block, store_node)
        if hit_model is not None:
            hit_model.record(write_block, store_node)

    subs = []
    for builder in builders:
        store = instance.write if builder is final_builder else None
        subs.append(builder.finalize(store))

    return StatementSchedule(
        instance=instance,
        subcomputations=tuple(subs),
        final_uid=final_builder.uid,
        store_node=store_node,
        mst_weight=split.mst_weight,
    )
