"""Window-based multi-statement scheduling and the adaptive size search
(paper Sections 4.3 and 4.4).

A *window* is a run of consecutive statement instances in execution order
(a window of 8 over a 4-statement loop body spans 2 iterations).  Within a
window, the ``variable2node_map`` carries forward which L1s hold which
blocks because of already-scheduled subcomputations, so later statements'
MSTs can exploit the copies (NDP + data reuse together).  The map resets at
window boundaries — that boundary is precisely why the window size matters
(Figure 12's worked example).

:class:`WindowSizeSearch` is the preprocessing step of Section 4.4: try
every window size from 1 to 8 statements on the nest, measure the resulting
total data movement, and keep the best.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


from repro import check
from repro.arch.machine import Machine
from repro.check import invariants
from repro.core.balancer import LoadBalancer
from repro.core.locator import DataLocator, VariableToNodeMap
from repro.core.scheduler import (
    StatementSchedule,
    schedule_star,
    schedule_statement,
    star_cost,
)
from repro.core.splitter import StatementSplit, split_statement
from repro.core.syncgraph import SyncGraph
from repro.errors import SchedulingError
from repro.ir.dependence import DependenceKind, instance_dependences
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.statement import StatementInstance
from repro.obs.tracer import get_tracer
from repro.utils.rng import derive_rng

#: The paper found no nest preferring more than 8 statements (footnote 4).
MAX_WINDOW_SIZE = 8


@dataclass(frozen=True)
class WindowConfig:
    """Knobs of the window scheduler.

    ``reuse_aware=False`` reproduces the paper's reuse-agnostic ablation
    (Section 6.3): the variable2node map is neither consulted nor updated.
    ``l1_model_blocks`` caps the compiler's per-node L1 model — the source
    of the modeled cache-pollution penalty for oversized windows.
    """

    max_window_size: int = MAX_WINDOW_SIZE
    reuse_aware: bool = True
    l1_model_blocks: int = 64
    balance_threshold: float = 0.10
    flatten_products: bool = False
    random_ties: bool = False
    seed: int = 0
    #: The size search measures candidate window sizes on this many leading
    #: statement instances of the nest (0 = the whole nest).  Loop bodies
    #: repeat, so a prefix is representative, and the search stays cheap.
    search_sample_instances: int = 768
    #: Force MST splitting even when the unsplit gather-at-store execution
    #: moves less data (ablation knob; the production path picks the better
    #: of the two per statement).
    always_split: bool = False
    #: Split only when the MST saves at least this many links per instance
    #: over the unsplit execution: each cross-node result message costs a
    #: synchronization and serializes dependence chains, so marginal splits
    #: are not worth taking.
    split_bias: float = 3.0
    #: Worker processes for the window-size search: the candidate sizes are
    #: independent trials, so they fan out across a process pool.  1 (the
    #: default) keeps the search in-process and bit-identical to the
    #: historical serial behaviour; the parallel path is validated to return
    #: the same ``best_size``/``movement_by_size`` by the regression tests.
    jobs: int = 1


@dataclass
class WindowSchedule:
    """All statement schedules of one window plus its sync graph."""

    schedules: List[StatementSchedule]
    sync_graph: SyncGraph
    syncs_before_minimization: int
    syncs_after_minimization: int

    @cached_property
    def movement(self) -> int:
        """Total data movement of the window (sum of member MSTs)."""
        return sum(s.movement for s in self.schedules)

    @property
    def statement_count(self) -> int:
        """Statement instances scheduled in this window."""
        return len(self.schedules)


@dataclass
class NestSchedule:
    """The complete schedule of one loop nest at one window size."""

    nest_name: str
    window_size: int
    windows: List[WindowSchedule]

    @property
    def movement(self) -> int:
        """Total data movement across every window of the nest."""
        return sum(w.movement for w in self.windows)

    @property
    def statement_count(self) -> int:
        """Statement instances scheduled across the nest."""
        return sum(w.statement_count for w in self.windows)

    @property
    def subcomputation_count(self) -> int:
        """Total subcomputations across the nest's windows."""
        return sum(
            len(s.subcomputations) for w in self.windows for s in w.schedules
        )

    @property
    def l1_hits_modeled(self) -> int:
        """Compile-time L1 reuse hits modeled across the nest."""
        return sum(s.l1_hits_modeled for w in self.windows for s in w.schedules)

    @property
    def gathers(self) -> int:
        """Total operand-gather messages across the nest."""
        return sum(s.gathers for w in self.windows for s in w.schedules)

    @property
    def sync_count(self) -> int:
        """Synchronization arcs after transitive-closure minimization."""
        return sum(w.syncs_after_minimization for w in self.windows)

    @property
    def sync_count_unminimized(self) -> int:
        """Synchronization arcs before minimization."""
        return sum(w.syncs_before_minimization for w in self.windows)

    def statement_schedules(self) -> Iterator[StatementSchedule]:
        """Every member statement schedule, in program order."""
        for window in self.windows:
            yield from window.schedules

    def per_statement_movement(self) -> List[int]:
        """Each member statement's movement, in program order."""
        return [s.movement for s in self.statement_schedules()]

    def parallel_degrees(self) -> List[int]:
        """Per-statement distinct-node counts across the nest."""
        return [s.parallel_degree() for s in self.statement_schedules()]

    def remapped_op_breakdown(self) -> Dict[str, int]:
        """Operator counts of re-mapped (non-home) subcomputations (Table 3)."""
        counts: Dict[str, int] = {}
        for schedule in self.statement_schedules():
            for op, count in schedule.remapped_op_breakdown().items():
                counts[op] = counts.get(op, 0) + count
        return counts


class WindowScheduler:
    """Schedules statement instances window by window."""

    def __init__(
        self,
        machine: Machine,
        locator: DataLocator,
        config: WindowConfig = WindowConfig(),
        balancer: Optional[LoadBalancer] = None,
        uid_counter: Optional[Iterator[int]] = None,
        fallback_nodes: Optional[Dict[int, int]] = None,
        split_plan: Optional[Dict[Tuple[str, int], bool]] = None,
        split_cache: Optional[Dict[int, StatementSplit]] = None,
        session=None,
        templates=None,
    ):
        """A scheduler sharing the caller's uid stream, caches, and session."""
        self.machine = machine
        self.locator = locator
        self.config = config
        # The session carries the pipeline shape: a skipped ``balance``
        # pass disables the 10% veto (placement takes the minimum-movement
        # candidate unconditionally), a skipped ``sync_minimize`` leaves
        # window sync graphs unminimized; the per-window minimize time is
        # charged to the ``sync_minimize`` pass when a session is present.
        self._session = session
        balance_enabled = session is None or session.pass_enabled("balance")
        self.balancer = balancer or LoadBalancer(
            machine.node_count, config.balance_threshold, enabled=balance_enabled
        )
        # seq -> StatementSplit computed against an *empty* variable2node
        # map.  The window-size search schedules the same leading instances
        # once per candidate size; every window-opening statement sees an
        # empty map, so its split/MST is identical across trials and can be
        # shared instead of recomputed (splits are immutable).  A stateful
        # predictor (the ideal-analysis oracle) makes location answers
        # depend on the query stream itself, so memoization is disabled —
        # every pass must issue exactly the queries the uncached code would.
        pure_predictor = getattr(locator.predictor, "pure_predict", True)
        self._split_cache = split_cache if pure_predictor else None
        # Vectorized fast path: per-nest location tables + signature-deduped
        # split templates (repro.core.vectorized).  Only valid with a pure
        # predictor; the scalar code remains the reference path.
        self._templates = templates if pure_predictor else None
        self._tables = self._templates.tables if self._templates is not None else None
        # Shared across nests (and window-size trials) so uids stay unique
        # within one compilation.
        self._uid_counter = uid_counter if uid_counter is not None else itertools.count()
        self._rng = (
            derive_rng(config.seed, "mst-ties") if config.random_ties else None
        )
        # seq -> default-placement node: where an unsplit statement runs
        # (the paper optimizes on top of the default assignment).
        self.fallback_nodes = fallback_nodes or {}
        # Static per-statement split decisions from the profiling pass; when
        # absent, the scheduler falls back to a per-instance model compare.
        self.split_plan = split_plan
        # Persistent model of the real L1 contents under the schedule being
        # built (real caches do not forget at window boundaries): stars
        # record their blocks at their execution node, splits at their
        # gather nodes.  Used for expected-hit marking and for the
        # split-vs-unsplit movement comparison; the window-scoped
        # ``variable2node_map`` remains the reuse-candidate source, as in
        # Algorithm 1.
        self._l1_model = VariableToNodeMap(
            per_node_capacity=machine.l1_config.line_count
        )

    def schedule_window(
        self,
        instances: Sequence[StatementInstance],
        sync_graph: bool = True,
    ) -> WindowSchedule:
        """Schedule one window of consecutive statement instances.

        ``sync_graph=False`` skips building and minimizing the window's
        synchronization graph (the schedules and their movement are
        unaffected) — used by the window-size search, whose trials consume
        only the movement totals and discard the schedules.
        """
        var2node = (
            VariableToNodeMap(self.config.l1_model_blocks)
            if self.config.reuse_aware
            else None
        )
        schedules: List[StatementSchedule] = []
        # With the nest's tables fully materialized, a split is a pure
        # function of the instance (no page-translation or predictor side
        # effects), so statements whose plan already says "don't split" can
        # skip the MST work entirely.  The scalar path must still split
        # first: its leaf locates are the canonical first touch of the
        # instance's pages.
        lazy_split = (
            self._tables is not None
            and self._rng is None
            and self._tables.covered >= self._tables.instance_count
        )
        for instance in instances:
            split = None if lazy_split else self._split_of(instance, var2node)
            # Split only when the MST actually beats the unsplit default
            # execution (data movement is the first-class metric; a split
            # that moves *more* data is never taken).
            fallback = self.fallback_nodes.get(instance.seq)
            if self.config.always_split:
                decision = True
            elif self.split_plan is not None and instance.static_key in self.split_plan:
                decision = self.split_plan[instance.static_key]
            else:
                if split is None:
                    split = self._split_of(instance, var2node)
                unsplit = star_cost(
                    instance,
                    self.locator,
                    self._l1_model,
                    fallback,
                    tables=self._tables,
                )
                decision = split.mst_weight + self.config.split_bias <= unsplit
            if decision:
                if split is None:
                    split = self._split_of(instance, var2node)
                schedules.append(
                    schedule_statement(
                        split,
                        self.locator,
                        self.balancer,
                        self._uid_counter,
                        var2node,
                        hit_model=self._l1_model,
                        tables=self._tables,
                    )
                )
            else:
                schedules.append(
                    schedule_star(
                        instance,
                        self.locator,
                        self.balancer,
                        self._uid_counter,
                        var2node,
                        fallback,
                        hit_model=self._l1_model,
                        tables=self._tables,
                    )
                )
        if not sync_graph:
            return WindowSchedule(schedules, SyncGraph(), 0, 0)
        if len(schedules) == 1 and len(schedules[0].subcomputations) == 1:
            # A singleton window whose one statement stayed whole has no
            # sync arcs by construction (no child results, no second
            # instance to depend on) — skip building and minimizing the
            # graph, but keep the inline pass's timing key alive.
            if self._session is not None and self._session.pass_enabled(
                "sync_minimize"
            ):
                self._session.add_pass_seconds("sync_minimize", 0.0)
            return WindowSchedule(schedules, SyncGraph(), 0, 0)
        graph = self._build_sync_graph(instances, schedules)
        before = graph.arc_count()
        after = graph.minimize_in(self._session)
        tracer = get_tracer()
        if tracer.debug:
            # Per-window events are a firehose (thousands of windows per
            # nest); aggregate sync counts always appear in the nest span.
            tracer.point(
                "sync.minimize",
                window_start_seq=instances[0].seq if instances else -1,
                statements=len(schedules),
                arcs_before=before,
                arcs_after=after,
            )
        return WindowSchedule(schedules, graph, before, after)

    #: Split caches stop growing past this many entries (memory bound for
    #: very long nests; every nest in the workload suite fits, so the gate's
    #: full-nest passes populate the cache end to end).
    _SPLIT_CACHE_LIMIT = 1 << 17

    def _split_of(
        self,
        instance: StatementInstance,
        var2node: Optional[VariableToNodeMap],
    ) -> StatementSplit:
        """Split ``instance``, sharing empty-map splits across size trials.

        Only splits computed against an empty ``variable2node_map`` (the
        first statement of every window, or any statement when reuse is
        off) are cacheable: later statements see window-local L1 copies
        that depend on the window size.  Randomized tie-breaking disables
        the cache entirely.
        """
        cacheable = (
            self._split_cache is not None
            and self._rng is None
            and (var2node is None or len(var2node) == 0)
        )
        if cacheable:
            cached = self._split_cache.get(instance.seq)
            if cached is not None:
                if check.enabled():
                    # Check mode: a hit must be bit-equal to a recompute.
                    # Safe to replay: cacheable implies a pure predictor, so
                    # the duplicate location queries cannot perturb state.
                    invariants.check_split_cache_hit(
                        cached,
                        split_statement(
                            instance,
                            self.locator,
                            var2node,
                            rng=self._rng,
                            flatten_products=self.config.flatten_products,
                        ),
                    )
                return cached
            if self._templates is not None:
                split = self._templates.split(instance)
                if len(self._split_cache) < self._SPLIT_CACHE_LIMIT:
                    self._split_cache[instance.seq] = split
                return split
        elif (
            self._templates is not None
            and self._rng is None
            and var2node is not None
            and len(var2node) > 0
            and not self._templates.blocks_held(instance, var2node)
        ):
            # Mid-window fast path: none of this statement's operand blocks
            # is modeled L1-resident, so every locate() would come back with
            # empty ``l1_copies`` and the split equals the empty-map split.
            split = None
            if self._split_cache is not None:
                split = self._split_cache.get(instance.seq)
            if split is None:
                split = self._templates.split(instance)
                if (
                    self._split_cache is not None
                    and len(self._split_cache) < self._SPLIT_CACHE_LIMIT
                ):
                    self._split_cache[instance.seq] = split
            if check.enabled():
                # The no-overlap claim must hold: the split computed against
                # the actual window map is bit-equal to the empty-map split.
                invariants.check_split_cache_hit(
                    split,
                    split_statement(
                        instance,
                        self.locator,
                        var2node,
                        rng=self._rng,
                        flatten_products=self.config.flatten_products,
                    ),
                )
            return split
        elif (
            self._templates is not None
            and self._rng is None
            and var2node is not None
            and len(var2node) > 0
        ):
            # Mid-window overlap path: some operand block is L1-resident, so
            # the split depends on the window map — but the skeleton replay
            # can still answer it from the tables plus the map, skipping the
            # operand-tree rebuild and the per-leaf locate dispatch.
            split = self._templates.split_with_map(instance, var2node)
            if split is not None:
                if check.enabled():
                    invariants.check_split_cache_hit(
                        split,
                        split_statement(
                            instance,
                            self.locator,
                            var2node,
                            rng=self._rng,
                            flatten_products=self.config.flatten_products,
                        ),
                    )
                return split
        split = split_statement(
            instance,
            self.locator,
            var2node,
            rng=self._rng,
            flatten_products=self.config.flatten_products,
        )
        if cacheable and len(self._split_cache) < self._SPLIT_CACHE_LIMIT:
            self._split_cache[instance.seq] = split
        return split

    def _build_sync_graph(
        self,
        instances: Sequence[StatementInstance],
        schedules: Sequence[StatementSchedule],
    ) -> SyncGraph:
        """Intra-statement join syncs + inter-statement dependence syncs."""
        graph = SyncGraph()
        for schedule in schedules:
            for producer, consumer in schedule.sync_arcs():
                graph.add_arc(producer, consumer)
        by_seq = {s.instance.seq: s for s in schedules}
        for dep in instance_dependences(list(instances)):
            if dep.src_seq == dep.dst_seq:
                continue
            producer = by_seq.get(dep.src_seq)
            consumer = by_seq.get(dep.dst_seq)
            if producer is None or consumer is None:
                continue
            targets = self._consumers_of(consumer, dep)
            for uid in targets:
                # Producers belong to an earlier statement, so no cycle risk.
                if producer.final_uid != uid:
                    graph.add_arc(producer.final_uid, uid)
        return graph

    @staticmethod
    def _consumers_of(schedule: StatementSchedule, dep) -> List[int]:
        """Subcomputations of ``schedule`` that touch the dependent access."""
        if dep.kind is DependenceKind.FLOW:
            uids = [
                sub.uid
                for sub in schedule.subcomputations
                for g in sub.gathered
                if g.access == dep.access
            ]
            return uids or [schedule.final_uid]
        # Anti/output dependences serialize against the consumer's store.
        return [schedule.final_uid]

    def schedule_nest(
        self, program: Program, nest: LoopNest, window_size: int
    ) -> NestSchedule:
        """Schedule a whole nest with a fixed window size."""
        if window_size < 1:
            raise SchedulingError(f"window size must be >= 1, got {window_size}")
        windows: List[WindowSchedule] = []
        buffer: List[StatementInstance] = []
        for instance in program.nest_instances(nest, program.seq_base_of(nest)):
            buffer.append(instance)
            if len(buffer) == window_size:
                windows.append(self.schedule_window(buffer))
                buffer = []
        if buffer:
            windows.append(self.schedule_window(buffer))
        return NestSchedule(nest.name, window_size, windows)


@dataclass
class SearchOutcome:
    """Result of the adaptive window-size search for one nest."""

    nest_name: str
    best_size: int
    best_schedule: NestSchedule
    movement_by_size: Dict[int, int]


class WindowSizeSearch:
    """Section 4.4's preprocessing: pick the per-nest window size."""

    def __init__(
        self,
        machine: Machine,
        locator: DataLocator,
        config: WindowConfig = WindowConfig(),
        uid_counter: Optional[Iterator[int]] = None,
        fallback_nodes: Optional[Dict[int, int]] = None,
        split_plan: Optional[Dict[Tuple[str, int], bool]] = None,
        split_cache: Optional[Dict[int, StatementSplit]] = None,
        session=None,
        templates=None,
    ):
        """A search owning (or sharing) the uid stream its trials consume."""
        self.machine = machine
        self.locator = locator
        self.config = config
        self.uid_counter = uid_counter if uid_counter is not None else itertools.count()
        # Per-nest vectorized split templates shared by every serial trial
        # and the final schedule (parallel workers run the scalar path and
        # return bit-equal results — the machine they unpickle already holds
        # the nest's page translations).
        self._templates = templates
        self.fallback_nodes = fallback_nodes
        self.split_plan = split_plan
        # Forwarded to every trial scheduler (inline-pass gating + timing).
        self._session = session
        # Shared across all candidate-size trials of this nest (and the
        # final full-nest scheduling): window-opening splits are identical
        # regardless of window size, so their MST work is done once.  The
        # partitioner passes one cache per nest so the empirical gate's
        # candidate-plan passes contribute to (and benefit from) it too —
        # splits do not depend on the split *plan*, only on the operands.
        self._split_cache: Dict[int, StatementSplit] = (
            split_cache if split_cache is not None else {}
        )

    def search(self, program: Program, nest: LoopNest) -> SearchOutcome:
        """Try window sizes 1..max, keep the one minimizing data movement.

        Candidate sizes are measured on a leading sample of the nest's
        instance stream (loop bodies repeat, so the prefix is
        representative); the winning size then schedules the whole nest.
        Each trial uses a fresh load balancer so the comparison is apples
        to apples.
        """
        best_size, movement_by_size = self._best_size(
            program, nest, self.config.search_sample_instances
        )
        final = self._scheduler().schedule_nest(program, nest, best_size)
        return SearchOutcome(nest.name, best_size, final, movement_by_size)

    def search_sample(self, program: Program, nest: LoopNest, sample: int) -> SearchOutcome:
        """Like :meth:`search` but without scheduling the whole nest."""
        best_size, movement_by_size = self._best_size(program, nest, sample)
        empty = NestSchedule(nest.name, best_size, [])
        return SearchOutcome(nest.name, best_size, empty, movement_by_size)

    def _best_size(self, program: Program, nest: LoopNest, sample: int):
        """Movement of every candidate size; smallest best size wins ties.

        The sampled instance stream is materialized once and shared by all
        trials (it is identical for every size), as are the window-opening
        statement splits (via the split cache) and the :class:`DataLocator`.
        Each trial still gets a fresh scheduler + load balancer — their
        state is what the trial measures, so only the stateless work is
        hoisted out of the loop.
        """
        tracer = get_tracer()
        search_span = tracer.span(
            "window.search", nest=nest.name, sample=sample
        )
        instances = self._sample_instances(program, nest, sample)
        sizes = range(1, self.config.max_window_size + 1)
        if self.config.jobs > 1 and len(instances) > 0:
            movement_by_size = self._parallel_trials(program, nest, sample, sizes)
        else:
            movement_by_size = {}
            for size in sizes:
                scheduler = self._scheduler()
                movement_by_size[size] = self._sampled_movement(
                    scheduler, instances, size
                )
        best_size = min(movement_by_size, key=lambda s: (movement_by_size[s], s))
        if tracer.enabled:
            # Emitted after all trials complete (not per trial) so the
            # stream is identical whether the trials ran serial (jobs=1,
            # in-process) or fanned out over worker processes.
            for size in sorted(movement_by_size):
                tracer.point(
                    "window.candidate",
                    nest=nest.name,
                    size=size,
                    movement=movement_by_size[size],
                )
        search_span.add(best_size=best_size, movement=movement_by_size[best_size])
        search_span.end()
        return best_size, movement_by_size

    def _parallel_trials(
        self, program: Program, nest: LoopNest, sample: int, sizes: range
    ) -> Dict[int, int]:
        """Fan the independent candidate-size trials over worker processes.

        Every worker re-derives its trial from a pickled copy of the parent
        state, so trials cannot observe each other; instance streams, page
        translations, and tie-breaking are all deterministic, which keeps
        the parallel result equal to the serial one (regression-tested).
        """
        nest_index = next(
            i for i, candidate in enumerate(program.nests) if candidate is nest
        )
        skipped = (
            tuple(sorted(self._session.skip_passes))
            if self._session is not None
            else ()
        )
        payloads = [
            (
                self.machine,
                self.locator.predictor,
                self.config,
                program,
                nest_index,
                size,
                sample,
                self.fallback_nodes,
                self.split_plan,
                skipped,
            )
            for size in sizes
        ]
        workers = min(self.config.jobs, len(payloads))
        movement_by_size: Dict[int, int] = {}
        with ProcessPoolExecutor(max_workers=workers) as executor:
            for size, movement in executor.map(_window_size_trial, payloads):
                movement_by_size[size] = movement
        return movement_by_size

    def _scheduler(self) -> WindowScheduler:
        # No explicit balancer: each trial's WindowScheduler builds its own
        # fresh one (honoring the session's balance gating), so trials stay
        # apples-to-apples.
        return WindowScheduler(
            self.machine,
            self.locator,
            self.config,
            uid_counter=self.uid_counter,
            fallback_nodes=self.fallback_nodes,
            split_plan=self.split_plan,
            split_cache=self._split_cache,
            session=self._session,
            templates=self._templates,
        )

    def _sample_instances(
        self, program: Program, nest: LoopNest, sample: int
    ) -> List[StatementInstance]:
        """The nest's leading instances, materialized once per search."""
        stream = program.nest_instances(nest, program.seq_base_of(nest))
        if sample:
            return list(itertools.islice(stream, sample))
        return list(stream)

    @staticmethod
    def _sampled_movement(
        scheduler: WindowScheduler,
        instances: Sequence[StatementInstance],
        size: int,
    ) -> int:
        """Movement of ``size``-windows over the materialized sample."""
        movement = 0
        for start in range(0, len(instances), size):
            window = instances[start : start + size]
            movement += scheduler.schedule_window(window, sync_graph=False).movement
        return movement


def _window_size_trial(payload) -> Tuple[int, int]:
    """Process-pool worker: one candidate window size's sampled movement."""
    (
        machine,
        predictor,
        config,
        program,
        nest_index,
        size,
        sample,
        fallback_nodes,
        split_plan,
        skipped,
    ) = payload
    nest = program.nests[nest_index]
    locator = DataLocator(machine, predictor)
    session = None
    if skipped:
        # Rebuild just enough session context for inline-pass gating; the
        # worker's timings die with the process, which is fine — the parent
        # charges the search to the schedule pass as a whole.
        from repro.core.partitioner import PartitionConfig
        from repro.pipeline.session import CompilationSession

        session = CompilationSession(
            machine=machine,
            config=PartitionConfig(window=config),
            skip_passes=frozenset(skipped),
        )
    search = WindowSizeSearch(
        machine,
        locator,
        config,
        fallback_nodes=fallback_nodes,
        split_plan=split_plan,
        session=session,
    )
    instances = search._sample_instances(program, nest, sample)
    movement = search._sampled_movement(search._scheduler(), instances, size)
    return size, movement
