"""The top-level compiler facade: :class:`NdpPartitioner`.

Glues the whole of Algorithm 1 together for a program:

1. declare the program's arrays on the machine and record an access-count
   profile (drives flat-MCDRAM placement, Section 6.1's VTune step);
2. train the L2 hit/miss predictor on a trace of the default execution
   (Section 4.1 — mispredicted references are located at their MC);
3. per loop nest, run the adaptive window-size search (Section 4.4) or a
   caller-fixed window size, producing the nest's subcomputation schedule;
4. aggregate the compile-time statistics the paper reports: per-statement
   data movement (Fig 13), degree of subcomputation parallelism (Fig 14),
   synchronizations per statement (Fig 15), and the operator mix of the
   re-mapped computations (Table 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import check
from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.check import invariants
from repro.cache.predictor import HitMissPredictor
from repro.core.locator import DataLocator
from repro.core.profiling import build_split_plan, profile_statements
from repro.core.window import (
    NestSchedule,
    SearchOutcome,
    WindowConfig,
    WindowScheduler,
    WindowSizeSearch,
)
from repro.errors import SchedulingError
from repro.ir.dependence import may_depend
from repro.ir.inspector import InspectorExecutor
from repro.ir.program import Program
from repro.obs.tracer import get_tracer
from repro.utils.stats import mean


@dataclass(frozen=True)
class PartitionConfig:
    """Configuration of a partitioning run."""

    window: WindowConfig = WindowConfig()
    adaptive_window: bool = True
    fixed_window_size: int = 1
    use_predictor: bool = True
    predictor_training_instances: int = 4000
    profile_instances: int = 4000
    #: The per-nest empirical gate simulates each candidate split plan over
    #: this many leading instances (0 = the whole nest, the default: short
    #: samples miss cross-timing-step dependences and steady-state
    #: congestion) and keeps the best.  Set negative to disable the gate.
    gate_sample_instances: int = 0
    #: Movement regression tolerated by the gate: a split plan must deliver
    #: better time AND at most this factor of the default's data movement
    #: (the paper's first-class metric is movement; a plan that wins time by
    #: flooding the network is not the paper's optimization).
    gate_movement_tolerance: float = 1.05
    #: Skip profiling and the gate, using exactly this statement->split
    #: mapping (window-size sweeps reuse the adaptive run's plan).
    split_plan_override: Optional[Dict] = None


@dataclass
class PartitionResult:
    """Everything the compiler produced for one program."""

    program_name: str
    nest_schedules: Dict[str, NestSchedule]
    window_sizes: Dict[str, int]
    movement_by_size: Dict[str, Dict[int, int]]
    predictor_accuracy: Optional[float] = None
    #: Which plan won each nest's empirical gate: star / profile / split.
    variant_by_nest: Dict[str, str] = field(default_factory=dict)
    #: The chosen (nest, body_index) -> split? decisions, reusable via
    #: PartitionConfig.split_plan_override.
    split_plan: Dict = field(default_factory=dict)

    @property
    def movement(self) -> int:
        """Total predicted data movement (links traversed) of the schedule."""
        return sum(s.movement for s in self.nest_schedules.values())

    def units(self):
        """All scheduled subcomputations, simulator-ready, in program order."""
        out = []
        for schedule in self.nest_schedules.values():
            for statement_schedule in schedule.statement_schedules():
                out.extend(statement_schedule.subcomputations)
        return out

    @property
    def statement_count(self) -> int:
        """Number of scheduled statement instances across all nests."""
        return sum(s.statement_count for s in self.nest_schedules.values())

    def per_statement_movement(self) -> List[int]:
        """Each statement instance's movement, in program order."""
        out: List[int] = []
        for schedule in self.nest_schedules.values():
            out.extend(schedule.per_statement_movement())
        return out

    def parallel_degrees(self) -> List[int]:
        """Per-statement count of distinct execution nodes (Fig 14)."""
        out: List[int] = []
        for schedule in self.nest_schedules.values():
            out.extend(schedule.parallel_degrees())
        return out

    def average_parallelism(self) -> float:
        """Mean parallel degree over all statement instances."""
        return mean(self.parallel_degrees())

    def max_parallelism(self) -> int:
        """Largest parallel degree of any statement instance."""
        degrees = self.parallel_degrees()
        return max(degrees) if degrees else 0

    def syncs_per_statement(self) -> float:
        """Average minimized synchronizations per statement (Fig 15)."""
        statements = self.statement_count
        if not statements:
            return 0.0
        total = sum(s.sync_count for s in self.nest_schedules.values())
        return total / statements

    def syncs_per_statement_unminimized(self) -> float:
        """Average pre-minimization synchronizations per statement."""
        statements = self.statement_count
        if not statements:
            return 0.0
        total = sum(
            s.sync_count_unminimized for s in self.nest_schedules.values()
        )
        return total / statements

    def remapped_op_fractions(self) -> Dict[str, float]:
        """Fraction of re-mapped ops by type: add/sub, mul/div, others.

        Table 3's categories.  Our IR has the four arithmetic operators;
        'others' counts the pure-move forwards the scheduler emits.
        """
        counts: Dict[str, int] = {}
        for schedule in self.nest_schedules.values():
            for op, count in schedule.remapped_op_breakdown().items():
                counts[op] = counts.get(op, 0) + count
        addsub = counts.get("+", 0) + counts.get("-", 0)
        muldiv = counts.get("*", 0) + counts.get("/", 0)
        others = sum(counts.values()) - addsub - muldiv
        total = max(addsub + muldiv + others, 1)
        return {
            "add/sub": addsub / total,
            "mul/div": muldiv / total,
            "others": others / total,
        }

    def modeled_l1_hits(self) -> int:
        """Compile-time estimate of L1 reuse hits across all nests."""
        return sum(s.l1_hits_modeled for s in self.nest_schedules.values())


def profile_access_counts(
    program: Program, max_instances: int = 4000
) -> Dict[str, float]:
    """Per-array dynamic access counts (the profiling step of Section 6.1)."""
    counts: Dict[str, float] = {}
    seen = 0
    for instance in program.instances():
        for access in instance.accesses():
            counts[access.array] = counts.get(access.array, 0.0) + 1.0
        seen += 1
        if seen >= max_instances:
            break
    return counts


def train_predictor(
    machine: Machine,
    program: Program,
    predictor: HitMissPredictor,
    max_instances: int = 4000,
) -> float:
    """Train the L2 predictor on a default-execution trace; returns accuracy.

    Simulates only the shared L2 banks (the predictor predicts L2 outcomes;
    L1 behaviour is irrelevant to it) over the program's access stream in
    default execution order.
    """
    program.declare_on(machine)
    caches = CacheSystem(
        machine.node_count,
        machine.l1_config,
        machine.l2_config,
        machine.bank_to_node,
    )
    seen = 0
    for instance in program.instances():
        for access in instance.accesses():
            address = machine.layout.pa_of(access.array, access.index)
            block = machine.layout.block_of(access.array, access.index)
            bank = machine.layout.l2_bank_of(access.array, access.index)
            was_hit = caches.l2_banks[bank].access(block)
            predictor.predict_and_train(address, was_hit)
        seen += 1
        if seen >= max_instances:
            break
    return predictor.accuracy()


class NdpPartitioner:
    """The compiler: partitions a program into scheduled subcomputations."""

    def __init__(self, machine: Machine, config: PartitionConfig = PartitionConfig()):
        self.machine = machine
        self.config = config
        self.predictor: Optional[HitMissPredictor] = (
            HitMissPredictor() if config.use_predictor else None
        )

    def partition(self, program: Program) -> PartitionResult:
        """Run the full pipeline on ``program``.

        With tracing enabled (:mod:`repro.obs`), every phase — array
        profiling, predictor training, split planning, the per-nest gate
        and window-size search — emits structured span/point events;
        tracing never changes the produced schedule.
        """
        tracer = get_tracer()
        compile_span = tracer.span(
            "compile", program=program.name, nests=len(program.nests)
        )
        program.declare_on(self.machine)
        with tracer.span("compile.profile_arrays"):
            self.machine.record_profile(
                profile_access_counts(program, self.config.profile_instances)
            )
        predictor_accuracy: Optional[float] = None
        if self.predictor is not None:
            with tracer.span("compile.train_predictor") as train_span:
                predictor_accuracy = train_predictor(
                    self.machine,
                    program,
                    self.predictor,
                    self.config.predictor_training_instances,
                )
                train_span.add(accuracy=round(predictor_accuracy, 6))
        # Irregular nests need inspection before their indirect accesses can
        # be resolved; the inspector also validates index data availability.
        if may_depend(program):
            with tracer.span("compile.inspect"):
                InspectorExecutor(program).inspect_all()

        locator = DataLocator(self.machine, self.predictor)
        # The default placement's iteration->node assignment: unsplit
        # statements run exactly where the default would run them, so "do
        # not split" always degenerates to the baseline (the paper's scheme
        # optimizes *on top of* the locality-optimized default, Section 6.1).
        from repro.baselines.default_placement import DefaultPlacement

        fallback_nodes = DefaultPlacement(self.machine).assignment(program)
        if self.config.split_plan_override is None:
            with tracer.span("compile.split_plan"):
                locator_for_profiling = DataLocator(self.machine, self.predictor)
                profiles = profile_statements(
                    self.machine,
                    program,
                    locator_for_profiling,
                    fallback_nodes,
                    sample_per_nest=self.config.profile_instances,
                )
                split_plan = build_split_plan(
                    profiles, self.config.window.split_bias
                )
                if tracer.enabled:
                    for key in sorted(profiles):
                        profile = profiles[key]
                        tracer.point(
                            "compile.statement_profile",
                            nest=key[0],
                            body_index=key[1],
                            instances=profile.instances,
                            star_movement=round(profile.star_movement, 6),
                            mst_weight=round(profile.mst_weight, 6),
                            serial_chain=profile.serial_chain,
                            split=split_plan[key],
                        )
        else:
            profiles = {}
            split_plan = dict(self.config.split_plan_override)
        nest_schedules: Dict[str, NestSchedule] = {}
        window_sizes: Dict[str, int] = {}
        movement_by_size: Dict[str, Dict[int, int]] = {}
        variant_by_nest: Dict[str, str] = {}
        chosen_plan: Dict = {}
        uid_counter = itertools.count()
        for nest in program.nests:
            if nest.name in nest_schedules:
                raise SchedulingError(f"duplicate nest name {nest.name!r}")
            nest_span = tracer.span(
                "compile.nest", nest=nest.name, statements=nest.body_size
            )
            # One split cache per nest, shared by the gate's candidate-plan
            # passes, the window-size search, and the final scheduling: a
            # statement's empty-map split depends only on its operands, so
            # the MST work is done once per instance instead of once per
            # pass (see WindowScheduler._split_of for the exact conditions).
            split_cache: Dict = {}
            reuse = None
            if self.config.split_plan_override is not None:
                keys = [(nest.name, b) for b in range(nest.body_size)]
                plan = {k: bool(split_plan.get(k, False)) for k in keys}
                variant = "override"
            else:
                plan, variant, reuse = self._choose_nest_plan(
                    program, nest, locator, fallback_nodes, split_plan, profiles,
                    split_cache, uid_counter,
                )
            chosen_plan.update(plan)
            variant_by_nest[nest.name] = variant
            if reuse is not None:
                # The winning gate measure already scheduled the whole nest
                # with the shared uid counter under conditions that make it
                # bit-equal to the search below (see _choose_nest_plan);
                # redoing the search/schedule would only repeat the work.
                schedule, size, by_size = reuse
                nest_schedules[nest.name] = schedule
                window_sizes[nest.name] = size
                movement_by_size[nest.name] = by_size
            elif self.config.adaptive_window and any(plan.values()):
                outcome = WindowSizeSearch(
                    self.machine,
                    locator,
                    self.config.window,
                    uid_counter=uid_counter,
                    fallback_nodes=fallback_nodes,
                    split_plan=plan,
                    split_cache=split_cache,
                ).search(program, nest)
                nest_schedules[nest.name] = outcome.best_schedule
                window_sizes[nest.name] = outcome.best_size
                movement_by_size[nest.name] = outcome.movement_by_size
            else:
                # All-star nests (== the default execution) and fixed-window
                # configurations skip the size search.
                size = (
                    1
                    if self.config.adaptive_window
                    else self.config.fixed_window_size
                )
                scheduler = WindowScheduler(
                    self.machine,
                    locator,
                    self.config.window,
                    uid_counter=uid_counter,
                    fallback_nodes=fallback_nodes,
                    split_plan=plan,
                    split_cache=split_cache,
                )
                schedule = scheduler.schedule_nest(program, nest, size)
                nest_schedules[nest.name] = schedule
                window_sizes[nest.name] = size
                movement_by_size[nest.name] = {size: schedule.movement}
            final = nest_schedules[nest.name]
            nest_span.add(
                variant=variant,
                window_size=window_sizes[nest.name],
                movement=final.movement,
                syncs=final.sync_count,
                syncs_unminimized=final.sync_count_unminimized,
                reused_gate_schedule=reuse is not None,
            )
            nest_span.end()
        result = PartitionResult(
            program_name=program.name,
            nest_schedules=nest_schedules,
            window_sizes=window_sizes,
            movement_by_size=movement_by_size,
            predictor_accuracy=predictor_accuracy,
            variant_by_nest=variant_by_nest,
            split_plan=chosen_plan,
        )
        compile_span.add(
            movement=result.movement, statements=result.statement_count
        )
        compile_span.end()
        if check.enabled():
            # Check mode: the finished compile must account consistently
            # (aggregates re-sum from their decompositions), its schedule
            # must be a well-formed dependence DAG, and on a degraded
            # machine nothing may be placed on a tile the plan ever kills.
            invariants.check_partition_accounting(result)
            units = result.units()
            invariants.check_units_wellformed(units)
            invariants.check_unit_nodes_alive(units, self.machine.dead_nodes)
        return result

    def _choose_nest_plan(
        self,
        program: Program,
        nest,
        locator: DataLocator,
        fallback_nodes: Dict[int, int],
        profile_plan: Dict,
        profiles: Dict,
        split_cache: Dict,
        uid_counter,
    ):
        """Pick the nest's split plan empirically (the gate).

        Candidate plans — all-star (identical to the default execution), the
        profile-derived per-statement plan, and all-split (every statement
        except serial-chain reductions) — are each scheduled over the nest
        and *simulated*.  A splitting plan is accepted only when it improves
        execution time AND does not regress data movement beyond the
        configured tolerance (movement is the paper's first-class metric);
        among accepted plans the fastest wins.  The all-star plan is always
        a candidate, so a partitioned build never regresses a nest below
        the baseline.
        """
        keys = [(nest.name, b) for b in range(nest.body_size)]
        star = {key: False for key in keys}
        from_profile = {key: bool(profile_plan.get(key, False)) for key in keys}
        all_split = {
            key: not (key in profiles and profiles[key].serial_chain)
            for key in keys
        }
        tracer = get_tracer()
        if self.config.window.always_split:
            tracer.point("gate.skip", nest=nest.name, reason="always_split")
            return all_split, "split", None
        candidates = []
        if any(from_profile.values()):
            candidates.append(("profile", from_profile))
        if any(all_split.values()) and all_split != from_profile:
            candidates.append(("split", all_split))
        if not candidates or self.config.gate_sample_instances < 0:
            variant = "profile" if any(from_profile.values()) else "star"
            tracer.point(
                "gate.skip",
                nest=nest.name,
                reason="no_candidates" if not candidates else "gate_disabled",
                variant=variant,
            )
            return from_profile, variant, None

        star_cycles, star_movement, star_reuse = self._gate_measure(
            program, nest, locator, fallback_nodes, star, split_cache, uid_counter
        )
        tracer.point(
            "gate.candidate",
            nest=nest.name,
            variant="star",
            cycles=star_cycles,
            movement=star_movement,
        )
        best_plan = star
        best_variant = "star"
        best_cycles = star_cycles
        best_reuse = star_reuse
        tolerance = self.config.gate_movement_tolerance
        for variant, plan in candidates:
            cycles, movement, reuse = self._gate_measure(
                program, nest, locator, fallback_nodes, plan, split_cache,
                uid_counter,
            )
            accepted = (
                cycles < best_cycles
                and movement <= tolerance * max(star_movement, 1)
            )
            tracer.point(
                "gate.candidate",
                nest=nest.name,
                variant=variant,
                cycles=cycles,
                movement=movement,
                accepted=accepted,
            )
            if accepted:
                best_cycles = cycles
                best_plan = plan
                best_variant = variant
                best_reuse = reuse
        # The winning measure's full-nest schedule can stand in for the
        # final scheduling pass only when that pass would redo bit-equal
        # work: the gate covered the whole nest, the final pass is the
        # adaptive one, the size search would see the same sample, and the
        # predictor is pure (a stateful oracle's answers depend on the
        # query stream, so skipped queries would change later answers).
        if best_reuse is not None:
            count = nest.instance_count
            sample = self.config.gate_sample_instances
            limit = sample if sample > 0 else count
            gate_eff = min(count, min(limit, 768))
            cfg_sample = self.config.window.search_sample_instances
            final_eff = min(count, cfg_sample) if cfg_sample else count
            pure = getattr(self.predictor, "pure_predict", True)
            reusable = (
                self.config.adaptive_window
                and pure
                and limit >= count
                and (not any(best_plan.values()) or gate_eff == final_eff)
            )
            if not reusable:
                best_reuse = None
        tracer.point(
            "gate.verdict",
            nest=nest.name,
            variant=best_variant,
            cycles=best_cycles,
            schedule_reused=best_reuse is not None,
        )
        return best_plan, best_variant, best_reuse

    def _gate_measure(
        self,
        program: Program,
        nest,
        locator: DataLocator,
        fallback_nodes: Dict[int, int],
        plan: Dict,
        split_cache: Dict,
        uid_counter,
    ):
        """(cycles, movement, reuse) of one candidate plan over the sample.

        ``reuse`` is ``(NestSchedule, size, movement_by_size)`` when the
        measure scheduled the whole nest (gate sample covers it), else
        ``None``; the caller decides whether the final pass may adopt it.
        """
        from repro.sim.engine import SimConfig, Simulator

        scheduler = WindowScheduler(
            self.machine,
            locator,
            self.config.window,
            uid_counter=uid_counter,
            fallback_nodes=fallback_nodes,
            split_plan=plan,
            split_cache=split_cache,
        )
        size = 1
        by_size = None
        sample = self.config.gate_sample_instances
        limit = sample if sample > 0 else nest.instance_count
        if any(plan.values()):
            outcome = WindowSizeSearch(
                self.machine,
                locator,
                self.config.window,
                fallback_nodes=fallback_nodes,
                split_plan=plan,
                split_cache=split_cache,
            ).search_sample(program, nest, min(limit, 768))
            size = outcome.best_size
            by_size = outcome.movement_by_size
        if limit >= nest.instance_count:
            # Whole-nest measure: identical to schedule_nest's windowing.
            schedule = scheduler.schedule_nest(program, nest, size)
            units = [
                sub
                for window in schedule.windows
                for statement_schedule in window.schedules
                for sub in statement_schedule.subcomputations
            ]
            if by_size is None:
                by_size = {size: schedule.movement}
            reuse = (schedule, size, by_size)
        else:
            units = []
            buffer = []
            seen = 0
            for instance in program.nest_instances(nest, program.seq_base_of(nest)):
                buffer.append(instance)
                seen += 1
                if len(buffer) == size:
                    window = scheduler.schedule_window(buffer)
                    for statement_schedule in window.schedules:
                        units.extend(statement_schedule.subcomputations)
                    buffer = []
                if seen >= limit:
                    break
            if buffer:
                window = scheduler.schedule_window(buffer)
                for statement_schedule in window.schedules:
                    units.extend(statement_schedule.subcomputations)
            reuse = None
        self.machine.mcdram.reset()
        metrics = Simulator(self.machine, SimConfig()).run(units)
        return metrics.total_cycles, metrics.data_movement, reuse
