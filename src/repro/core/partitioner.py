"""The top-level compiler facade: :class:`NdpPartitioner`.

Glues the whole of Algorithm 1 together for a program:

1. declare the program's arrays on the machine and record an access-count
   profile (drives flat-MCDRAM placement, Section 6.1's VTune step);
2. train the L2 hit/miss predictor on a trace of the default execution
   (Section 4.1 — mispredicted references are located at their MC);
3. per loop nest, run the adaptive window-size search (Section 4.4) or a
   caller-fixed window size, producing the nest's subcomputation schedule;
4. aggregate the compile-time statistics the paper reports: per-statement
   data movement (Fig 13), degree of subcomputation parallelism (Fig 14),
   synchronizations per statement (Fig 15), and the operator mix of the
   re-mapped computations (Table 3).

Since the pass-pipeline refactor the stages live in
:mod:`repro.pipeline.passes`; this class is the stable facade — it builds
a :class:`~repro.pipeline.session.CompilationSession` around its machine
and config and drives :func:`repro.pipeline.compile_program`.  The
``predictor`` attribute stays caller-replaceable (the ideal-analysis
oracle swaps one in after construction) and is handed to the pipeline at
``partition()`` time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.cache.predictor import HitMissPredictor
from repro.core.window import NestSchedule, WindowConfig
from repro.ir.program import Program
from repro.utils.stats import mean


@dataclass(frozen=True)
class PartitionConfig:
    """Configuration of a partitioning run."""

    window: WindowConfig = WindowConfig()
    adaptive_window: bool = True
    fixed_window_size: int = 1
    use_predictor: bool = True
    predictor_training_instances: int = 4000
    profile_instances: int = 4000
    #: The per-nest empirical gate simulates each candidate split plan over
    #: this many leading instances (0 = the whole nest, the default: short
    #: samples miss cross-timing-step dependences and steady-state
    #: congestion) and keeps the best.  Set negative to disable the gate.
    gate_sample_instances: int = 0
    #: Movement regression tolerated by the gate: a split plan must deliver
    #: better time AND at most this factor of the default's data movement
    #: (the paper's first-class metric is movement; a plan that wins time by
    #: flooding the network is not the paper's optimization).
    gate_movement_tolerance: float = 1.05
    #: Skip profiling and the gate, using exactly this statement->split
    #: mapping (window-size sweeps reuse the adaptive run's plan).
    split_plan_override: Optional[Dict] = None


@dataclass
class PartitionResult:
    """Everything the compiler produced for one program."""

    program_name: str
    nest_schedules: Dict[str, NestSchedule]
    window_sizes: Dict[str, int]
    movement_by_size: Dict[str, Dict[int, int]]
    predictor_accuracy: Optional[float] = None
    #: Which plan won each nest's empirical gate: star / profile / split.
    variant_by_nest: Dict[str, str] = field(default_factory=dict)
    #: The chosen (nest, body_index) -> split? decisions, reusable via
    #: PartitionConfig.split_plan_override.
    split_plan: Dict = field(default_factory=dict)

    @property
    def movement(self) -> int:
        """Total predicted data movement (links traversed) of the schedule."""
        return sum(s.movement for s in self.nest_schedules.values())

    def units(self):
        """All scheduled subcomputations, simulator-ready, in program order."""
        out = []
        for schedule in self.nest_schedules.values():
            for statement_schedule in schedule.statement_schedules():
                out.extend(statement_schedule.subcomputations)
        return out

    @property
    def statement_count(self) -> int:
        """Number of scheduled statement instances across all nests."""
        return sum(s.statement_count for s in self.nest_schedules.values())

    def per_statement_movement(self) -> List[int]:
        """Each statement instance's movement, in program order."""
        out: List[int] = []
        for schedule in self.nest_schedules.values():
            out.extend(schedule.per_statement_movement())
        return out

    def parallel_degrees(self) -> List[int]:
        """Per-statement count of distinct execution nodes (Fig 14)."""
        out: List[int] = []
        for schedule in self.nest_schedules.values():
            out.extend(schedule.parallel_degrees())
        return out

    def average_parallelism(self) -> float:
        """Mean parallel degree over all statement instances."""
        return mean(self.parallel_degrees())

    def max_parallelism(self) -> int:
        """Largest parallel degree of any statement instance."""
        degrees = self.parallel_degrees()
        return max(degrees) if degrees else 0

    def syncs_per_statement(self) -> float:
        """Average minimized synchronizations per statement (Fig 15)."""
        statements = self.statement_count
        if not statements:
            return 0.0
        total = sum(s.sync_count for s in self.nest_schedules.values())
        return total / statements

    def syncs_per_statement_unminimized(self) -> float:
        """Average pre-minimization synchronizations per statement."""
        statements = self.statement_count
        if not statements:
            return 0.0
        total = sum(
            s.sync_count_unminimized for s in self.nest_schedules.values()
        )
        return total / statements

    def remapped_op_fractions(self) -> Dict[str, float]:
        """Fraction of re-mapped ops by type: add/sub, mul/div, others.

        Table 3's categories.  Our IR has the four arithmetic operators;
        'others' counts the pure-move forwards the scheduler emits.
        """
        counts: Dict[str, int] = {}
        for schedule in self.nest_schedules.values():
            for op, count in schedule.remapped_op_breakdown().items():
                counts[op] = counts.get(op, 0) + count
        addsub = counts.get("+", 0) + counts.get("-", 0)
        muldiv = counts.get("*", 0) + counts.get("/", 0)
        others = sum(counts.values()) - addsub - muldiv
        total = max(addsub + muldiv + others, 1)
        return {
            "add/sub": addsub / total,
            "mul/div": muldiv / total,
            "others": others / total,
        }

    def modeled_l1_hits(self) -> int:
        """Compile-time estimate of L1 reuse hits across all nests."""
        return sum(s.l1_hits_modeled for s in self.nest_schedules.values())


def profile_access_counts(
    program: Program, max_instances: int = 4000
) -> Dict[str, float]:
    """Per-array dynamic access counts (the profiling step of Section 6.1)."""
    counts: Dict[str, float] = {}
    seen = 0
    for instance in program.instances():
        for access in instance.accesses():
            counts[access.array] = counts.get(access.array, 0.0) + 1.0
        seen += 1
        if seen >= max_instances:
            break
    return counts


def train_predictor(
    machine: Machine,
    program: Program,
    predictor: HitMissPredictor,
    max_instances: int = 4000,
) -> float:
    """Train the L2 predictor on a default-execution trace; returns accuracy.

    Simulates only the shared L2 banks (the predictor predicts L2 outcomes;
    L1 behaviour is irrelevant to it) over the program's access stream in
    default execution order.
    """
    program.declare_on(machine)
    caches = CacheSystem(
        machine.node_count,
        machine.l1_config,
        machine.l2_config,
        machine.bank_to_node,
    )
    seen = 0
    for instance in program.instances():
        for access in instance.accesses():
            address = machine.layout.pa_of(access.array, access.index)
            block = machine.layout.block_of(access.array, access.index)
            bank = machine.layout.l2_bank_of(access.array, access.index)
            was_hit = caches.l2_banks[bank].access(block)
            predictor.predict_and_train(address, was_hit)
        seen += 1
        if seen >= max_instances:
            break
    return predictor.accuracy()


class NdpPartitioner:
    """The compiler: partitions a program into scheduled subcomputations.

    A facade over :mod:`repro.pipeline`: each ``partition()`` call runs
    the registered pass pipeline under a fresh
    :class:`~repro.pipeline.session.CompilationSession` built from (or
    forwarded by) the constructor arguments.
    """

    def __init__(
        self,
        machine: Machine,
        config: PartitionConfig = PartitionConfig(),
        session=None,
    ):
        """Facade over ``session`` (or a fresh machine/config pair)."""
        if session is not None:
            machine = session.machine
            config = session.config
        self.machine = machine
        self.config = config
        self._session = session
        self.predictor: Optional[HitMissPredictor] = (
            HitMissPredictor() if config.use_predictor else None
        )

    @classmethod
    def from_session(cls, session) -> "NdpPartitioner":
        """A partitioner driving ``session``'s machine, config, and pipeline."""
        return cls(session.machine, session.config, session=session)

    def partition(self, program: Program) -> PartitionResult:
        """Run the full pipeline on ``program``.

        With tracing enabled (:mod:`repro.obs`), every phase — array
        profiling, predictor training, split planning, the per-nest gate
        and window-size search — emits structured span/point events;
        tracing never changes the produced schedule.
        """
        from repro.pipeline import compile_program
        from repro.pipeline.session import CompilationSession

        session = self._session
        if session is None:
            session = CompilationSession(machine=self.machine, config=self.config)
        # The predictor is read at call time, not construction time: the
        # ideal-analysis baseline (and tests) replace ``self.predictor``
        # after __init__ and expect the swap to take effect.
        return compile_program(
            program, session, initial={"predictor": self.predictor}
        )
