"""Load balancing across nodes (paper Section 4.5).

Subcomputation cost is measured in operations, with division costing 10x an
addition or multiplication (the paper's footnote 5).  The scheduler assigns
a subcomputation to a node only if doing so keeps the load balanced:
if the assignment would push the node more than ``threshold`` (default 10%)
above the next most-loaded node, the node is skipped and the next candidate
is considered.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro import check
from repro.check import invariants
from repro.obs.tracer import get_tracer

#: Cost of each primitive operator; division is 10x (paper footnote 5).
OP_COSTS: Dict[str, float] = {"+": 1.0, "-": 1.0, "*": 1.0, "/": 10.0}


def op_cost(op: str, count: int = 1) -> float:
    """Weighted cost of ``count`` applications of ``op``."""
    return OP_COSTS.get(op, 1.0) * count


class LoadBalancer:
    """Tracks per-node load and arbitrates subcomputation placement.

    ``enabled=False`` turns the 10% veto off entirely (every candidate
    passes, so ``choose`` returns the first = minimum-movement one) while
    load accounting keeps running — the ``--skip-pass balance`` pipeline
    configuration, where ``imbalance()`` still reports the damage.
    """

    def __init__(self, node_count: int, threshold: float = 0.10, enabled: bool = True):
        """Track per-node load; ``threshold`` is the paper's 10% rule."""
        self.node_count = node_count
        self.threshold = threshold
        self.enabled = enabled
        self.load = [0.0] * node_count
        self.skips = 0
        # Running top-2 load values (and which node holds the maximum).
        # ``would_unbalance`` only ever needs "the highest load among the
        # *other* nodes": the maximum when the queried node is not the
        # leader, the runner-up value when it is.  Loads only grow (record
        # adds positive costs), so the pair can be maintained in O(1) per
        # record instead of scanning every node per query.
        self._top_node = -1
        self._top_load = 0.0
        self._second_load = 0.0

    def would_unbalance(self, node: int, cost: float) -> bool:
        """True when assigning ``cost`` to ``node`` breaks the 10% rule.

        The rule compares the node's would-be load against the next most
        highly-loaded node: exceeding it by more than ``threshold`` is a
        veto.  A chip with no load anywhere never vetoes, and a disabled
        balancer never vetoes at all.
        """
        if not self.enabled:
            return False
        others_max = (
            self._second_load if node == self._top_node else self._top_load
        )
        if others_max <= 0.0:
            # Nothing scheduled elsewhere yet; compare against the average
            # would-be load to avoid every first assignment being vetoed.
            return False
        return self.load[node] + cost > (1.0 + self.threshold) * others_max

    def choose(self, candidates: Sequence[int], cost: float) -> int:
        """First candidate that passes the balance check, else least loaded.

        ``candidates`` are ordered by scheduling preference (minimum data
        movement first); the fallback mirrors the paper's "skips this node
        and moves to the next one".
        """
        chosen = self._choose(candidates, cost)
        if check.enabled():
            # Check mode: the verdict must follow the 10% rule (the chosen
            # node passed the veto test, or every candidate was vetoed and
            # it is the least-loaded one).  Loads are unchanged by choose,
            # so re-asking would_unbalance here sees the same state.
            invariants.check_balancer_choice(self, candidates, cost, chosen)
        return chosen

    def _choose(self, candidates: Sequence[int], cost: float) -> int:
        for node in candidates:
            if not self.would_unbalance(node, cost):
                return node
            self.skips += 1
            tracer = get_tracer()
            if tracer.debug:
                # Firehose (one event per vetoed placement): debug only.
                tracer.point(
                    "balance.veto", node=node, cost=cost,
                    load=round(self.load[node], 3),
                )
        return min(candidates, key=lambda n: (self.load[n], n))

    def record(self, node: int, cost: float) -> None:
        """Commit ``cost`` to ``node``'s running load."""
        new_load = self.load[node] + cost
        self.load[node] = new_load
        if node == self._top_node:
            self._top_load = new_load
        elif new_load > self._top_load:
            self._second_load = self._top_load
            self._top_node = node
            self._top_load = new_load
        elif new_load > self._second_load:
            self._second_load = new_load

    def imbalance(self) -> float:
        """max/mean load ratio (1.0 = perfectly balanced; 0 when idle)."""
        busy = [load for load in self.load if load > 0]
        if not busy:
            return 0.0
        mean = sum(self.load) / self.node_count
        return max(self.load) / mean if mean > 0 else 0.0

    def reset(self) -> None:
        """Clear all load state and the skip counter."""
        self.load = [0.0] * self.node_count
        self.skips = 0
        self._top_node = -1
        self._top_load = 0.0
        self._second_load = 0.0
