"""Analytic L2 miss prediction from affine loop structure (DESIGN.md §12).

The default ``predict`` pass trains a two-bit-counter predictor on a
*simulated trace* of the default execution (:func:`repro.core.partitioner.
train_predictor`).  This module computes the same per-region on-chip/off-chip
verdicts **in closed form**, without simulating a single cache access:

1. :func:`repro.ir.affine.access_table` resolves every static reference of a
   nest over its whole iteration space as one ``int64`` column;
2. each access's cache line, home L2 bank, and 4KB region follow from the
   virtual address by pure arithmetic (the color-preserving page allocator
   guarantees the physical address keeps the bank and channel bits, and
   maps each virtual page to exactly one frame, so line/region *identity*
   is preserved by translation);
3. an access **hits** in its home bank when it reuses a line at short reuse
   distance (the line was touched within the last ``short_window`` stream
   positions, so fewer distinct lines than the bank's associativity can
   have intervened), or at long distance when the bank's whole program
   footprint fits its capacity (no capacity evictions possible);
4. a region is predicted **on-chip** when at least half of its accesses are
   modeled hits — the analytic analogue of the trace predictor's saturated
   counter, which also encodes "recent accesses to this page mostly hit".

The model is deliberately conservative where it cannot be exact: the first
touch of a line *within each nest* is a miss (no cross-nest reuse credit),
and a bank under capacity pressure only keeps short-distance reuses.  The
known divergences from the trace predictor, and the measured agreement on
the paper workloads, are documented in DESIGN.md §12.

:class:`AnalyticMissPredictor` is a drop-in for
:class:`repro.cache.predictor.HitMissPredictor` everywhere the pipeline
reads predictions (``predict``/``predict_many``/``pure_predict``); it is
selected with ``--predictor analytic`` (the ``predict_analytic`` pass).
The trace predictor stays the default and serves as the differential
oracle (:func:`repro.check.invariants.check_predictor_agreement`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.machine import Machine
from repro.cache.predictor import PredictorStats
from repro.errors import WorkloadError
from repro.ir.affine import NestAccessTable, access_table
from repro.ir.program import Program


@dataclass(frozen=True)
class NestLocality:
    """Closed-form locality summary of one nest (what DESIGN §12 tabulates).

    ``accesses`` counts every dynamic reference the nest issues;
    ``distinct_lines`` is its cache-line footprint; the two hit counters
    split the modeled L2 hits by mechanism (short reuse distance vs.
    footprint-fits temporal reuse).  ``affine`` is False when any column
    went through runtime index data (the inspector's tables) instead of a
    purely affine subscript.
    """

    nest_name: str
    accesses: int
    distinct_lines: int
    short_reuse_hits: int
    temporal_hits: int
    affine: bool

    @property
    def hit_fraction(self) -> float:
        """Modeled L2 hit fraction of the nest's access stream."""
        if not self.accesses:
            return 0.0
        return (self.short_reuse_hits + self.temporal_hits) / self.accesses


@dataclass
class LocalityModel:
    """The program-wide analytic model backing the predictor.

    ``region_verdicts`` maps a *virtual* 4KB region to its on-chip verdict;
    ``bank_footprint`` is the distinct-line count homed at each L2 bank
    (the capacity test of DESIGN §12); ``nests`` keeps the per-nest
    summaries for reports, the example walkthrough, and the docs.
    """

    region_verdicts: Dict[int, bool] = field(default_factory=dict)
    bank_footprint: Dict[int, int] = field(default_factory=dict)
    nests: List[NestLocality] = field(default_factory=list)
    skipped_nests: List[str] = field(default_factory=list)

    @property
    def hit_region_fraction(self) -> float:
        """Fraction of touched regions predicted on-chip."""
        if not self.region_verdicts:
            return 0.0
        hits = sum(1 for verdict in self.region_verdicts.values() if verdict)
        return hits / len(self.region_verdicts)

    def modeled_hit_fraction(self) -> float:
        """Access-weighted modeled L2 hit fraction over all analyzed nests."""
        total = sum(nest.accesses for nest in self.nests)
        if not total:
            return 0.0
        hits = sum(
            nest.short_reuse_hits + nest.temporal_hits for nest in self.nests
        )
        return hits / total


def _nest_stream(
    machine: Machine, table: NestAccessTable
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, bool]:
    """One nest's access stream as (lines, banks, regions, width, affine).

    The stream is in exact dynamic order: per iteration, the body's
    statements in order, each statement's reads (RHS order) then its write
    — the same order the scalar pipeline issues them.  ``width`` is the
    number of accesses per iteration (the stream's row width).
    """
    layout = machine.layout
    offset_width = layout.mapping.l2.offset_field.width
    region_width = layout.mapping.memory.offset_field.width
    columns = table.columns()
    affine = all(column.affine for column in columns)
    lines = np.empty((table.iterations, len(columns)), dtype=np.int64)
    banks = np.empty_like(lines)
    regions = np.empty_like(lines)
    for j, column in enumerate(columns):
        va = layout.va_map(column.array)[column.indices]
        lines[:, j] = va >> offset_width
        regions[:, j] = va >> region_width
        banks[:, j] = layout.bank_map(column.array)[column.indices]
    return (
        lines.ravel(),
        banks.ravel(),
        regions.ravel(),
        len(columns),
        affine,
    )


def _reuse_partition(
    lines: np.ndarray, short_window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions of short-distance and long-distance line reuses.

    A stable argsort groups equal lines with their stream positions
    ascending, so consecutive in-group position gaps are exactly the reuse
    gaps.  A gap of at most ``short_window`` positions bounds the distinct
    intervening lines by ``short_window`` (closed form: an affine column of
    element stride ``s`` revisits its line every ``line_size/(s*elem)``
    iterations, so unit-stride streams reuse at gap == stream width).
    """
    positions = np.arange(len(lines), dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    sorted_pos = positions[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    gaps = np.diff(sorted_pos)
    short = sorted_pos[1:][same & (gaps <= short_window)]
    long = sorted_pos[1:][same & (gaps > short_window)]
    return short, long


def build_locality_model(
    machine: Machine,
    program: Program,
    short_window: Optional[int] = None,
) -> LocalityModel:
    """The closed-form :class:`LocalityModel` of ``program`` on ``machine``.

    Two sweeps over the affine access tables: the first accumulates every
    bank's distinct-line footprint (the capacity test must see the whole
    program — banks are shared across nests); the second classifies each
    access as modeled hit or miss and reduces to per-region verdicts.
    Nests whose subscripts cannot be resolved (missing runtime index data)
    are skipped and recorded in ``skipped_nests`` — their regions keep the
    cold-region default (off-chip).
    """
    program.declare_on(machine)
    capacity_lines = machine.l2_config.line_count
    assoc = machine.l2_config.associativity

    from repro import check
    from repro.check import invariants

    tables: List[NestAccessTable] = []
    skipped: List[str] = []
    for nest in program.nests:
        try:
            table = access_table(program, nest)
        except WorkloadError:
            skipped.append(nest.name)
            continue
        if check.enabled():
            invariants.check_access_table(table, program, nest)
        tables.append(table)

    streams = [_nest_stream(machine, table) for table in tables]

    # Sweep 1: per-bank distinct-line footprint across the whole program.
    footprint: Dict[int, int] = {}
    if streams:
        all_lines = np.concatenate([s[0] for s in streams])
        all_banks = np.concatenate([s[1] for s in streams])
        # One bank per line (SNUCA): dedup lines, count survivors per bank.
        _, first = np.unique(all_lines, return_index=True)
        unique_banks = all_banks[first]
        for bank, count in zip(*np.unique(unique_banks, return_counts=True)):
            footprint[int(bank)] = int(count)
    fits = {bank: count <= capacity_lines for bank, count in footprint.items()}

    # Sweep 2: classify accesses, reduce to per-region verdicts.
    region_hits: Dict[int, int] = {}
    region_totals: Dict[int, int] = {}
    nests: List[NestLocality] = []
    for table, (lines, banks, regions, width, affine) in zip(tables, streams):
        window = short_window
        if window is None:
            # Two iterations' worth of accesses can intervene without
            # exceeding the bank's associativity in distinct lines.
            window = max(4, min(2 * width, assoc))
        short, long = _reuse_partition(lines, window)
        if len(long):
            fits_by_bank = np.zeros(int(banks.max()) + 1, dtype=bool)
            for bank, bank_fits in fits.items():
                if bank < len(fits_by_bank):
                    fits_by_bank[bank] = bank_fits
            long_hit = long[fits_by_bank[banks[long]]]
        else:
            long_hit = long
        hit = np.zeros(len(lines), dtype=bool)
        hit[short] = True
        hit[long_hit] = True
        nests.append(
            NestLocality(
                nest_name=table.nest_name,
                accesses=len(lines),
                distinct_lines=int(len(np.unique(lines))),
                short_reuse_hits=int(len(short)),
                temporal_hits=int(len(long_hit)),
                affine=affine,
            )
        )
        unique_regions, inverse = np.unique(regions, return_inverse=True)
        totals = np.bincount(inverse, minlength=len(unique_regions))
        hits = np.bincount(
            inverse, weights=hit.astype(np.int64), minlength=len(unique_regions)
        ).astype(np.int64)
        for region, total, region_hit in zip(unique_regions, totals, hits):
            key = int(region)
            region_totals[key] = region_totals.get(key, 0) + int(total)
            region_hits[key] = region_hits.get(key, 0) + int(region_hit)

    verdicts = {
        region: 2 * region_hits[region] >= region_totals[region]
        for region in region_totals
    }
    return LocalityModel(
        region_verdicts=verdicts,
        bank_footprint=footprint,
        nests=nests,
        skipped_nests=skipped,
    )


class AnalyticMissPredictor:
    """Closed-form drop-in for the trace-trained hit/miss predictor.

    Builds the :class:`LocalityModel` once at construction, translates every
    touched virtual region to its physical frame (in ascending region
    order — the allocator is deterministic, so so is the mapping), and
    answers ``predict`` queries with a dict lookup.  Like the trace
    predictor, a region the model never saw predicts *miss* (cold data is
    located at its memory controller, the paper's safe default).

    ``pure_predict`` is True: verdicts depend only on the queried address,
    so every vectorized/caching fast path downstream stays enabled.
    ``train`` is accepted and ignored — the model is not trace-driven;
    ``stats`` only accumulate when a caller verifies predictions through
    :meth:`predict_and_train` (the differential oracle does).
    """

    pure_predict: bool = True

    def __init__(
        self,
        machine: Machine,
        program: Program,
        short_window: Optional[int] = None,
    ):
        """Build the model for ``program`` and pin its region verdicts."""
        layout = machine.layout
        self.region_bits = layout.mapping.memory.offset_field.width
        self.model = build_locality_model(machine, program, short_window)
        allocator = layout.allocator
        page_size = layout.mapping.memory.page_size
        shift = self.region_bits
        self._verdicts: Dict[int, bool] = {}
        for region in sorted(self.model.region_verdicts):
            # Virtual region -> physical frame.  Regions are OS pages
            # (both 4KB), so translate_page is exact; first touches here
            # allocate the frame the rest of the pipeline will reuse.
            virtual_page = (region << shift) // page_size
            frame = allocator.translate_page(virtual_page).physical_frame
            self._verdicts[frame] = self.model.region_verdicts[region]
        self.stats = PredictorStats()

    def _region(self, address: int) -> int:
        return address >> self.region_bits

    def predict(self, address: int) -> bool:
        """True = predicted L2 hit (data on chip), False = predicted miss."""
        return self._verdicts.get(self._region(address), False)

    def predict_many(self, addresses) -> np.ndarray:
        """Vectorized :meth:`predict` over an int array of addresses."""
        regions = np.asarray(addresses, dtype=np.int64) >> self.region_bits
        unique, inverse = np.unique(regions, return_inverse=True)
        get = self._verdicts.get
        verdicts = np.fromiter(
            (get(int(region), False) for region in unique),
            dtype=bool,
            count=len(unique),
        )
        return verdicts[inverse]

    def train(self, address: int, was_hit: bool) -> None:
        """No-op: the model is closed-form, not trace-driven."""

    def predict_and_train(self, address: int, was_hit: bool) -> bool:
        """Predict and record agreement with an observed outcome."""
        prediction = self.predict(address)
        if prediction == was_hit:
            self.stats.correct += 1
        else:
            self.stats.incorrect += 1
        return prediction

    def accuracy(self) -> float:
        """Fraction of verified predictions that were right (0.0 unverified)."""
        return self.stats.accuracy()

    def reset(self) -> None:
        """Clear verification stats (the model itself is immutable)."""
        self.stats = PredictorStats()
