"""Data location detection (paper Section 4.1, Algorithm 1 line 11).

``GetNode`` answers: *on which mesh node does this datum currently live?*
Three sources, in the order the compiler trusts them:

1. the ``variable2node_map`` — nodes whose L1 should hold the datum because
   an already-scheduled subcomputation fetched it there (multi-statement
   windows only);
2. the SNUCA home L2 bank, derived from the address bits the modified OS
   allocator preserves — used when the L2 hit/miss predictor says on-chip;
3. the memory controller that would service the miss — used when the
   predictor says off-chip.

``GetNode`` may therefore return *a set of nodes* (the Algorithm 1 comment);
:class:`Location` carries all candidates plus the primary one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.arch.machine import Machine
from repro.cache.predictor import HitMissPredictor
from repro.ir.statement import Access


class Location(NamedTuple):
    """Where a datum can be found right now.

    ``primary`` is the authoritative location (home bank or MC);
    ``l1_copies`` are nodes believed to hold the datum in L1.  ``on_chip``
    is the predictor's verdict (False means primary is a controller node).
    A NamedTuple: one is built per ``locate`` call, which is the hottest
    allocation site in the scalar partitioning path.
    """

    access: Access
    primary: int
    on_chip: bool
    l1_copies: Tuple[int, ...] = ()

    def candidates(self) -> Tuple[int, ...]:
        """All candidate nodes, L1 copies first (they are the cheapest)."""
        return self.l1_copies + (self.primary,)


class VariableToNodeMap:
    """The compiler's model of which L1s hold which data blocks.

    Keys are cache blocks, not elements: a fetch brings the whole line, so a
    subcomputation touching ``D(i)`` also makes ``D(i+1)`` L1-resident when
    they share a block (the spatial-locality case of paper Figure 12).

    The model is capacity-limited per node (``per_node_capacity`` blocks,
    FIFO): with very large windows, early fetches are modeled as evicted,
    which is exactly the L1-pollution effect that makes oversized windows
    lose (Section 4.4).
    """

    def __init__(self, per_node_capacity: int = 64):
        """Empty map modeling ``per_node_capacity`` L1 blocks per node."""
        self.per_node_capacity = per_node_capacity
        self._blocks_at_node: Dict[int, "OrderedDict[int, None]"] = {}
        self._nodes_of_block: Dict[int, List[int]] = {}
        self._resident_count = 0

    def record(self, block: int, node: int) -> None:
        """Model ``block`` being fetched into ``node``'s L1."""
        resident = self._blocks_at_node.get(node)
        if resident is None:
            resident = self._blocks_at_node[node] = OrderedDict()
        if block in resident:
            resident.move_to_end(block)
            return
        if len(resident) >= self.per_node_capacity:
            evicted, _ = resident.popitem(last=False)
            self._resident_count -= 1
            holders = self._nodes_of_block.get(evicted)
            if holders and node in holders:
                holders.remove(node)
        resident[block] = None
        self._resident_count += 1
        holders = self._nodes_of_block.get(block)
        if holders is None:
            self._nodes_of_block[block] = [node]
        else:
            holders.append(node)

    def nodes_with(self, block: int) -> Tuple[int, ...]:
        """Nodes modeled as holding ``block`` in L1 (insertion order)."""
        return tuple(self._nodes_of_block.get(block, ()))

    def holds_block(self, block: int) -> bool:
        """True when any node is modeled as holding ``block``.

        Equivalent to ``bool(nodes_with(block))`` without building the
        tuple.  Note an eviction can leave an *empty* holder list behind,
        so a plain key-membership test would overreport.
        """
        return bool(self._nodes_of_block.get(block))

    def clear(self) -> None:
        """Forget every recorded L1 copy (used at window boundaries)."""
        self._blocks_at_node.clear()
        self._nodes_of_block.clear()
        self._resident_count = 0

    def __len__(self) -> int:
        return self._resident_count


class DataLocator:
    """Resolves accesses to :class:`Location` objects for the partitioner."""

    def __init__(
        self,
        machine: Machine,
        predictor: Optional[HitMissPredictor] = None,
    ):
        self.machine = machine
        self.predictor = predictor

    def locate(
        self,
        access: Access,
        var2node: Optional[VariableToNodeMap] = None,
    ) -> Location:
        """``GetNode``: the candidate nodes for ``access``."""
        machine = self.machine
        if self.predictor is not None:
            address = machine.layout.pa_of(access.array, access.index)
            on_chip = self.predictor.predict(address)
        else:
            on_chip = True
        if on_chip:
            primary = machine.home_node(access.array, access.index)
        else:
            primary = machine.mc_node(access.array, access.index)
        l1_copies: Tuple[int, ...] = ()
        if var2node is not None:
            block = machine.layout.block_of(access.array, access.index)
            l1_copies = var2node.nodes_with(block)
        return Location(access, primary, on_chip, l1_copies)

    def store_node(self, access: Access) -> int:
        """The node where a statement's result is stored.

        The output's SNUCA home bank: the paper never migrates the final
        result ("the final output data is stored on the same node where it
        was supposed to be", Section 4.5).
        """
        return self.machine.home_node(access.array, access.index)

    def block_of(self, access: Access) -> int:
        """The L2 block id holding ``access``'s element."""
        return self.machine.layout.block_of(access.array, access.index)
