"""Code generation (paper Section 4.5, Figure 8).

Turns a schedule into per-node program listings: each node receives the
subcomputations assigned to it, with ``sync(...)`` waits ahead of any
combine that consumes cross-node results.  This is the shape of the code
the paper's source-to-source translator emits (Figure 8b's node i / node i1
/ node i2 listing).

Besides the text listing, the generator emits the same program as
structured :class:`TaskSpec` records — one per subcomputation, with its
data dependencies (the ``sub_results`` producers) and the cross-node
subset that the listing renders as ``sync(...)`` waits.  The task form is
what the execution backends consume (:mod:`repro.exec`): the simulator
ignores it, the task runtime turns each sync wait into a task-graph
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core.scheduler import StatementSchedule
from repro.core.subcomputation import Subcomputation
from repro.ir.statement import Access


class TaskSpec(NamedTuple):
    """One subcomputation as a schedulable task (Figure 8, structured).

    ``deps`` are the producer uids of every consumed child result (the
    dataflow arcs); ``sync_deps`` is the cross-node subset — exactly the
    producers the text listing renders as ``sync(T<uid>)`` waits, because
    a same-node child needs no point-to-point synchronization.
    """

    uid: int
    seq: int
    node: int
    deps: Tuple[int, ...]
    sync_deps: Tuple[int, ...]
    reads: Tuple[Access, ...]
    store: Optional[Access]
    cost: float
    op_count: int

    @property
    def is_final(self) -> bool:
        """True for the task that stores its statement's result."""
        return self.store is not None


def task_spec_of(sub: Subcomputation) -> TaskSpec:
    """The structured task form of one scheduled subcomputation."""
    return TaskSpec(
        uid=sub.uid,
        seq=sub.seq,
        node=sub.node,
        deps=tuple(r.producer_uid for r in sub.sub_results),
        sync_deps=tuple(
            r.producer_uid for r in sub.sub_results if r.from_node != sub.node
        ),
        reads=tuple(g.access for g in sub.gathered),
        store=sub.store,
        cost=sub.cost,
        op_count=sub.op_count,
    )


def task_specs(units: Iterable[Subcomputation]) -> Tuple[TaskSpec, ...]:
    """Structured task records for a unit sequence, in given order."""
    return tuple(task_spec_of(sub) for sub in units)


@dataclass
class GeneratedCode:
    """Per-node generated pseudo-code plus its structured task form."""

    lines_by_node: Dict[int, List[str]]
    #: One record per subcomputation, in schedule order — the execution
    #: backends' input (``sync_deps`` mirror the listing's sync waits).
    tasks: Tuple[TaskSpec, ...] = ()

    def nodes(self) -> List[int]:
        """Mesh nodes that received at least one instruction, sorted."""
        return sorted(self.lines_by_node)

    def listing(self) -> str:
        """The full listing, grouped by node (Figure 8 style)."""
        chunks = []
        for node in self.nodes():
            chunks.append(f"Node {node}:")
            for line in self.lines_by_node[node]:
                chunks.append(f"  {line}")
        return "\n".join(chunks)

    def line_count(self) -> int:
        """Total emitted instructions across all nodes."""
        return sum(len(lines) for lines in self.lines_by_node.values())


def _render(sub: Subcomputation) -> List[str]:
    lines: List[str] = []
    waits = [r for r in sub.sub_results if r.from_node != sub.node]
    if waits:
        names = " and ".join(f"sync(T{r.producer_uid})" for r in waits)
        lines.append(names)
    if sub.source:
        # Unsplit statements carry their original text verbatim.
        lines.append(sub.source)
        return lines
    operands: List[str] = [str(g.access) for g in sub.gathered]
    operands += [f"T{r.producer_uid}" for r in sub.sub_results]
    ops = list(sub.op_breakdown)
    flat_ops: List[str] = []
    for op, count in ops:
        flat_ops.extend([op] * count)
    # Render as a left-to-right chain; pad with the set operator if the
    # breakdown is shorter (pure moves have no ops).
    rendered = operands[0] if operands else "0"
    default_op = sub.op if sub.op != "move" else "+"
    for i, operand in enumerate(operands[1:]):
        op = flat_ops[i] if i < len(flat_ops) else default_op
        rendered = f"{rendered} {op} {operand}"
    target = str(sub.store) if sub.store is not None else f"T{sub.uid}"
    lines.append(f"{target} = {rendered}")
    return lines


def generate_code(schedules: Iterable[StatementSchedule]) -> GeneratedCode:
    """Generate the per-node listing for a set of statement schedules."""
    lines_by_node: Dict[int, List[str]] = {}
    tasks: List[TaskSpec] = []
    for schedule in schedules:
        for sub in schedule.subcomputations:
            lines_by_node.setdefault(sub.node, []).extend(_render(sub))
            tasks.append(task_spec_of(sub))
    return GeneratedCode(lines_by_node, tuple(tasks))


def generate_for_partition(partition) -> GeneratedCode:
    """Listing for a whole :class:`~repro.core.partitioner.PartitionResult`.

    The pipeline's ``codegen`` pass (registered, not in the default order)
    renders every nest's statement schedules in program order.
    """
    schedules = (
        statement_schedule
        for nest_schedule in partition.nest_schedules.values()
        for statement_schedule in nest_schedule.statement_schedules()
    )
    return generate_code(schedules)
