"""Profile-guided split planning.

The paper's toolchain is profile-driven end to end: the default placement
assigns iteration chunks "to the most beneficial core using profile data"
(Section 6.1), and data mapping (Section 6.5) is profile-based too.  In the
same spirit, the partitioner decides *statically, per program statement*
whether splitting pays:

1. simulate the default execution of a sample of each nest through real L1
   caches and L2 banks, measuring each static statement's true average data
   movement (operand fetches that miss L1 travel home->core; L2 misses add
   the MC leg; the store travels as well);
2. measure the same statements' average MST weight (the movement a split
   schedule would incur — accurate because split gathers happen *at* the
   data's home banks);
3. split a statement only when its MST saves at least ``split_bias`` links
   per instance over the measured default.

A static decision is stable: per-instance greedy flip-flopping (split some
instances of a statement but not others) perturbs the caches it is judging
against and converges badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.core.locator import DataLocator
from repro.core.splitter import split_statement
from repro.ir.program import Program

StatementKey = Tuple[str, int]


@dataclass
class StatementProfile:
    """Measured per-instance averages for one static statement."""

    key: StatementKey
    instances: int
    star_movement: float   # simulated default movement per instance
    mst_weight: float      # split-schedule movement per instance
    serial_chain: bool = False  # consecutive instances write the same element

    def should_split(self, bias: float) -> bool:
        """True when the profile predicts splitting beats the default here."""
        if self.serial_chain:
            # A reduction whose LHS repeats across consecutive instances is
            # a serial dependence chain: every split link inserts a
            # cross-node wait that cannot be hidden by running other
            # iterations (there are none independent), so splitting it is a
            # latency disaster regardless of the movement arithmetic.
            return False
        return self.mst_weight + bias <= self.star_movement


def profile_statements(
    machine: Machine,
    program: Program,
    locator: DataLocator,
    fallback_nodes: Optional[Dict[int, int]] = None,
    sample_per_nest: int = 4096,
    session=None,
) -> Dict[StatementKey, StatementProfile]:
    """Measure star vs MST movement for every static statement.

    The cache simulation mirrors the execution engine's access flow but
    only tracks movement, so it is cheap enough to run over a large sample.
    When a ``session`` is given, the MST side uses the vectorized split
    templates (:mod:`repro.core.vectorized`); the movement side stays on
    the reference simulation either way.
    """
    program.declare_on(machine)
    fallback_nodes = fallback_nodes or {}
    caches = CacheSystem(
        machine.node_count, machine.l1_config, machine.l2_config, machine.bank_to_node
    )
    layout = machine.layout
    star_sum: Dict[StatementKey, float] = {}
    mst_sum: Dict[StatementKey, float] = {}
    counts: Dict[StatementKey, int] = {}

    for nest in program.nests:
        templates = None
        if session is not None:
            from repro.core.vectorized import templates_for

            templates = templates_for(
                session, program, nest, locator, flatten_products=False
            )
            if templates is not None:
                # Replay the sample's page translations up front (canonical
                # order — identical frames to the lazy scalar touches).
                templates.tables.ensure(min(sample_per_nest, nest.instance_count))
        splitter = (
            templates.split
            if templates is not None
            else (lambda instance: split_statement(instance, locator))
        )
        sampled = 0
        for instance in program.nest_instances(nest, program.seq_base_of(nest)):
            if sampled >= sample_per_nest:
                break
            sampled += 1
            node = fallback_nodes.get(
                instance.seq, locator.store_node(instance.write)
            )
            movement = 0
            seen_blocks = set()
            for access in instance.accesses():
                block = layout.block_of(access.array, access.index)
                if block in seen_blocks:
                    continue
                seen_blocks.add(block)
                if caches.l1s[node].access(block):
                    continue
                bank = layout.l2_bank_of(access.array, access.index)
                home = machine.home_node(access.array, access.index)
                movement += machine.distance(home, node)
                if not caches.l2_banks[bank].access(block):
                    mc = machine.mc_node(access.array, access.index, requester=node)
                    movement += machine.distance(mc, home)
            key = instance.static_key
            star_sum[key] = star_sum.get(key, 0.0) + movement
            counts[key] = counts.get(key, 0) + 1
            split = splitter(instance)
            mst_sum[key] = mst_sum.get(key, 0.0) + split.mst_weight

    serial = _serial_chain_statements(program)
    profiles: Dict[StatementKey, StatementProfile] = {}
    for key, count in counts.items():
        profiles[key] = StatementProfile(
            key=key,
            instances=count,
            star_movement=star_sum[key] / count,
            mst_weight=mst_sum[key] / count,
            serial_chain=key in serial,
        )
    return profiles


def _serial_chain_statements(program: Program) -> set:
    """Static keys of statements forming tight serial dependence chains.

    A statement whose LHS subscript does not involve the innermost loop
    variable (e.g. ``S(i) = S(i) + A(PV(i),k)`` inside a ``k`` loop) writes
    the same element on consecutive iterations — a reduction chain with no
    independent work to overlap.
    """
    from repro.ir.expr import AffineIndex

    serial = set()
    for nest in program.nests:
        innermost = nest.loops[-1].var
        for body_index, statement in enumerate(nest.body):
            depends = False
            for index in statement.lhs.indices:
                if isinstance(index, AffineIndex):
                    if innermost in dict(index.coeffs):
                        depends = True
                else:  # indirect: variables() covers the inner affine part
                    if innermost in index.variables():
                        depends = True
            if not depends:
                serial.add((nest.name, body_index))
    return serial


def build_split_plan(
    profiles: Dict[StatementKey, StatementProfile], bias: float
) -> Dict[StatementKey, bool]:
    """statement key -> split? decisions from measured profiles."""
    return {key: profile.should_split(bias) for key, profile in profiles.items()}
