"""``repro.core.vectorized`` — flat-array fast paths for the partitioner.

Two layers, both bit-identical to the scalar pipeline by construction and
by check-mode oracle:

* :class:`~repro.core.vectorized.tables.NestTables` — per-nest batched
  VA->PA->block/primary/on-chip tables, replaying page translations in
  canonical first-touch order;
* :class:`~repro.core.vectorized.split_kernel.SplitTemplates` —
  signature-deduplicated statement splits built on those tables.

The session-level helpers below gate the fast path: it is only used with
pure predictors (``pure_predict=True``) and falls back to the scalar code
for nests whose accesses cannot be resolved up front (e.g. irregular
nests before the inspector ran).  Both caches live in
:class:`~repro.pipeline.session.SessionCaches` and are cleared per
compile.
"""

from __future__ import annotations

from repro.core.vectorized.split_kernel import SplitTemplates
from repro.core.vectorized.tables import NestTables
from repro.errors import WorkloadError

__all__ = ["NestTables", "SplitTemplates", "nest_tables_for", "templates_for"]


def nest_tables_for(session, program, nest, predictor):
    """The session's :class:`NestTables` for ``nest`` (None = unsupported).

    Returns None — and remembers the verdict — when the predictor is
    stateful or the nest's accesses cannot be resolved in closed form;
    callers then stay on the scalar path.
    """
    if predictor is not None and not getattr(predictor, "pure_predict", True):
        return None
    caches = session.caches
    if nest.name in caches.nest_tables:
        return caches.nest_tables[nest.name]
    try:
        tables = NestTables(program, nest, session.machine, predictor)
    except WorkloadError:
        tables = None
    caches.nest_tables[nest.name] = tables
    return tables


def templates_for(session, program, nest, locator, flatten_products: bool):
    """The session's :class:`SplitTemplates` for ``nest`` (None = scalar)."""
    tables = nest_tables_for(session, program, nest, locator.predictor)
    if tables is None:
        return None
    key = (nest.name, bool(flatten_products))
    templates = session.caches.split_templates.get(key)
    if templates is None:
        templates = SplitTemplates(tables, locator, flatten_products)
        session.caches.split_templates[key] = templates
    return templates
