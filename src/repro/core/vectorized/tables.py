"""Per-nest vectorized location tables (the splitter/scheduler fast path).

The scalar pipeline answers "where does this operand live?" one access at a
time: ``pa_of`` -> predictor -> home/MC map, each a Python call chain.  For
an affine (or inspector-resolved) nest the whole question can be answered
up front: :class:`NestTables` batches the virtual addresses of every access
of the nest (via :mod:`repro.ir.affine`), replays the page translations in
the exact first-touch order the scalar code would have used, and derives
flat per-column tables:

* ``read_block[s][r][it]``  — L2 block of statement ``s``'s ``r``-th read
  at iteration ``it``;
* ``read_on_chip[s][r][it]`` — the hit/miss predictor's verdict;
* ``read_primary[s][r][it]`` — the primary location node (home bank when
  predicted on-chip, else the MC node);
* ``write_block[s][it]`` / ``store_node[s][it]`` — the write's block and
  its home (store) node.

Invariants (enforced by ``check_nest_tables`` in check mode):

1. **Translation-order preservation.**  Page frames are assigned by a
   color-preserving first-touch allocator, so the *order* of first touches
   is semantically load-bearing.  ``ensure(n)`` extends coverage at
   *statement-instance* granularity, replaying the canonical access stream
   (per instance: reads in RHS order, then the write) through
   ``allocator.translate`` — the same order the scalar profiling and
   scheduling loops touch pages — so frame assignment is bit-identical to
   the scalar pipeline.
2. **Purity.**  Tables are only built over predictors with
   ``pure_predict=True`` (prediction depends on the address alone); a
   stateful oracle disables the vectorized path entirely.
3. **Equality.**  Every table entry equals the scalar
   ``DataLocator``/``Machine`` answer for the same access (check mode
   samples and compares).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import check
from repro.ir.affine import access_table


class NestTables:
    """Vectorized block/location tables of one loop nest.

    Construction resolves the access columns (virtual addresses only — no
    page is touched); :meth:`ensure` extends physical coverage to the first
    ``n`` statement instances.  Lookups are plain nested-list indexing,
    which beats ndarray item access for the scalar hot paths.
    """

    def __init__(self, program, nest, machine, predictor):
        """Resolve ``nest``'s access table; row materialization is lazy."""
        self.nest = nest
        self.machine = machine
        self.predictor = predictor
        self.seq_base = program.seq_base_of(nest)
        self.body_size = nest.body_size
        self.instance_count = nest.instance_count
        self.access = access_table(program, nest)
        layout = machine.layout
        self._layout = layout
        mapping = layout.mapping
        self._page_size = int(mapping.memory.page_size)
        self._block_shift = int(mapping.l2.offset_field.width)
        self._columns = self.access.columns()
        # Virtual address of every column entry (affine closed form).
        self._col_va: List[np.ndarray] = []
        for column in self._columns:
            base = layout.va_of(column.array, 0)
            esize = layout.spec(column.array).element_size
            self._col_va.append(base + column.indices * np.int64(esize))
        # Statement ``s`` owns canonical columns
        # ``col_bounds[s]..col_bounds[s+1]`` (reads in RHS order, then the
        # write).
        bounds = [0]
        for s in range(self.body_size):
            bounds.append(bounds[-1] + len(self.access.reads[s]) + 1)
        self._col_bounds = bounds
        self._col_count = bounds[-1]
        # Row-major (iteration x column) VA matrix: one row raveled is one
        # loop iteration's canonical access stream.
        self._va_matrix = (
            np.stack(self._col_va, axis=1)
            if self._col_va
            else np.zeros((self.access.iterations, 0), dtype=np.int64)
        )
        # page number -> physical frame, filled in first-touch order.
        self._frames: Dict[int, int] = {}
        #: Statement instances covered so far.
        self.covered = 0
        self._rows_done = [0] * self._col_count
        # Public scalar-lookup tables (grown by _materialize).
        self.read_block: List[List[List[int]]] = [
            [[] for _ in self.access.reads[s]] for s in range(self.body_size)
        ]
        self.read_on_chip: List[List[List[bool]]] = [
            [[] for _ in self.access.reads[s]] for s in range(self.body_size)
        ]
        self.read_primary: List[List[List[int]]] = [
            [[] for _ in self.access.reads[s]] for s in range(self.body_size)
        ]
        self.write_block: List[List[int]] = [[] for _ in range(self.body_size)]
        self.store_node: List[List[int]] = [[] for _ in range(self.body_size)]

    def ensure(self, n_instances: int) -> None:
        """Extend coverage to the nest's first ``n_instances`` instances."""
        n = min(int(n_instances), self.instance_count)
        if n <= self.covered:
            return
        self._translate(self.covered, n)
        self.covered = n
        self._materialize()
        if check.enabled():
            from repro.check import invariants

            invariants.check_nest_tables(self)

    # -- translation replay ------------------------------------------------

    def _translate(self, lo: int, hi: int) -> None:
        """Touch the pages of instances ``[lo, hi)`` in canonical order.

        The canonical stream is the row-major ravel of the VA matrix,
        restricted to the instance range — which may start or end mid-row
        (profiling samples a fixed *instance* count, cutting iterations).
        Segments: partial head row, full middle rows, partial tail row.
        """
        body = self.body_size
        matrix = self._va_matrix
        bounds = self._col_bounds
        lo_row, lo_s = divmod(lo, body)
        hi_row, hi_s = divmod(hi, body)
        parts = []
        if lo_s:
            if lo_row == hi_row:
                self._map_pages([matrix[lo_row, bounds[lo_s]:bounds[hi_s]]])
                return
            parts.append(matrix[lo_row, bounds[lo_s]:])
            lo_row += 1
        if hi_row > lo_row:
            parts.append(matrix[lo_row:hi_row].reshape(-1))
        if hi_s:
            parts.append(matrix[hi_row, :bounds[hi_s]])
        self._map_pages(parts)

    def _map_pages(self, parts) -> None:
        """First-touch translate every new page of a VA stream, in order."""
        parts = [part for part in parts if part.size]
        if not parts:
            return
        stream = np.concatenate(parts) if len(parts) > 1 else parts[0]
        page_size = self._page_size
        pages = stream // page_size
        unique, first = np.unique(pages, return_index=True)
        frames = self._frames
        translate = self._layout.allocator.translate
        # np.unique sorts by page number; replay new pages in stream order.
        for k in np.argsort(first, kind="stable"):
            page = int(unique[k])
            if page not in frames:
                frames[page] = translate(int(stream[first[k]])) // page_size

    def _pa_of(self, va: np.ndarray) -> np.ndarray:
        """Physical addresses of already-translated virtual addresses."""
        page_size = self._page_size
        pages = va // page_size
        offsets = va - pages * page_size
        unique, inverse = np.unique(pages, return_inverse=True)
        frames = self._frames
        unique_frames = np.fromiter(
            (frames[int(page)] for page in unique),
            dtype=np.int64,
            count=len(unique),
        )
        return unique_frames[inverse] * page_size + offsets

    # -- derived tables ----------------------------------------------------

    def _materialize(self) -> None:
        """Fill the per-column tables up to the covered instance count.

        A column of statement ``s`` has ``n // body + (1 if s < n % body)``
        covered rows when ``n`` instances are covered — exactly the rows
        whose pages the canonical replay has translated.
        """
        full_rows, rem = divmod(self.covered, self.body_size)
        machine = self.machine
        predictor = self.predictor
        shift = self._block_shift
        for s in range(self.body_size):
            target = full_rows + (1 if s < rem else 0)
            base = self._col_bounds[s]
            read_count = self._col_bounds[s + 1] - base - 1
            for k in range(read_count + 1):
                c = base + k
                done = self._rows_done[c]
                if target <= done:
                    continue
                column = self._columns[c]
                pa = self._pa_of(self._col_va[c][done:target])
                blocks = pa >> shift
                indices = column.indices[done:target]
                homes = machine.home_node_map(column.array)[indices]
                if k < read_count:
                    if predictor is not None:
                        on_chip = predictor.predict_many(pa)
                        primary = np.where(
                            on_chip,
                            homes,
                            machine.mc_node_map(column.array)[indices],
                        )
                    else:
                        on_chip = np.ones(len(pa), dtype=bool)
                        primary = homes
                    self.read_block[s][k].extend(blocks.tolist())
                    self.read_on_chip[s][k].extend(on_chip.tolist())
                    self.read_primary[s][k].extend(primary.tolist())
                else:
                    self.write_block[s].extend(blocks.tolist())
                    self.store_node[s].extend(homes.tolist())
                self._rows_done[c] = target
