"""Signature-deduplicated statement splitting (the MST fast path).

An empty-``variable2node_map`` split's *structure* — operand tree, chosen
vertices, Kruskal edge order, merge log — depends only on the statement's
shape plus the tuple of (leaf primary locations, store node): with no L1
copies every leaf's vertex collapses to its primary, and the MST runs over
those vertices alone.  Distinct instances of the same statement therefore
produce only as many distinct split structures as there are distinct
signatures (typically a handful per statement on a mesh), while the seed
recomputed Kruskal per instance.

:class:`SplitTemplates` keeps one real :func:`split_statement` result per
signature (the *template*) and materializes per-instance splits as cheap
clones: the structural parts (sets, merges, MST edges) are shared —
the scheduler never mutates a split — while the per-instance parts
(the instance itself, each leaf's access and its table-derived on-chip
verdict) are rebuilt.  Check mode verifies every clone bit-equal to a
fresh recompute via ``check_split_cache_hit``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import check
from repro.core.locator import Location
from repro.core.mst import MstEdge
from repro.core.splitter import LeafInfo, MergeStep, StatementSplit, split_statement
from repro.utils.union_find import UnionFind

#: Per-statement template stores stop growing past this many signatures
#: (memory bound; misses just recompute without caching).
_TEMPLATE_LIMIT = 1 << 14


class SplitTemplates:
    """Per-nest store of signature-deduplicated statement splits."""

    def __init__(self, tables, locator, flatten_products: bool = False):
        """Empty template store over ``tables``; filled by first splits."""
        self.tables = tables
        self.locator = locator
        self.flatten = bool(flatten_products)
        body = tables.body_size
        self._templates: List[Dict[Tuple[int, ...], StatementSplit]] = [
            {} for _ in range(body)
        ]
        # Leaf positions of each statement's operand tree, in leaf order
        # (filled from the first real split; structure is static per
        # statement).
        self._leaf_positions: List[Optional[Tuple[int, ...]]] = [None] * body
        # Static split skeleton per statement: the operand-set structure and
        # member-id assignment never change across instances, only vertices
        # and the MST do.  ``(leaf_specs, sets, store_member, root_member)``
        # with leaf_specs = ((member_id, position, negated, inverted), ...).
        self._skeletons: List[Optional[tuple]] = [None] * body
        # (vertex..., store_node) -> (merges, mst_edges) per statement: the
        # MST is a pure function of the component vertices over the static
        # set structure, so map-dependent splits that land on the same
        # vertices share one Kruskal run (shared read-only, like _clone).
        self._mst_memo: List[Dict[Tuple[int, ...], tuple]] = [{} for _ in range(body)]

    def _instance_coords(self, instance) -> Tuple[int, int]:
        """(iteration row, body statement index) of ``instance``."""
        return divmod(instance.seq - self.tables.seq_base, self.tables.body_size)

    def split(self, instance) -> StatementSplit:
        """The empty-map split of ``instance`` (template or cheap clone)."""
        it, s = self._instance_coords(instance)
        positions = self._leaf_positions[s]
        if positions is None:
            template = split_statement(
                instance, self.locator, flatten_products=self.flatten
            )
            self._leaf_positions[s] = tuple(
                leaf.position for leaf in template.leaves.values()
            )
            self._skeletons[s] = (
                tuple(
                    (leaf.member_id, leaf.position, leaf.negated, leaf.inverted)
                    for leaf in template.leaves.values()
                ),
                template.sets,
                template.store_member,
                template.root_member,
            )
            signature = tuple(
                leaf.location.primary for leaf in template.leaves.values()
            ) + (template.store_node,)
            self._templates[s][signature] = template
            return template
        tables = self.tables
        primaries = tables.read_primary[s]
        signature = tuple(primaries[p][it] for p in positions) + (
            tables.store_node[s][it],
        )
        store = self._templates[s]
        template = store.get(signature)
        if template is None:
            template = self._fast_split(instance, it, s, signature)
            if len(store) < _TEMPLATE_LIMIT:
                store[signature] = template
            if check.enabled():
                from repro.check import invariants

                invariants.check_split_cache_hit(
                    template,
                    split_statement(
                        instance, self.locator, flatten_products=self.flatten
                    ),
                )
            return template
        if template.instance.seq == instance.seq:
            return template
        split = self._clone(template, instance, it, s)
        if check.enabled():
            from repro.check import invariants

            invariants.check_split_cache_hit(
                split,
                split_statement(
                    instance, self.locator, flatten_products=self.flatten
                ),
            )
        return split

    def blocks_held(self, instance, var2node) -> bool:
        """True when any leaf operand's block is modeled L1-resident.

        The no-overlap test of the mid-window fast path: when False, every
        ``locate`` would return empty ``l1_copies`` and the split equals
        the empty-map split.  Conservatively True before the statement's
        leaf positions are known.
        """
        tables = self.tables
        it, s = divmod(instance.seq - tables.seq_base, tables.body_size)
        positions = self._leaf_positions[s]
        if positions is None:
            return True
        blocks = tables.read_block[s]
        holds = var2node.holds_block
        for position in positions:
            if holds(blocks[position][it]):
                return True
        return False

    def _fast_split(
        self, instance, it: int, s: int, signature: Tuple[int, ...]
    ) -> StatementSplit:
        """Recompute only the MST over the static skeleton (signature miss).

        With an empty ``variable2node_map`` every leaf's vertex is its
        primary location, so a fresh :func:`split_statement` would rebuild
        the operand tree and re-resolve every leaf just to rerun Kruskal
        over the new primaries.  The skeleton (member ids, set structure,
        signs) is static per statement; replay Kruskal set by set —
        innermost first, exactly the order ``split_statement`` emits its
        ``sets`` records — over the table's primaries.
        """
        leaf_specs, sets, store_member, root_member = self._skeletons[s]
        tables = self.tables
        on_chip = tables.read_on_chip[s]
        primaries = tables.read_primary[s]
        store_node = signature[-1]
        reads = instance.reads

        leaves: Dict[int, LeafInfo] = {}
        component_nodes: Dict[int, Tuple[int, ...]] = {store_member: (store_node,)}
        for member, position, negated, inverted in leaf_specs:
            access = reads[position]
            primary = primaries[position][it]
            leaves[member] = LeafInfo(
                member_id=member,
                position=position,
                access=access,
                location=Location(
                    access=access,
                    primary=primary,
                    on_chip=on_chip[position][it],
                    l1_copies=(),
                ),
                vertex=primary,
                negated=negated,
                inverted=inverted,
            )
            component_nodes[member] = (primary,)
        memo = self._mst_memo[s]
        cached = memo.get(signature)
        if cached is None:
            cached = self._run_kruskal(sets, component_nodes)
            if len(memo) < _TEMPLATE_LIMIT:
                memo[signature] = cached
        merges, mst_edges = cached
        return StatementSplit(
            instance=instance,
            leaves=leaves,
            sets=sets,
            merges=merges,
            mst_edges=mst_edges,
            store_member=store_member,
            store_node=store_node,
            root_member=root_member,
        )

    def split_with_map(self, instance, var2node) -> Optional[StatementSplit]:
        """The split of ``instance`` against a non-empty window map.

        Same answers as ``split_statement(instance, locator, var2node)``,
        built from the static skeleton and the tables: per leaf, the L1
        copies come from the map (by table block id) and the vertex choice
        replays ``_choose_leaf_vertex`` exactly — candidates are the L1
        copies plus the primary, ranked by total distance to the other
        leaves' primaries and the store.  Returns None before the
        statement's skeleton is known (first instance goes scalar).
        """
        tables = self.tables
        it, s = divmod(instance.seq - tables.seq_base, tables.body_size)
        skeleton = self._skeletons[s]
        if skeleton is None:
            return None
        leaf_specs, sets, store_member, root_member = skeleton
        blocks = tables.read_block[s]
        on_chip = tables.read_on_chip[s]
        primaries = tables.read_primary[s]
        store_node = tables.store_node[s][it]
        distance = self.locator.machine.mesh.distance_fn()
        nodes_with = var2node.nodes_with
        reads = instance.reads

        leaf_primaries = [primaries[position][it] for _, position, _, _ in leaf_specs]
        leaves: Dict[int, LeafInfo] = {}
        component_nodes: Dict[int, Tuple[int, ...]] = {store_member: (store_node,)}
        for k, (member, position, negated, inverted) in enumerate(leaf_specs):
            access = reads[position]
            primary = leaf_primaries[k]
            copies = nodes_with(blocks[position][it])
            if copies:
                anchors = [
                    p
                    for j, p in enumerate(leaf_primaries)
                    if leaf_specs[j][1] != position
                ]
                anchors.append(store_node)
                vertex = min(
                    copies + (primary,),
                    key=lambda node: (
                        sum(distance(node, a) for a in anchors),
                        node,
                    ),
                )
            else:
                vertex = primary
            leaves[member] = LeafInfo(
                member_id=member,
                position=position,
                access=access,
                location=Location(
                    access=access,
                    primary=primary,
                    on_chip=on_chip[position][it],
                    l1_copies=copies,
                ),
                vertex=vertex,
                negated=negated,
                inverted=inverted,
            )
            component_nodes[member] = (vertex,)
        memo = self._mst_memo[s]
        memo_key = tuple(leaves[m].vertex for m, _, _, _ in leaf_specs) + (store_node,)
        cached = memo.get(memo_key)
        if cached is None:
            cached = self._run_kruskal(sets, component_nodes)
            if len(memo) < _TEMPLATE_LIMIT:
                memo[memo_key] = cached
        merges, mst_edges = cached
        return StatementSplit(
            instance=instance,
            leaves=leaves,
            sets=sets,
            merges=merges,
            mst_edges=mst_edges,
            store_member=store_member,
            store_node=store_node,
            root_member=root_member,
        )

    def _run_kruskal(self, sets, component_nodes) -> Tuple[list, list]:
        """Replay ``split_statement``'s per-set Kruskal over the skeleton."""
        distance = self.locator.machine.mesh.distance_fn()
        merges: List[MergeStep] = []
        mst_edges: List[MstEdge] = []
        for record in sets:
            member_ids = record.member_ids
            if len(member_ids) >= 2:
                candidate_edges = []
                for i, ma in enumerate(member_ids):
                    nodes_a = component_nodes[ma]
                    for mb in member_ids[i + 1:]:
                        best_w = -1
                        best_na = best_nb = 0
                        for na in nodes_a:
                            for nb in component_nodes[mb]:
                                w = distance(na, nb)
                                if best_w < 0 or w < best_w:
                                    best_w = w
                                    best_na = na
                                    best_nb = nb
                        candidate_edges.append(
                            (best_w, ma, mb, MstEdge(best_na, best_nb, best_w))
                        )
                candidate_edges.sort()
                uf = UnionFind(member_ids)
                op_kind = record.op_kind
                set_id = record.set_id
                for weight, ma, mb, edge in candidate_edges:
                    if uf.union(ma, mb):
                        merges.append(MergeStep(set_id, op_kind, ma, mb, edge))
                        mst_edges.append(edge)
            component_nodes[record.set_id] = tuple(
                sorted({n for m in member_ids for n in component_nodes[m]})
            )
        return merges, mst_edges

    def _clone(self, template, instance, it: int, s: int) -> StatementSplit:
        """Materialize ``template``'s structure for another instance.

        Structural parts (sets, merges, MST edges, member ids) are shared
        read-only; leaves are rebuilt with the instance's own accesses and
        the table's per-instance on-chip verdicts.  Primaries and vertices
        come from the template — equal by signature.
        """
        on_chip = self.tables.read_on_chip[s]
        reads = instance.reads
        leaves: Dict[int, LeafInfo] = {}
        for member, leaf in template.leaves.items():
            access = reads[leaf.position]
            leaves[member] = LeafInfo(
                member_id=member,
                position=leaf.position,
                access=access,
                location=Location(
                    access=access,
                    primary=leaf.location.primary,
                    on_chip=on_chip[leaf.position][it],
                    l1_copies=(),
                ),
                vertex=leaf.vertex,
                negated=leaf.negated,
                inverted=leaf.inverted,
            )
        return StatementSplit(
            instance=instance,
            leaves=leaves,
            sets=template.sets,
            merges=template.merges,
            mst_edges=template.mst_edges,
            store_member=template.store_member,
            store_node=template.store_node,
            root_member=template.root_member,
        )
