"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from parse
errors or scheduling failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An architecture/machine/experiment configuration is invalid."""


class ParseError(ReproError):
    """A statement or program source string could not be parsed."""

    def __init__(self, message: str, source: str = "", position: int = -1):
        self.source = source
        self.position = position
        if source and position >= 0:
            caret = " " * position + "^"
            message = f"{message}\n  {source}\n  {caret}"
        super().__init__(message)


class DependenceError(ReproError):
    """Dependence analysis failed or a schedule violates a dependence."""


class SchedulingError(ReproError):
    """Subcomputation scheduling could not produce a valid assignment."""


class MappingError(ReproError):
    """A physical-address or data-to-node mapping request is invalid."""


class SimulationError(ReproError):
    """The execution simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload definition is malformed or unknown."""


class FaultError(ReproError):
    """A fault plan is invalid or leaves the machine unable to operate."""


class CheckError(ReproError):
    """A correctness invariant or differential oracle was violated.

    Raised only in check mode (``--check`` / ``REPRO_CHECK=1``) by the
    :mod:`repro.check` subsystem: an optimized path disagreed with its
    brute-force reference, or a runtime conservation invariant broke.
    """


class ServeError(ReproError):
    """A compile-service request or daemon configuration is invalid.

    Raised by :mod:`repro.serve` for malformed compile requests, bad
    daemon/loadgen configuration, and client-observed protocol errors.
    """
