"""The execution engine.

Event-driven simulation over subcomputation units.  Each mesh node is a
serial executor (one core per node; units assigned to a node run in order);
units wait for (1) their node to be free, (2) results from child
subcomputations (a cross-node result is a network message plus a
point-to-point synchronization), and (3) memory dependences — flow, anti
and output — against earlier units, discovered by a last-writer scan over
the whole schedule, so correctness does not rely on the compiler having
put every needed arc in its window-local sync graph.

Memory accesses go through real caches: the compiler *predicted* hit/miss
and L1 reuse when it scheduled; the simulator measures what actually
happens, which is how over-sized windows show their L1-pollution penalty
(Figures 20/21).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import check
from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.check import invariants
from repro.core.subcomputation import Subcomputation
from repro.errors import SimulationError
from repro.noc.network import NetworkModel, NetworkParams
from repro.obs.tracer import get_tracer
from repro.sim.energy import EnergyModel, EnergyParams
from repro.sim.metrics import SimMetrics

#: With tracing enabled, the engine emits a ``sim.epoch`` counter snapshot
#: every this many completed units (units & (EPOCH-1) == 0, so keep it a
#: power of two).  Purely observational; no simulation state depends on it.
TRACE_EPOCH_UNITS = 4096


@dataclass(frozen=True)
class SimConfig:
    """Timing constants and isolation knobs of the simulator."""

    l1_latency: float = 2.0
    l2_latency: float = 14.0
    cycles_per_op: float = 1.0
    sync_cycles: float = 8.0
    #: Hardware thread contexts per node (KNL cores are 4-way SMT): units
    #: waiting on a synchronization or a remote result do not block the
    #: node's other contexts.
    contexts_per_node: int = 4
    #: Outstanding-miss overlap within one subcomputation: the unit's memory
    #: time is its slowest access plus the rest divided by this factor
    #: (hardware overlaps independent misses; both schemes benefit equally).
    memory_level_parallelism: float = 4.0
    network: NetworkParams = NetworkParams()
    energy: EnergyParams = EnergyParams()

    # -- isolation knobs (Figures 17/18/23) --------------------------------
    ideal_network: bool = False        # messages cost 0 cycles (Fig 17 bar 2)
    hop_latency_scale: float = 1.0     # scale network latencies (Fig 18 S2)
    compute_scale: float = 1.0         # scale compute time (Fig 18 S3)
    extra_sync_cycles: float = 0.0     # additional per-sync cost (Fig 18 S4)
    per_unit_overhead_cycles: float = 0.0  # flat service overhead (Fig 18 S4)
    forced_l1_hit_rate: Optional[float] = None  # enforce an L1 profile (S1)
    mc_override: Optional[Dict[int, int]] = None  # page -> MC node (Fig 23)


class Simulator:
    """Runs one schedule on one machine."""

    def __init__(self, machine: Machine, config: SimConfig = SimConfig()):
        self.machine = machine
        self.config = config
        self.caches = CacheSystem(
            machine.node_count,
            machine.l1_config,
            machine.l2_config,
            machine.bank_to_node,
        )
        # A machine with an applied fault plan routes through its
        # fault-aware router (detours charge their true link count); a
        # pristine machine keeps the plain XY fast path, bit-identical to
        # the fault-free engine.
        plan = machine.faults
        self._fault_mode = plan is not None and not plan.is_empty
        router = machine.router if self._fault_mode else None
        self.network = NetworkModel(machine.mesh, config.network, router=router)
        self.energy_model = EnergyModel(config.energy)
        self._forced_counter = 0
        # Fast-path distance callable (nested-list indexing, no bounds
        # checks): all simulated src/dst are valid mesh node ids.
        self._manhattan = machine.mesh.distance_fn()
        if self._fault_mode:
            # Epoch-aware: reflects mid-run fault activations immediately.
            self._distance = machine.router.hops
        else:
            self._distance = self._manhattan

    # -- network helpers ----------------------------------------------------

    def _message(self, src: int, dst: int, seq: int, metrics: SimMetrics) -> float:
        """Send one data flit; returns latency, records traffic/movement."""
        if src == dst:
            return 0.0
        config = self.config
        latency = self.network.send(src, dst, flits=1)
        hops = self._distance(src, dst)
        metrics.data_movement += hops
        metrics.movement_by_seq[seq] += hops
        if self._fault_mode:
            extra = hops - self._manhattan(src, dst)
            if extra:
                metrics.detour_extra_hops += extra
        if config.ideal_network:
            return 0.0
        return latency * config.hop_latency_scale

    def _request_latency(self, src: int, dst: int) -> float:
        """A small request message: latency only, no data movement charged."""
        config = self.config
        if src == dst or config.ideal_network:
            return 0.0
        hops = self._distance(src, dst)
        return hops * config.network.router_cycles * config.hop_latency_scale

    # -- memory access ------------------------------------------------------

    def _forced_l1_outcome(self, block: int) -> bool:
        """Deterministic hit/miss stream matching a target hit rate (S1)."""
        rate = self.config.forced_l1_hit_rate
        assert rate is not None
        self._forced_counter += 1
        value = (block * 2654435761 + self._forced_counter * 40503) % (1 << 20)
        return value < rate * (1 << 20)

    def _access(self, node: int, array: str, index: int, seq: int, metrics: SimMetrics) -> float:
        """One load at ``node``; returns its latency contribution."""
        machine = self.machine
        config = self.config
        layout = machine.layout
        block = layout.block_of(array, index)
        bank = layout.l2_bank_of(array, index)
        home = machine.home_node(array, index)

        real_hit = self.caches.l1s[node].access(block)
        l1_hit = (
            self._forced_l1_outcome(block)
            if config.forced_l1_hit_rate is not None
            else real_hit
        )
        latency = config.l1_latency
        if l1_hit:
            metrics.l1_hits += 1
            return latency
        metrics.l1_misses += 1

        latency += self._request_latency(node, home)
        l2_hit = self.caches.l2_banks[bank].access(block)
        latency += config.l2_latency
        if l2_hit:
            metrics.l2_hits += 1
            latency += self._message(home, node, seq, metrics)
            return latency
        metrics.l2_misses += 1

        # L2 miss: forward to the serving controller, then data flows
        # MC -> home bank -> requesting L1 (Figure 1's steps 2..5).
        if config.mc_override:
            page = layout.page_of(array, index)
            mc = config.mc_override.get(
                page, machine.mc_node(array, index, requester=node)
            )
        else:
            mc = machine.mc_node(array, index, requester=node)
        latency += self._request_latency(home, mc)
        memory_cycles = machine.memory_access_cycles(array, index)
        latency += memory_cycles
        metrics.memory_accesses += 1
        metrics.memory_cycles += memory_cycles
        metrics.energy_breakdown["memory"] = metrics.energy_breakdown.get(
            "memory", 0.0
        ) + machine.memory_access_energy_pj(array)
        latency += self._message(mc, home, seq, metrics)
        latency += self._message(home, node, seq, metrics)
        return latency

    # -- dependence construction ---------------------------------------------

    @staticmethod
    def _memory_arcs(units: Sequence[Subcomputation]) -> List[Tuple[int, int, bool]]:
        """(producer uid, consumer uid, is_flow) arcs from a last-writer scan.

        Units are scanned in program order by statement instance (seq).
        Within one instance, *all* reads happen before the write — statement
        semantics — regardless of unit creation order (folding can give the
        final store a lower uid than the units feeding it).
        """
        by_seq: Dict[int, List[Subcomputation]] = {}
        for unit in units:
            by_seq.setdefault(unit.seq, []).append(unit)
        arcs: List[Tuple[int, int, bool]] = []
        last_writer: Dict[Tuple[str, int], int] = {}
        readers: Dict[Tuple[str, int], List[int]] = {}
        for seq in sorted(by_seq):
            group = sorted(by_seq[seq], key=lambda u: u.uid)
            for unit in group:  # reads of the whole instance first
                for gathered in unit.gathered:
                    key = gathered.access.key()
                    writer = last_writer.get(key)
                    if writer is not None and writer != unit.uid:
                        arcs.append((writer, unit.uid, True))
                    readers.setdefault(key, []).append(unit.uid)
            for unit in group:  # then the instance's writes
                if unit.store is None:
                    continue
                key = unit.store.key()
                for reader in readers.get(key, ()):  # anti
                    if reader != unit.uid:
                        arcs.append((reader, unit.uid, False))
                writer = last_writer.get(key)
                if writer is not None and writer != unit.uid:  # output
                    arcs.append((writer, unit.uid, False))
                last_writer[key] = unit.uid
                readers[key] = []
        return arcs

    # -- fault handling ------------------------------------------------------

    def _activate_faults(
        self, pending, processed, dead_links, dead_nodes, relocation, metrics
    ) -> None:
        """Apply every mid-run fault whose activation epoch has passed.

        Mutates the caller's live ``dead_links`` / ``dead_nodes`` sets,
        clears the relocation targets (they were chosen against the old
        fault set), and installs the new configuration into the machine's
        router — which bumps the fault epoch and drops the detour cache.
        """
        from repro.faults.plan import NodeFault

        tracer = get_tracer()
        while pending and processed >= pending[0][0]:
            at_unit, fault = pending.pop(0)
            if isinstance(fault, NodeFault):
                dead_nodes.add(fault.node)
            else:
                dead_links.update(fault.directed())
            metrics.fault_events += 1
            if tracer.enabled:
                tracer.point(
                    "fault.activate",
                    at_unit=at_unit,
                    units_done=processed,
                    fault=repr(fault),
                )
        relocation.clear()
        self.machine.router.set_faults(dead_links, dead_nodes)

    def _relocate(self, unit, dead_nodes, relocation, metrics) -> int:
        """Nearest surviving tile for a unit whose home tile is offline."""
        node = unit.node
        target = relocation.get(node)
        if target is None:
            alive = [
                n for n in range(self.machine.node_count) if n not in dead_nodes
            ]
            if not alive:
                raise SimulationError("fault plan killed every tile mid-run")
            distance = self._manhattan
            target = min(alive, key=lambda n: (distance(node, n), n))
            relocation[node] = target
        metrics.fault_relocations += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.point("fault.relocate", uid=unit.uid, src=node, dst=target)
        return target

    # -- main loop --------------------------------------------------------------

    def run(self, units: Sequence[Subcomputation]) -> SimMetrics:
        """Simulate ``units``; returns the filled :class:`SimMetrics`.

        With tracing enabled (:mod:`repro.obs`), the run is wrapped in a
        ``sim.run`` span with periodic ``sim.epoch`` counter snapshots;
        tracing reads counters only and never alters the simulation.
        """
        metrics = SimMetrics()
        if not units:
            return metrics
        if check.enabled():
            # Check mode: the schedule must be a well-formed dependence DAG
            # before a single event is simulated.
            invariants.check_units_wellformed(units)
        tracer = get_tracer()
        trace_on = tracer.enabled
        sim_span = tracer.span("sim.run", units=len(units)) if trace_on else None
        by_uid: Dict[int, Subcomputation] = {u.uid: u for u in units}
        if len(by_uid) != len(units):
            raise SimulationError("duplicate subcomputation uids in schedule")

        # Dependence arcs: dataflow (sub_results) + memory order.
        preds: Dict[int, List[Tuple[int, bool]]] = {u.uid: [] for u in units}
        succs: Dict[int, List[int]] = {u.uid: [] for u in units}
        for unit in units:
            for result in unit.sub_results:
                if result.producer_uid not in by_uid:
                    raise SimulationError(
                        f"unit {unit.uid} consumes unknown producer "
                        f"{result.producer_uid}"
                    )
                preds[unit.uid].append((result.producer_uid, False))
                succs[result.producer_uid].append(unit.uid)
        for producer, consumer, _is_flow in self._memory_arcs(units):
            if producer in by_uid and consumer in by_uid:
                preds[consumer].append((producer, True))
                succs[producer].append(consumer)

        indegree = {uid: len(pred) for uid, pred in preds.items()}
        ready = [
            (by_uid[uid].seq, uid) for uid, degree in indegree.items() if degree == 0
        ]
        heapq.heapify(ready)

        # Each node is a K-context server (SMT): a unit occupies the
        # earliest-free context; waits for remote results overlap with other
        # contexts' work.
        config = self.config
        contexts = max(config.contexts_per_node, 1)
        node_ctx: Dict[int, List[float]] = {}
        finish: Dict[int, float] = {}
        processed = 0
        sync_cost = config.sync_cycles + config.extra_sync_cycles
        mlp = max(config.memory_level_parallelism, 1.0)
        cycles_per_op = config.cycles_per_op
        compute_scale = config.compute_scale
        per_unit_overhead = config.per_unit_overhead_cycles
        access = self._access
        message = self._message
        heappush = heapq.heappush
        seqs: Set[int] = set()

        # -- fault state (only consulted when a non-empty plan is applied).
        # ``dead_*`` track the faults active *so far* (static + activated
        # mid-run events); ``exec_node`` records where each unit actually
        # ran, which differs from unit.node for relocated units.
        fault_mode = self._fault_mode
        pending_faults: List = []
        dead_nodes: Set[int] = set()
        dead_links: Set[Tuple[int, int]] = set()
        relocation: Dict[int, int] = {}
        exec_node: Dict[int, int] = {}
        if fault_mode:
            plan = self.machine.faults
            pending_faults = plan.midrun_events()
            dead_nodes = set(plan.static_dead_nodes())
            dead_links = set(plan.static_dead_links())

        while ready:
            _, uid = heapq.heappop(ready)
            unit = by_uid[uid]
            node = unit.node
            seq = unit.seq
            seqs.add(seq)
            if fault_mode:
                if pending_faults and processed >= pending_faults[0][0]:
                    self._activate_faults(
                        pending_faults, processed, dead_links, dead_nodes,
                        relocation, metrics,
                    )
                if node in dead_nodes:
                    # Graceful degradation: the unit's home tile died; rerun
                    # it on the nearest surviving tile instead of crashing.
                    node = self._relocate(
                        unit, dead_nodes, relocation, metrics
                    )
                exec_node[uid] = node
            servers = node_ctx.setdefault(node, [0.0] * contexts)

            # When are this unit's inputs all present?
            input_ready = 0.0
            # Child results: network message + sync when cross-node.
            for result in unit.sub_results:
                producer = by_uid[result.producer_uid]
                arrival = finish[producer.uid]
                producer_node = (
                    exec_node[producer.uid] if fault_mode else producer.node
                )
                if producer_node != node:
                    arrival += message(producer_node, node, seq, metrics)
                    arrival += sync_cost
                    metrics.sync_count += 1
                if arrival > input_ready:
                    input_ready = arrival

            # Memory-order predecessors.  A cross-node *flow* dependence
            # needs a point-to-point synchronization (the consumer spins on
            # the producer's flag); anti/output order is enforced by the
            # same wait but carries no data.
            for producer_uid, is_memory in preds[uid]:
                if not is_memory:
                    continue
                producer = by_uid[producer_uid]
                arrival = finish[producer_uid]
                producer_node = (
                    exec_node[producer_uid] if fault_mode else producer.node
                )
                if producer_node != node:
                    arrival += sync_cost
                    metrics.sync_count += 1
                if arrival > input_ready:
                    input_ready = arrival

            # A blocked thread yields its context (SMT): occupy the context
            # that minimizes the actual service start (ties: lowest index,
            # then earliest-free server — the min-by-key order).
            slot = 0
            slot_free = servers[0]
            best_start = slot_free if slot_free > input_ready else input_ready
            for s in range(1, contexts):
                free = servers[s]
                candidate = free if free > input_ready else input_ready
                if candidate < best_start or (
                    candidate == best_start and free < slot_free
                ):
                    slot = s
                    slot_free = free
                    best_start = candidate
            start = best_start
            wait = input_ready - slot_free
            if wait > 0.0:
                metrics.sync_wait_cycles += wait

            # Gather raw data through the memory hierarchy.  Independent
            # loads overlap up to the configured memory-level parallelism.
            latencies: List[float] = [
                access(node, g.access.array, g.access.index, seq, metrics)
                for g in unit.gathered
            ]
            # The store writes through the hierarchy at the executing node.
            store = unit.store
            if store is not None:
                latencies.append(access(node, store.array, store.index, seq, metrics))
            if latencies:
                slowest = max(latencies)
                rest = sum(latencies) - slowest
                access_time = slowest + rest / mlp
            else:
                access_time = 0.0

            compute_time = unit.cost * cycles_per_op * compute_scale
            end = start + access_time + compute_time + per_unit_overhead
            finish[uid] = end
            servers[slot] = end
            metrics.op_count += unit.op_count
            metrics.compute_cycles += compute_time
            processed += 1
            if trace_on and not processed % TRACE_EPOCH_UNITS:
                tracer.point(
                    "sim.epoch",
                    units=processed,
                    movement=metrics.data_movement,
                    l1_hits=metrics.l1_hits,
                    l1_misses=metrics.l1_misses,
                    l2_hits=metrics.l2_hits,
                    l2_misses=metrics.l2_misses,
                    syncs=metrics.sync_count,
                )

            for successor in succs[uid]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heappush(ready, (by_uid[successor].seq, successor))

        if processed != len(units):
            raise SimulationError(
                f"schedule has a dependence cycle: ran {processed} of {len(units)} units"
            )

        metrics.total_cycles = max(finish.values(), default=0.0)
        metrics.unit_count = len(units)
        metrics.statement_count = len(seqs)
        metrics.network_messages = self.network.message_count()
        metrics.network_avg_latency = self.network.average_latency()
        metrics.network_max_latency = self.network.max_latency()
        metrics.max_link_load = self.network.traffic.max_link_load()

        weighted_ops = sum(u.cost for u in units)
        breakdown = self.energy_model.compute(
            flit_hops=self.network.traffic.total_flit_hops,
            l1_accesses=metrics.l1_hits + metrics.l1_misses,
            l2_accesses=metrics.l2_hits + metrics.l2_misses,
            memory_energy_pj=metrics.energy_breakdown.get("memory", 0.0),
            weighted_ops=weighted_ops,
            syncs=metrics.sync_count,
            cycles=metrics.total_cycles,
        )
        metrics.energy_breakdown = breakdown
        metrics.energy_pj = breakdown["total"]
        metrics.link_flits = dict(self.network.traffic._flits)
        if check.enabled():
            # Conservation: per-link and per-statement decompositions must
            # re-sum exactly to the headline DataMovement metric.
            invariants.check_heatmap_conservation(metrics)
        if sim_span is not None:
            sim_span.add(
                cycles=metrics.total_cycles,
                movement=metrics.data_movement,
                l1_hit_rate=round(metrics.l1_hit_rate(), 6),
                l2_hit_rate=round(metrics.l2_hit_rate(), 6),
                syncs=metrics.sync_count,
                energy_pj=metrics.energy_pj,
            )
            sim_span.end()
        return metrics


def run_schedule(
    machine: Machine,
    units: Sequence[Subcomputation],
    config: SimConfig = SimConfig(),
) -> SimMetrics:
    """Convenience wrapper: simulate ``units`` on a fresh simulator."""
    return Simulator(machine, config).run(units)
