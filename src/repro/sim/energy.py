"""Energy model (paper Section 6.6, Figure 24).

The paper feeds its simulator's event counts through CACTI and McPAT; we
apply per-event energy constants to the same counts.  Relative savings —
the only thing Figure 24 reports — depend on the count *deltas* between the
default and optimized schedules, which this preserves.

Constants are order-of-magnitude figures for a 14nm manycore: a few pJ per
cache access and per link traversal, tens of pJ per DRAM access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants in picojoules."""

    link_hop_pj: float = 2.0          # one flit over one mesh link
    router_pj: float = 1.5            # router traversal per hop
    l1_access_pj: float = 1.0
    l2_access_pj: float = 6.0
    op_pj: float = 0.8                # one ALU op (division weighted by cost)
    sync_pj: float = 4.0              # one point-to-point synchronization
    static_pj_per_cycle: float = 0.5  # chip-wide leakage per cycle


class EnergyModel:
    """Computes total energy from a metrics snapshot."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def compute(
        self,
        *,
        flit_hops: int,
        l1_accesses: int,
        l2_accesses: int,
        memory_energy_pj: float,
        weighted_ops: float,
        syncs: int,
        cycles: float,
    ) -> Dict[str, float]:
        """Energy breakdown in picojoules; key ``total`` sums everything."""
        p = self.params
        breakdown = {
            "network": flit_hops * (p.link_hop_pj + p.router_pj),
            "l1": l1_accesses * p.l1_access_pj,
            "l2": l2_accesses * p.l2_access_pj,
            "memory": memory_energy_pj,
            "compute": weighted_ops * p.op_pj,
            "sync": syncs * p.sync_pj,
            "static": cycles * p.static_pj_per_cycle,
        }
        breakdown["total"] = sum(breakdown.values())
        return breakdown
