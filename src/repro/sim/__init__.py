"""Execution simulation (the GEM5-style platform of paper Section 6.2).

The simulator executes a *schedule* — a list of
:class:`~repro.core.subcomputation.Subcomputation` units (either from the
NDP partitioner or from a baseline placement) — on a
:class:`~repro.arch.machine.Machine`, charging:

* memory access latency through real per-node L1 caches and distributed L2
  banks (cache contents are simulated, not the compiler's model);
* NoC hops with congestion (XY routing over the mesh, per-link traffic);
* DRAM/MCDRAM latency behind L2 misses, per the active memory mode;
* compute cycles per operation (division 10x) and synchronization overhead
  for cross-node result messages and cross-node dependences.

It reports the metrics behind every figure of the evaluation: total cycles,
per-statement data movement, L1/L2 hit rates, average/maximum network
latency, sync counts, and energy.
"""

from repro.sim.metrics import SimMetrics
from repro.sim.energy import EnergyModel, EnergyParams
from repro.sim.engine import SimConfig, Simulator, run_schedule

__all__ = [
    "SimMetrics",
    "EnergyModel",
    "EnergyParams",
    "SimConfig",
    "Simulator",
    "run_schedule",
]
