"""Metric container produced by a simulation run."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimMetrics:
    """Counters and derived statistics of one simulated schedule."""

    total_cycles: float = 0.0
    unit_count: int = 0
    statement_count: int = 0

    # memory system
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0
    memory_cycles: float = 0.0

    # network
    data_movement: int = 0            # flit-hops of data messages (the paper's metric)
    network_messages: int = 0
    network_avg_latency: float = 0.0
    network_max_latency: float = 0.0
    max_link_load: int = 0

    # compute & synchronization
    op_count: int = 0
    compute_cycles: float = 0.0
    sync_count: int = 0
    sync_wait_cycles: float = 0.0

    # energy (picojoules)
    energy_pj: float = 0.0
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    # per-statement-instance movement, keyed by instance seq; a defaultdict
    # so the simulator's hot message path can `+=` without a get() probe
    movement_by_seq: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    def movement_per_statement(self) -> List[int]:
        return [self.movement_by_seq[k] for k in sorted(self.movement_by_seq)]

    def average_movement_per_statement(self) -> float:
        values = self.movement_per_statement()
        return sum(values) / len(values) if values else 0.0

    def max_movement_per_statement(self) -> int:
        values = self.movement_per_statement()
        return max(values) if values else 0

    def syncs_per_statement(self) -> float:
        if not self.statement_count:
            return 0.0
        return self.sync_count / self.statement_count

    def summary(self) -> str:
        return (
            f"cycles={self.total_cycles:.0f} movement={self.data_movement} "
            f"L1={self.l1_hit_rate():.3f} L2={self.l2_hit_rate():.3f} "
            f"netavg={self.network_avg_latency:.2f} netmax={self.network_max_latency:.1f} "
            f"syncs={self.sync_count} energy={self.energy_pj / 1e6:.3f}uJ"
        )
