"""Metric container produced by a simulation run."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SimMetrics:
    """Counters and derived statistics of one simulated schedule."""

    total_cycles: float = 0.0
    unit_count: int = 0
    statement_count: int = 0

    # memory system
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0
    memory_cycles: float = 0.0

    # network
    data_movement: int = 0            # flit-hops of data messages (the paper's metric)
    network_messages: int = 0
    network_avg_latency: float = 0.0
    network_max_latency: float = 0.0
    max_link_load: int = 0

    # compute & synchronization
    op_count: int = 0
    compute_cycles: float = 0.0
    sync_count: int = 0
    sync_wait_cycles: float = 0.0

    # energy (picojoules)
    energy_pj: float = 0.0
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    # fault injection / graceful degradation (all zero on a healthy run)
    fault_events: int = 0          # mid-run fault activations
    fault_relocations: int = 0     # units moved off a tile that died
    detour_extra_hops: int = 0     # data flit-hops beyond Manhattan minimum

    # per-statement-instance movement, keyed by instance seq; a defaultdict
    # so the simulator's hot message path can `+=` without a get() probe
    movement_by_seq: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    # per-link flit volumes, (src, dst) -> flits, snapshotted from the
    # network's traffic matrix when the run finishes; the values sum to
    # data_movement (every data flit-hop is one unit of the paper's metric)
    link_flits: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def l1_hit_rate(self) -> float:
        """L1 hits / (hits + misses); 0.0 when no accesses ran."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def l2_hit_rate(self) -> float:
        """L2 hits / (hits + misses); 0.0 when no accesses ran."""
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    def movement_per_statement(self) -> List[int]:
        """Per-statement movement totals keyed by statement seq."""
        return [self.movement_by_seq[k] for k in sorted(self.movement_by_seq)]

    def average_movement_per_statement(self) -> float:
        """Mean movement over all statements (0.0 when empty)."""
        values = self.movement_per_statement()
        return sum(values) / len(values) if values else 0.0

    def max_movement_per_statement(self) -> int:
        """Largest single statement's movement (0 when empty)."""
        values = self.movement_per_statement()
        return max(values) if values else 0

    def syncs_per_statement(self) -> float:
        """Average synchronizations per executed statement."""
        if not self.statement_count:
            return 0.0
        return self.sync_count / self.statement_count

    def to_dict(self) -> Dict:
        """JSON-safe snapshot of every scalar counter plus derived rates.

        Used by the ``report.json`` emitter (see :mod:`repro.obs.schema`);
        the per-seq movement map and the per-link flit map are exported
        separately (the latter as the report's ``link_heatmap``), so this
        dict stays small and flat.
        """
        return {
            "total_cycles": self.total_cycles,
            "unit_count": self.unit_count,
            "statement_count": self.statement_count,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "l1_hit_rate": self.l1_hit_rate(),
            "l2_hit_rate": self.l2_hit_rate(),
            "memory_accesses": self.memory_accesses,
            "memory_cycles": self.memory_cycles,
            "data_movement": self.data_movement,
            "network_messages": self.network_messages,
            "network_avg_latency": self.network_avg_latency,
            "network_max_latency": self.network_max_latency,
            "max_link_load": self.max_link_load,
            "op_count": self.op_count,
            "compute_cycles": self.compute_cycles,
            "sync_count": self.sync_count,
            "sync_wait_cycles": self.sync_wait_cycles,
            "energy_pj": self.energy_pj,
            "energy_breakdown": dict(self.energy_breakdown),
            "fault_events": self.fault_events,
            "fault_relocations": self.fault_relocations,
            "detour_extra_hops": self.detour_extra_hops,
        }

    def summary(self) -> str:
        """One-line human-readable digest of the run's headline counters."""
        return (
            f"cycles={self.total_cycles:.0f} movement={self.data_movement} "
            f"L1={self.l1_hit_rate():.3f} L2={self.l2_hit_rate():.3f} "
            f"netavg={self.network_avg_latency:.2f} netmax={self.network_max_latency:.1f} "
            f"syncs={self.sync_count} energy={self.energy_pj / 1e6:.3f}uJ"
        )
