"""Workload registry: the 12 applications by name."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.ir.program import Program
from repro.workloads import mantevo, splash2
from repro.workloads.base import WorkloadSpec

_SPECS: List[WorkloadSpec] = [
    WorkloadSpec("barnes", splash2.barnes, "splash2", 0.683,
                 "N-body force accumulation over interaction lists"),
    WorkloadSpec("cholesky", splash2.cholesky, "splash2", 0.965,
                 "blocked Cholesky factorization updates"),
    WorkloadSpec("fft", splash2.fft, "splash2", 0.923,
                 "strided butterfly stages + bit-reversal gather"),
    WorkloadSpec("fmm", splash2.fmm, "splash2", 0.727,
                 "fast-multipole evaluation over cell lists"),
    WorkloadSpec("lu", splash2.lu, "splash2", 0.907,
                 "dense LU elimination with pivot gather"),
    WorkloadSpec("ocean", splash2.ocean, "splash2", 0.773,
                 "2-D relaxation stencils"),
    WorkloadSpec("radiosity", splash2.radiosity, "splash2", 0.750,
                 "radiosity exchange over visibility lists"),
    WorkloadSpec("radix", splash2.radix, "splash2", 0.842,
                 "radix-sort counting + scatter"),
    WorkloadSpec("raytrace", splash2.raytrace, "splash2", 0.737,
                 "ray-grid traversal with object lists"),
    WorkloadSpec("water", splash2.water, "splash2", 0.905,
                 "molecular-dynamics force updates"),
    WorkloadSpec("minimd", mantevo.minimd, "mantevo", 0.778,
                 "Lennard-Jones force loop over neighbor lists"),
    WorkloadSpec("minixyce", mantevo.minixyce, "mantevo", 0.938,
                 "sparse circuit matrix-vector steps"),
]

_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

ALL_WORKLOAD_NAMES: List[str] = [spec.name for spec in _SPECS]


def workload_specs() -> List[WorkloadSpec]:
    """All workload specs in canonical (paper table) order."""
    return list(_SPECS)


def build_workload(name: str, scale: int = 1, seed: int = 0) -> Program:
    """Build one workload by name."""
    spec = _BY_NAME.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(ALL_WORKLOAD_NAMES)}"
        )
    return spec.build(scale, seed)
