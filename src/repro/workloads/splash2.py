"""Synthetic Splash-2 kernels (paper Section 6.1).

Each builder returns a :class:`~repro.ir.program.Program` whose loop nests
reproduce the named application's reported character — statement length,
operator mix, fraction of indirect (non-analyzable) references, and access
spread.  ``scale`` multiplies the iteration counts; ``seed`` drives the
index-array contents.

Geometry is calibrated to the paper's regime scaled down ~1000x: the paper
runs 661MB-3.3GB datasets against 32KB L1s (per-core working sets vastly
exceed L1), with original L2 miss rates of 16-37%.  Here, strides of a
cache block or more make most operands land on fresh blocks, per-node
working sets exceed the experiment machine's L1 between reuses, and a short
outer timing loop (``t``) provides the warm-cache steady state — cold
first-pass misses supply the L2-miss band.
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.program import Program
from repro.workloads.base import clustered_index, nest, permutation_index

#: Base matrix dimension for the dense-panel kernels at ``scale=1``.
#: Chosen to match the paper's 36-tile evaluation mesh (one panel
#: row/column per tile at the paper geometry) — a workload-size
#: calibration, not a machine dependency: the same programs run
#: unchanged on any mesh built by :func:`repro.arch.knl.mesh_machine`.
BASE_PANEL_DIM = 36


def barnes(scale: int = 1, seed: int = 0) -> Program:
    """N-body force accumulation over clustered interaction lists.

    Long statements (high subcomputation parallelism), ~30% indirect
    references (Table 1: 68.3% analyzable), add-heavy mix; interaction
    targets scatter across the whole chip, so the default placement moves a
    lot of data — Barnes is one of the paper's biggest winners (Fig 13).
    """
    p = Program("barnes")
    bodies = 1152 * scale
    # NDP-friendly allocation (page coloring): the interaction operands
    # share a bank phase so same-index pairs are bank-neighbors; the
    # accumulators sit two banks away.
    for name in ("AX", "AY", "VX", "PX"):
        p.declare(name, 4 * bodies + 16, bank_phase=8)
    for name in ("M", "DX", "DY"):
        p.declare(name, 8 * bodies, bank_phase=6)
    p.declare("EPS", 16 * bodies + 16, bank_phase=6)
    p.declare("DT", 8 * bodies + 8, bank_phase=6)
    clustered_index(p, "IL", 4 * bodies + 4, 8 * bodies, 4, seed, "barnes-il")
    p.add_nest(
        nest(
            "forces",
            [Loop("t", 0, 2), Loop("i", 0, bodies)],
            [
                "AX(4*i) = AX(4*i) + M(IL(4*i))*DX(IL(4*i)) + M(IL(4*i+1))*DX(IL(4*i+1)) + M(IL(4*i+2))*DX(IL(4*i+2))",
                "AY(4*i) = AY(4*i) + M(4*i)*DY(IL(4*i+3))",
                "VX(4*i) = VX(4*i) + AX(4*i) + AX(4*i+4) + EPS(16*i)",
                "PX(4*i) = PX(4*i) + VX(4*i)*DT(8*i) + DX(16*i+5)",
            ],
        )
    )
    return p


def cholesky(scale: int = 1, seed: int = 0) -> Program:
    """Blocked Cholesky factorization updates.

    Nearly fully analyzable (Table 1: 97.2%), division present, and
    operands of each statement sit close together (the B(i,t)/B(j,t)
    panels), so the original network footprint is small — the paper notes
    Cholesky gains little from the optimization.
    """
    p = Program("cholesky")
    n = BASE_PANEL_DIM * max(scale, 1)
    p.declare("A", n, n)
    p.declare("B", n, 8)
    p.declare("L", n, n)
    p.declare("D", n, n)
    p.declare("S", n)
    permutation_index(p, "PV", n, seed, "cholesky-pivot")
    p.add_nest(
        nest(
            "update",
            [Loop("t", 0, 2), Loop("i", 0, n), Loop("j", 0, n)],
            [
                "A(i,j) = A(i,j) - B(i,t)*B(j,t)",
                "L(i,j) = A(i,j) / D(j,j)",
            ],
        )
    )
    # A small supernode-assembly pass with permuted row gathers: the source
    # of Cholesky's few non-analyzable references (Table 1: 97.2%).
    p.add_nest(
        nest(
            "assemble",
            [Loop("t", 0, 2), Loop("i", 0, n), Loop("k", 0, 10)],
            [
                "S(i) = S(i) + A(PV(i),t)",
            ],
        )
    )
    return p


def fft(scale: int = 1, seed: int = 0) -> Program:
    """Strided butterfly stages with twiddle factors and a bit-reversal pass.

    Strides spread each statement's operands over many banks; the small
    bit-reversal gather supplies the ~8% non-analyzable references
    (Table 1: 92.3%); the mix is multiply-heavy (Table 3).
    """
    p = Program("fft")
    points = 2048 * scale
    half = points // 2
    for name in ("XR", "XI"):
        p.declare(name, 8 * points, bank_phase=16)
    for name in ("YR", "YI"):
        p.declare(name, 8 * points, bank_phase=14)
    for name in ("WR", "WI"):
        p.declare(name, 8 * points + 16, bank_phase=14)
    p.declare("ZR", points, bank_phase=16)
    permutation_index(p, "BR", points, seed, "fft-bitrev")
    p.add_nest(
        nest(
            "butterfly",
            [Loop("t", 0, 2), Loop("i", 0, half)],
            [
                f"XR(4*i) = XR(4*i) + WR(4*i)*YR(4*i+{half}) - WI(4*i)*YI(4*i+{half})",
                f"XI(4*i) = XI(4*i) + WR(4*i)*YI(4*i+{half}) + WI(4*i)*YR(4*i+{half})",
                "ZR(i) = XR(BR(i)) + XI(4*i)",
            ],
        )
    )
    return p


def fmm(scale: int = 1, seed: int = 0) -> Program:
    """Fast-multipole potential/force evaluation over cell lists.

    Balanced add/multiply mix (Table 3: 47/45), ~25% indirect references
    (Table 1: 74.4%), mid-pack movement reduction.
    """
    p = Program("fmm")
    cells = 1280 * scale
    for name in ("PHI", "FX"):
        p.declare(name, 2 * cells + 16, bank_phase=12)
    for name in ("Q", "KX"):
        p.declare(name, 8 * cells, bank_phase=10)
    p.declare("KY", 3 * cells + 8, bank_phase=10)
    p.declare("DT", 4 * cells + 16, bank_phase=10)
    clustered_index(p, "CL", 4 * cells + 4, 8 * cells, 4, seed, "fmm-cl")
    p.add_nest(
        nest(
            "multipole",
            [Loop("t", 0, 2), Loop("i", 0, cells)],
            [
                "PHI(2*i) = PHI(2*i) + Q(CL(4*i))*KX(CL(4*i)) + Q(CL(4*i+1))*KX(CL(4*i+1)) + Q(CL(4*i+2))*KX(CL(4*i+2))",
                "FX(2*i) = FX(2*i) + PHI(2*i)*KY(2*i) + Q(3*i)*KY(3*i+1)",
                "KX(i) = KX(i) + FX(2*i)*DT(4*i)",
                "KY(2*i) = KY(2*i) + PHI(2*i)*DT(2*i+1)",
            ],
        )
    )
    return p


def lu(scale: int = 1, seed: int = 0) -> Program:
    """Dense LU elimination steps with a pivot gather.

    Multiply/divide heavy (Table 3: 51.6% mul/div), highly analyzable
    (Table 1: 90.7%), and — like Cholesky — operands are panel-local, so
    the movement-reduction potential is modest.
    """
    p = Program("lu")
    n = BASE_PANEL_DIM * max(scale, 1)
    p.declare("A", n, n)
    p.declare("U", n, n)
    p.declare("S", n)
    permutation_index(p, "PV", n, seed, "lu-pivot")
    p.add_nest(
        nest(
            "eliminate",
            [Loop("t", 0, 2), Loop("i", 0, n), Loop("j", 0, n)],
            [
                "A(i,j) = A(i,j) - A(i,t)*A(t,j)",
                "U(i,j) = A(i,j) / A(t,t)",
                "S(j) = A(t,j)*S(PV(j))",
            ],
        )
    )
    return p


def ocean(scale: int = 1, seed: int = 0) -> Program:
    """2-D relaxation stencils on ocean grids.

    Long 5/6-operand statements whose vertical neighbors live a full grid
    row apart (different blocks, different banks): big original network
    footprint and the paper's top-tier movement reduction; ~20% of
    references go through boundary-condition tables (Table 1: 77.3%).
    """
    p = Program("ocean")
    # Long rows: vertical stencil neighbors live a whole row (~128 blocks)
    # apart, so they never survive in the L1 between row passes — the
    # working-set shape of the paper's 1026x1026 Ocean grids.
    rows = 8 * max(scale, 1)
    cols = 2048 * max(scale, 1)
    for name in ("P", "PN", "V", "Q", "F", "H", "E", "DTG"):
        p.declare(name, rows + 2, cols + 2, bank_phase=0)
    p.declare("GAM", 8 * (cols + 2), bank_phase=2)
    permutation_index(p, "BI", rows + 2, seed, "ocean-bi")
    permutation_index(p, "BJ", cols + 2, seed, "ocean-bj")
    p.add_nest(
        nest(
            "relax",
            [Loop("t", 0, 2), Loop("i", 1, rows + 1), Loop("j", 1, cols + 1, 8)],
            [
                "PN(i,j) = P(i,j) + P(i-1,j) + P(i+1,j) + P(i,j-1) + P(i,j+1) + GAM(BJ(j-1))",
                "V(i,j) = V(i,j) + PN(i,j)*DTG(i,j) - Q(i,j)*H(i,j) + GAM(BI(i+1))",
                "Q(i,j) = Q(i,j) + V(i,j) + V(i-1,j) + V(i,j+1) + GAM(BI(i))*GAM(BJ(j))",
                "E(i,j) = PN(i,j) + GAM(BI(i)) + GAM(BJ(j+1)) + F(i,j)",
            ],
        )
    )
    return p


def radiosity(scale: int = 1, seed: int = 0) -> Program:
    """Iterative radiosity exchange over visibility lists.

    ~23% indirect references (Table 1: 77.3%), medium statement length,
    add-leaning mix with a visible 'others' share in the paper (Table 3).
    """
    p = Program("radiosity")
    patches = 1152 * scale
    p.declare("RAD", 8 * patches, bank_phase=18)
    p.declare("FF", 8 * patches, bank_phase=18)
    p.declare("B", 2 * patches + 16, bank_phase=20)
    p.declare("RHO", 3 * patches + 8, bank_phase=18)
    p.declare("EM", 3 * patches + 8, bank_phase=18)
    p.declare("ERR", 2 * patches + 16, bank_phase=20)
    clustered_index(p, "VL", 4 * patches + 4, 8 * patches, 4, seed, "radiosity-vl")
    p.add_nest(
        nest(
            "exchange",
            [Loop("t", 0, 2), Loop("i", 0, patches)],
            [
                "RAD(i) = RAD(i) + FF(VL(4*i))*RAD(VL(4*i)) + FF(VL(4*i+1))*RAD(VL(4*i+1)) + FF(VL(4*i+2))*RAD(VL(4*i+2))",
                "B(2*i) = RAD(i)*RHO(2*i) + EM(3*i)",
                "ERR(2*i) = B(2*i) - B(2*i+2) + ERR(2*i)",
                "FF(i) = FF(i) + B(2*i)*RHO(i)",
                "EM(3*i) = EM(3*i) + B(2*i) + RHO(3*i)",
            ],
        )
    )
    return p


def radix(scale: int = 1, seed: int = 0) -> Program:
    """Radix-sort counting and permutation-scatter phases.

    Indirect *writes* (histogram update, scatter) — the may-dependence case
    the inspector-executor handles; Table 1: 84.2% analyzable; notable
    'others' share in Table 3 (shifts in the real code).
    """
    p = Program("radix")
    keys = 1536 * scale
    for name in ("KEY", "D", "C", "ONE"):
        p.declare(name, 8 * keys + 16, bank_phase=22)
    p.declare("CNT", 8 * keys, bank_phase=24)
    p.declare("OUT", 8 * keys, bank_phase=24)
    permutation_index(p, "K", keys, seed, "radix-hist")
    permutation_index(p, "PP", keys, seed, "radix-perm")
    p.add_nest(
        nest(
            "count",
            [Loop("t", 0, 2), Loop("i", 0, keys)],
            [
                "CNT(K(i)) = CNT(K(i)) + ONE(i)",
                "OUT(PP(i)) = KEY(4*i) + C(2*i)",
                "D(2*i) = KEY(8*i) + KEY(8*i+1) + C(3*i) + D(2*i+4)",
                "C(2*i) = D(2*i) + D(2*i+4) + ONE(2*i)",
            ],
        )
    )
    return p


def raytrace(scale: int = 1, seed: int = 0) -> Program:
    """Ray-grid traversal with per-cell object lists.

    Multiply-heavy (Table 3: 49.7% mul/div), long dot-product statements,
    ~18% indirect references through the object lists.
    """
    p = Program("raytrace")
    rays = 1152 * scale
    for name in ("HIT", "TMIN", "COL"):
        p.declare(name, 4 * rays + 16, bank_phase=28)
    for name in ("OX", "OY", "OZ"):
        p.declare(name, 4 * rays + 16, bank_phase=26)
    for name in ("DXR", "DYR", "DZR"):
        p.declare(name, 2 * rays + 8, bank_phase=26)
    p.declare("KD", 3 * rays + 8, bank_phase=26)
    p.declare("SR", 8 * rays, bank_phase=26)
    clustered_index(p, "OB", 4 * rays + 4, 8 * rays, 4, seed, "raytrace-ob")
    p.add_nest(
        nest(
            "trace",
            [Loop("t", 0, 2), Loop("i", 0, rays)],
            [
                "HIT(2*i) = OX(2*i)*DXR(2*i) + OY(2*i)*DYR(2*i) + OZ(2*i)*DZR(2*i)",
                "TMIN(2*i) = HIT(2*i) + SR(OB(4*i))*SR(OB(4*i+1)) + SR(OB(4*i+2))*SR(OB(4*i+3))",
                "COL(2*i) = COL(2*i) + TMIN(2*i)*KD(3*i) + SR(OB(4*i))*KD(i)",
            ],
        )
    )
    return p


def water(scale: int = 1, seed: int = 0) -> Program:
    """Molecular-dynamics intra/inter-molecular force updates.

    Add-heavy mix (Table 3: 58.1% add/sub) with a division in the energy
    term; mostly affine with a small neighbor gather.
    """
    p = Program("water")
    molecules = 1152 * scale
    for name in ("FX", "E", "VX"):
        p.declare(name, 2 * molecules + 16, bank_phase=2)
    p.declare("X", 3 * molecules + 8, bank_phase=0)
    p.declare("Q", 4 * molecules + 16, bank_phase=0)
    p.declare("R", 2 * molecules + 8, bank_phase=0)
    p.declare("DT", 2 * molecules + 8, bank_phase=0)
    p.declare("G", 8 * molecules, bank_phase=0)
    clustered_index(p, "W", molecules + 2, 8 * molecules, 6, seed, "water-nb")
    p.add_nest(
        nest(
            "forces",
            [Loop("t", 0, 2), Loop("i", 0, molecules)],
            [
                "FX(2*i) = FX(2*i) + X(2*i) - X(2*i+1) + X(3*i) - X(3*i+2)",
                "E(2*i) = E(2*i) + Q(4*i)*Q(4*i+1) / R(2*i)",
                "VX(2*i) = VX(2*i) + FX(2*i)*DT(i) + G(W(i)) - G(W(i+1))",
                "X(i) = X(i) + VX(2*i)*DT(2*i)",
            ],
        )
    )
    return p
