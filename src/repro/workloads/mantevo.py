"""Synthetic Mantevo mini-apps (paper Section 6.1): MiniMD and MiniXyce."""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.program import Program
from repro.workloads.base import clustered_index, nest, permutation_index


def minimd(scale: int = 1, seed: int = 0) -> Program:
    """Lennard-Jones force loop over neighbor lists (MiniMD).

    Clustered neighbor gathers (short-range locality the window scheduler
    can catch), long force statements; one of the paper's top movement
    reducers (Fig 13).
    """
    p = Program("minimd")
    atoms = 1280 * scale
    p.declare("F", 2 * atoms + 16, bank_phase=6)
    p.declare("X", 8 * atoms, bank_phase=4)
    p.declare("XN", 2 * atoms + 16, bank_phase=6)
    p.declare("V", 2 * atoms + 16, bank_phase=6)
    p.declare("M", 8 * atoms, bank_phase=4)
    p.declare("DT", 4 * atoms + 16, bank_phase=4)
    p.declare("CUT", 3 * atoms + 8, bank_phase=4)
    clustered_index(p, "NB", 4 * atoms + 4, 8 * atoms, 4, seed, "minimd-nb")
    p.add_nest(
        nest(
            "force",
            [Loop("t", 0, 2), Loop("i", 0, atoms)],
            [
                "F(2*i) = F(2*i) + X(NB(4*i))*M(NB(4*i)) + X(NB(4*i+1))*M(NB(4*i+1)) + X(2*i+1)*CUT(3*i)",
                "XN(2*i) = X(2*i) + V(2*i)*DT(4*i) + CUT(2*i)*DT(4*i+1)",
                "V(2*i) = V(2*i) + F(2*i)*DT(4*i+2)",
            ],
        )
    )
    return p


def minixyce(scale: int = 1, seed: int = 0) -> Program:
    """Sparse circuit-network matrix-vector steps (MiniXyce).

    CSR-style row products with one indirect column gather per row
    (Table 1: 93.8% analyzable), plus the time-integration update.
    """
    p = Program("minixyce")
    nodes = 1408 * scale
    p.declare("Y", 2 * nodes + 16, bank_phase=10)
    p.declare("V", 8 * nodes, bank_phase=8)
    p.declare("B", 4 * nodes + 16, bank_phase=8)
    p.declare("R", 2 * nodes + 16, bank_phase=10)
    p.declare("DT", 2 * nodes + 16, bank_phase=8)
    p.declare("AV", 2 * nodes + 8, bank_phase=8)
    permutation_index(p, "CI", 8 * nodes, seed, "minixyce-ci")
    p.add_nest(
        nest(
            "matvec",
            [Loop("t", 0, 2), Loop("i", 0, nodes)],
            [
                "Y(2*i) = Y(2*i) + AV(2*i)*V(CI(2*i)) + AV(2*i+1)*V(8*i+1)",
                "V(8*i) = V(8*i) + Y(2*i)*DT(2*i)",
                "R(2*i) = B(4*i) - Y(2*i) + R(2*i+2)",
            ],
        )
    )
    return p
