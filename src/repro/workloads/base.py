"""Workload plumbing: spec records and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence


from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.utils.rng import derive_rng

WorkloadBuilder = Callable[[int, int], Program]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload and the paper-reported characteristics it mimics."""

    name: str
    builder: WorkloadBuilder
    suite: str                       # "splash2" or "mantevo"
    expected_analyzable: float       # Table 1 target (fraction)
    description: str = ""

    def build(self, scale: int = 1, seed: int = 0) -> Program:
        return self.builder(scale, seed)


def nest(
    name: str,
    loops: Sequence[Loop],
    statements: Sequence[str],
) -> LoopNest:
    """Parse a list of statement strings into a loop nest."""
    return LoopNest.of(list(loops), [parse_statement(s) for s in statements], name)


def permutation_index(
    program: Program, name: str, length: int, seed: int, tag: str
) -> None:
    """Declare ``name`` and fill it with a random permutation of 0..length-1.

    The standard index-array shape for gather/scatter kernels: every target
    element is hit exactly once, in an order the compiler cannot analyze.
    """
    program.declare(name, length)
    rng = derive_rng(seed, tag)
    program.set_index_data(name, rng.permutation(length).tolist())


def clustered_index(
    program: Program,
    name: str,
    length: int,
    target_length: int,
    cluster: int,
    seed: int,
    tag: str,
) -> None:
    """Declare ``name`` with clustered random indices into ``target_length``.

    Values come in runs of ``cluster`` nearby targets, the shape of
    neighbor lists (MiniMD) and interaction lists (Barnes/FMM): irregular
    globally, with short-range locality the L1 can sometimes catch.
    """
    program.declare(name, length)
    rng = derive_rng(seed, tag)
    values: List[int] = []
    while len(values) < length:
        base = int(rng.integers(0, max(target_length - cluster, 1)))
        run = [base + int(rng.integers(0, cluster)) for _ in range(cluster)]
        values.extend(run)
    program.set_index_data(name, values[:length])
