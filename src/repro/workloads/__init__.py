"""The 12-application workload suite (paper Section 6.1, Table 1).

Ten Splash-2 kernels (Barnes, Cholesky, FFT, FMM, LU, Ocean, Radiosity,
Radix, Raytrace, Water) and two Mantevo mini-apps (MiniMD, MiniXyce),
re-expressed as loop-nest programs in our IR.  Each synthetic kernel
reproduces the characteristics the paper reports for its namesake:

* statement length / operand spread — drives the degree of subcomputation
  parallelism (Fig 14) and the movement-reduction potential (Fig 13);
* fraction of compile-time-analyzable references (Table 1) — set by how
  many subscripts go through index arrays;
* operator mix (Table 3) — adds/multiplies/divides in the statement bodies;
* an outer timing loop — real runs iterate to convergence, so caches are
  warm in steady state and L2 miss rates sit in the paper's 16-37% band
  (fresh ``t``-dependent regions inject the cold misses).
"""

from repro.workloads.base import WorkloadBuilder, WorkloadSpec
from repro.workloads.suite import (
    ALL_WORKLOAD_NAMES,
    build_workload,
    workload_specs,
)

__all__ = [
    "WorkloadBuilder",
    "WorkloadSpec",
    "ALL_WORKLOAD_NAMES",
    "build_workload",
    "workload_specs",
]
