"""Seeded synthetic workloads classified by compute-vs-movement intensity.

Modeled on the DAMOV methodology (Oliveira et al.): instead of mimicking
one named application, generate families of loop nests whose *bottleneck
class* is controlled — how many arithmetic operations the kernel performs
per operand it moves, and how analyzable its subscripts are:

* ``"compute"``   — long arithmetic chains over few, affine operands; the
  kernel is bound by issue width, and moving it buys little.
* ``"balanced"``  — medium chains with clustered indirect gathers, the
  regime where partitioning decisions are genuinely contested.
* ``"movement"``  — short statements dominated by permutation-indexed
  gathers; data movement is the bottleneck and placement dominates.

Every generated program is a pure function of ``(name, scale, seed)`` via
:func:`repro.utils.rng.derive_rng` — byte-identical statements and index
data on every call — which is what lets the mesh sweep's crossover report
be regression-gated.  The generator deliberately does NOT register with
``repro.workloads.suite`` (the paper's 12-app registry drives the fig*/
table* experiments; perturbing it would change their reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.ir.loop import Loop
from repro.ir.program import Program
from repro.utils.rng import derive_rng
from repro.workloads.base import clustered_index, nest, permutation_index

#: The generator's bottleneck classes, in increasing movement intensity.
DAMOV_CLASSES: Tuple[str, ...] = ("compute", "balanced", "movement")

#: arithmetic-ops-per-access boundaries separating the classes
#: (:func:`classify_program` maps measured intensity back to a label).
_COMPUTE_MIN_INTENSITY = 1.5
_MOVEMENT_MAX_INTENSITY = 0.8


@dataclass(frozen=True)
class DamovWorkload:
    """One generated workload plus its declared and measured class."""

    name: str
    damov_class: str
    program: Program
    intensity: float  # arithmetic ops per operand access (static)


def arithmetic_intensity(program: Program) -> float:
    """Static arithmetic ops per *distinct* operand access across all nests.

    Repeated occurrences of the same reference within a statement stay in
    registers, so they count once — that is what lets a long chain over
    few operands read as compute-bound.  Intensity >= ~1.5 means the
    kernel re-uses operands across operations (compute-bound), <= ~0.8 it
    moves more data than it computes on (movement-bound).
    """
    ops = 0
    accesses = 0
    for loop_nest in program.nests:
        trip = loop_nest.trip_count
        for statement in loop_nest.body:
            ops += statement.operation_count() * trip
            distinct = {str(ref) for ref in statement.refs()}
            accesses += len(distinct) * trip
    return ops / accesses if accesses else 0.0


def classify_program(program: Program) -> str:
    """Map measured :func:`arithmetic_intensity` back to a class label."""
    intensity = arithmetic_intensity(program)
    if intensity >= _COMPUTE_MIN_INTENSITY:
        return "compute"
    if intensity <= _MOVEMENT_MAX_INTENSITY:
        return "movement"
    return "balanced"


def _compute_statements(arrays: List[str], terms: int) -> List[str]:
    """Power chains over few distinct operands (polynomial-style reuse)."""
    a, b, c = arrays[0], arrays[1], arrays[2]
    b_power = "*".join([f"{b}(2*i)"] * terms)
    c_power = "*".join([f"{c}(2*i)"] * terms)
    return [
        f"{a}(2*i) = {a}(2*i) + {b_power} + {c_power}",
        f"{b}(2*i) = {b}(2*i) + {a}(2*i)*{a}(2*i) + {c}(2*i)*{c}(2*i)",
    ]


def _balanced_statements(arrays: List[str], index: str) -> List[str]:
    a, b, c = arrays[0], arrays[1], arrays[2]
    return [
        f"{a}(2*i) = {a}(2*i) + {b}({index}(2*i))*{c}(2*i)*{c}(2*i)"
        f" + {b}({index}(2*i+1))*{c}(4*i)",
        f"{c}(2*i) = {c}(2*i) + {a}(2*i)*{a}(2*i)*{b}(4*i)",
    ]


def _movement_statements(arrays: List[str], index: str) -> List[str]:
    a, b, c = arrays[0], arrays[1], arrays[2]
    return [
        f"{a}(2*i) = {b}({index}(4*i)) + {b}({index}(4*i+1))",
        f"{c}(2*i) = {b}({index}(4*i+2)) + {a}(2*i)",
    ]


def damov_workload(
    damov_class: str, variant: int = 0, scale: int = 1, seed: int = 0
) -> DamovWorkload:
    """Generate one classified workload, deterministic in every argument.

    ``variant`` perturbs the randomized shape parameters (array sizes,
    bank phases, cluster widths) within the class so a sweep can hold the
    class fixed while varying the instance.
    """
    if damov_class not in DAMOV_CLASSES:
        raise WorkloadError(
            f"unknown DAMOV class {damov_class!r}; "
            f"known: {', '.join(DAMOV_CLASSES)}"
        )
    name = f"damov_{damov_class}{variant}"
    rng = derive_rng(seed, f"damov-{damov_class}-{variant}")
    p = Program(name)
    n = int(rng.integers(960, 1536)) * max(scale, 1)
    arrays = ["A", "B", "C"]
    for array in arrays:
        p.declare(
            array,
            2 * n + int(rng.integers(0, 32)),
            bank_phase=int(rng.integers(0, 12)),
        )
    loops = [Loop("t", 0, 2), Loop("i", 0, n)]
    if damov_class == "compute":
        terms = 4 + int(rng.integers(0, 3))
        statements = _compute_statements(arrays, terms)
    elif damov_class == "balanced":
        cluster = 4 + int(rng.integers(0, 5))
        clustered_index(
            p, "IX", 4 * n + 4, 2 * n, cluster, seed,
            f"damov-{damov_class}-{variant}-ix",
        )
        statements = _balanced_statements(arrays, "IX")
    else:
        permutation_index(
            p, "IX", 4 * n + 4, seed, f"damov-{damov_class}-{variant}-ix"
        )
        statements = _movement_statements(arrays, "IX")
    p.add_nest(nest("kernel", loops, statements))
    return DamovWorkload(
        name=name,
        damov_class=damov_class,
        program=p,
        intensity=arithmetic_intensity(p),
    )


def damov_suite(
    count: int = 6, scale: int = 1, seed: int = 0
) -> List[DamovWorkload]:
    """``count`` workloads cycling through the classes (deterministic).

    The cycle order follows :data:`DAMOV_CLASSES`, so any ``count >= 3``
    covers every bottleneck class at least once.
    """
    if count < 1:
        raise WorkloadError(f"damov_suite needs count >= 1, got {count}")
    suite = []
    for index in range(count):
        damov_class = DAMOV_CLASSES[index % len(DAMOV_CLASSES)]
        variant = index // len(DAMOV_CLASSES)
        suite.append(damov_workload(damov_class, variant, scale, seed))
    return suite


def suite_by_class(
    count: int = 6, scale: int = 1, seed: int = 0
) -> Dict[str, List[DamovWorkload]]:
    """The same suite grouped by declared class."""
    grouped: Dict[str, List[DamovWorkload]] = {c: [] for c in DAMOV_CLASSES}
    for workload in damov_suite(count, scale, seed):
        grouped[workload.damov_class].append(workload)
    return grouped
