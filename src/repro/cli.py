"""Command-line entry point: ``python -m repro.cli``.

Subcommands:

* ``compare APP``   — default vs NDP-partitioned run of one workload.
* ``report APP``    — run one workload and write a machine-readable
  ``report.json`` (plan per nest, deltas vs default, NoC link heatmap,
  per-phase timings; schema in :mod:`repro.obs.schema`).
* ``codegen APP``   — show the generated per-node code for a few windows.
* ``experiments``   — run the full table/figure suite (see
  :mod:`repro.experiments.runner` for flags).
* ``faults``        — fault-injection demo: generate a seeded random
  :class:`~repro.faults.FaultPlan`, run an app on the degraded machine,
  and print the plan, the degradation overheads, and the detour heatmap.
* ``serve``         — run the compile-as-a-service daemon
  (:mod:`repro.serve.daemon`): content-addressed artifact cache,
  persistent worker pool, bounded queue with 429 backpressure, graceful
  SIGTERM drain.
* ``client``        — talk to a running daemon
  (:mod:`repro.serve.client`): send a compile request, print stats or
  health, or ask it to drain.
* ``list``          — list the available workloads.

``compare``, ``report``, and ``experiments`` accept ``--trace FILE`` to
stream structured JSONL trace events (compile spans, gate verdicts,
window-search candidates, simulator epochs) to ``FILE``; see
:mod:`repro.obs.tracer`.  Tracing never changes any printed number.

``compare`` and ``report`` accept ``--predictor {trace,analytic}`` to
choose the L2 miss predictor the compile pipeline uses: ``trace`` (the
default) trains the two-bit region predictor on a simulated trace;
``analytic`` swaps in the closed-form locality model of
:mod:`repro.core.locality` (DESIGN.md section 12).  The default path is
bit-identical with the flag absent.

``compare`` and ``report`` accept ``--backend {sim,runtime}`` to choose
the execution backend (:mod:`repro.exec`): ``sim`` (the default) is the
event simulator, bit-identical with the flag absent; ``runtime``
additionally executes the optimized schedule on the Parla-style
concurrent task runtime (``--backend-workers N``, or ``--backend-seed S``
with one worker for a reproducible schedule) and reports the
runtime-observed data movement against the simulator's forecast.

``compare`` and ``report`` accept ``--faults PLAN.json`` to run on a
degraded machine (dead links / offline tiles / slow MCDRAM channels);
see :mod:`repro.faults`.  Library errors (unknown workload, invalid
fault plan, ...) print one clear message to stderr and exit 2 instead
of tracebacking.

``compare``, ``report``, ``faults``, and ``experiments`` accept
``--check`` (equivalently ``REPRO_CHECK=1``) to enable the runtime
invariant hooks of :mod:`repro.check`: every optimized path is audited
against its brute-force reference as the run executes, and a violation
exits 2 with the concrete counterexample.  Checking composes freely
with ``--faults`` and ``--trace`` and never changes a printed number.
Conflicting flag combinations (e.g. ``--trace-debug`` without
``--trace``, or ``faults --plan`` with generation knobs) exit 2 with a
clear message instead of silently dropping one of the flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.core.codegen import generate_code
from repro.errors import ReproError
from repro.experiments.common import compare_app
from repro.faults import FaultPlan
from repro.workloads import ALL_WORKLOAD_NAMES, workload_specs


def _cmd_list(_args) -> int:
    for spec in workload_specs():
        print(f"{spec.name:<10} [{spec.suite}] {spec.description}")
    return 0


def _traced(args, fn) -> int:
    """Run ``fn()`` under ``--trace FILE`` when given, else directly."""
    trace = getattr(args, "trace", None)
    if not trace:
        return fn()
    from repro.obs.tracer import tracing

    with tracing(trace, debug=getattr(args, "trace_debug", False)):
        return fn()


def _fault_plan_of(args):
    """The FaultPlan of ``--faults FILE`` (None when absent/empty)."""
    path = getattr(args, "faults", "")
    if not path:
        return None
    plan = FaultPlan.load(path)
    return None if plan.is_empty else plan


def _flag_conflict(args) -> str:
    """A human-readable flag-composition conflict, or '' when flags compose.

    The flag audit: --check/--faults/--trace compose freely on every
    subcommand that takes them; combinations that would silently drop one
    flag are rejected here so the run exits 2 with a clear message
    instead of quietly doing less than asked.
    """
    if getattr(args, "trace_debug", False) and not getattr(args, "trace", ""):
        return (
            "--trace-debug requires --trace FILE (there is no trace "
            "stream to put the debug events on)"
        )
    if getattr(args, "backend", "sim") == "runtime" and getattr(
        args, "faults", ""
    ):
        return (
            "--backend runtime cannot run on a degraded machine: the task "
            "runtime has no fault-relocation path, so the fault plan would "
            "be silently ignored — drop --faults or use --backend sim"
        )
    if getattr(args, "backend", "sim") == "sim":
        ignored = [
            name
            for name, value in (
                ("--backend-workers", getattr(args, "backend_workers", None)),
                ("--backend-seed", getattr(args, "backend_seed", None)),
            )
            if value is not None
        ]
        if ignored:
            return (
                f"{', '.join(ignored)}: runtime-backend option(s) would be "
                "silently ignored under the sim backend — drop them or add "
                "--backend runtime"
            )
    if (
        getattr(args, "backend_seed", None) is not None
        and (getattr(args, "backend_workers", None) or 1) != 1
    ):
        return (
            "--backend-seed promises a reproducible schedule, which needs "
            "--backend-workers 1 (the OS scheduler is not seedable)"
        )
    if getattr(args, "command", "") == "faults" and args.plan:
        knobs = [
            name
            for name, value in (
                ("--seed", args.seed),
                ("--links", args.links),
                ("--nodes", args.nodes),
            )
            if value is not None
        ]
        if knobs:
            return (
                f"faults --plan supplies a ready-made plan; the generation "
                f"knob(s) {', '.join(knobs)} would be silently ignored — "
                "drop them or drop --plan"
            )
    return ""


def _cmd_compare(args) -> int:
    return _traced(args, lambda: _run_compare(args))


def _run_compare(args) -> int:
    from repro.utils.barchart import percent_chart

    plan = _fault_plan_of(args)
    comparison = compare_app(
        args.app, scale=args.scale, seed=args.seed, faults=plan,
        predictor=args.predictor,
    )
    d, o = comparison.default_metrics, comparison.optimized_metrics
    print(f"app: {args.app}")
    if args.predictor != "trace":
        print(f"predictor: {args.predictor}")
    if plan is not None:
        print(
            f"faults   : {plan.fingerprint()}  "
            f"dead_nodes={sorted(plan.all_dead_nodes())} "
            f"dead_links={sorted((f.src, f.dst) for f in plan.links)} "
            f"degraded_channels={sorted(plan.channel_factors())}"
        )
    print(f"default  : {d.summary()}")
    print(f"optimized: {o.summary()}")
    print()
    print(
        percent_chart(
            {
                "movement reduction": comparison.movement_reduction(),
                "time reduction": comparison.time_reduction(),
                "L1 improvement": comparison.l1_improvement(),
                "energy reduction": comparison.energy_reduction(),
            }
        )
    )
    print(f"\nwindow sizes  : {comparison.partition.window_sizes}")
    print(f"plan variants : {comparison.partition.variant_by_nest}")
    if args.backend == "runtime":
        _print_runtime_execution(args, o)
    return 0


def _print_runtime_execution(args, optimized_metrics) -> int:
    """Execute the optimized schedule on the task runtime and report it."""
    from repro.exec.backend import get_backend
    from repro.exec.runtime import movement_agreement
    from repro.experiments.common import run_optimized

    partition, _, machine = run_optimized(
        args.app, scale=args.scale, seed=args.seed, predictor=args.predictor
    )
    backend = get_backend("runtime", **_backend_options(args))
    machine.mcdram.reset()
    result = backend.run(machine, partition.units())
    agreement = movement_agreement(
        result.data_movement, optimized_metrics.data_movement
    )
    print(
        f"\nruntime  : workers={result.workers} seed={result.seed} "
        f"tasks={result.tasks_executed} "
        f"observed={result.data_movement} "
        f"forecast={optimized_metrics.data_movement} "
        f"agreement={agreement:.4f} syncs={result.sync_count} "
        f"violations={len(result.sync_violations)}"
    )
    return 0


def _backend_options(args) -> dict:
    """The get_backend kwargs of the ``--backend-*`` flags (set only)."""
    options = {}
    if getattr(args, "backend_workers", None) is not None:
        options["workers"] = args.backend_workers
    if getattr(args, "backend_seed", None) is not None:
        options["seed"] = args.backend_seed
    return options


def _list_passes() -> int:
    """Print the registered pass pipeline (``report --list-passes``)."""
    from repro.pipeline import DEFAULT_PASS_ORDER, PASS_REGISTRY

    print(f"{'pass':<14} {'paper':<10} {'module':<22} notes")
    print(f"{'-' * 14} {'-' * 10} {'-' * 22} {'-' * 5}")
    ordered = list(DEFAULT_PASS_ORDER) + [
        name for name in PASS_REGISTRY if name not in DEFAULT_PASS_ORDER
    ]
    for name in ordered:
        info = PASS_REGISTRY[name].info
        notes = []
        if info.inline:
            notes.append("inline")
        if not info.default:
            notes.append("not in default order")
        print(
            f"{info.name:<14} {info.paper_section:<10} "
            f"{info.module:<22} {', '.join(notes)}".rstrip()
        )
    print(f"\ndefault order: {' -> '.join(DEFAULT_PASS_ORDER)}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import (
        build_report,
        heatmap_of,
        summary_lines,
        write_report,
    )

    if args.list_passes:
        return _list_passes()
    if not args.app:
        print(
            "error: report needs an APP argument (or --list-passes)",
            file=sys.stderr,
        )
        return 2
    from repro.pipeline.passes import predictor_pass_order

    report = build_report(
        args.app,
        scale=args.scale,
        seed=args.seed,
        trace_file=args.trace or None,
        debug_trace=args.trace_debug,
        faults=_fault_plan_of(args),
        skip_passes=tuple(args.skip_pass),
        pass_order=predictor_pass_order(args.predictor),
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    write_report(report, args.out)
    print("\n".join(summary_lines(report)))
    if not args.no_heatmap:
        print("\nNoC link heatmap (flits per link, both directions summed):")
        print(heatmap_of(report).ascii_grid())
    print(f"\nwrote {args.out}")
    if args.trace:
        print(f"trace: {args.trace}")
    return 0


def _cmd_codegen(args) -> int:
    comparison = compare_app(args.app, scale=args.scale, seed=args.seed)
    schedules = []
    for nest_schedule in comparison.partition.nest_schedules.values():
        for statement_schedule in nest_schedule.statement_schedules():
            schedules.append(statement_schedule)
            if len(schedules) >= args.statements:
                break
        break
    print(generate_code(schedules).listing())
    return 0


def _cmd_faults(args) -> int:
    """Fault-injection demo: seeded plan -> degraded run -> degradation report."""
    from repro.faults import random_plan
    from repro.obs.report import (
        build_report,
        heatmap_of,
        summary_lines,
        write_report,
    )

    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        if args.app == "tiny":
            from repro.arch.knl import small_machine

            machine = small_machine()
        else:
            from repro.experiments.common import paper_machine

            machine = paper_machine()
        plan = random_plan(
            machine.mesh.cols,
            machine.mesh.rows,
            seed=args.seed if args.seed is not None else 0,
            link_count=args.links if args.links is not None else 2,
            node_count=args.nodes if args.nodes is not None else 1,
            protected_nodes=set(machine.mc_nodes) | set(machine.edc_nodes),
        )
    print("fault plan:")
    print(plan.dumps())
    if args.plan_out:
        plan.dump(args.plan_out)
        print(f"wrote plan to {args.plan_out}")

    report = build_report(args.app, scale=args.scale, faults=plan)
    print()
    print("\n".join(summary_lines(report)))
    if args.out:
        write_report(report, args.out)
        print(f"\nwrote {args.out}")
    print("\nNoC link heatmap (degraded run; detours route around dead links):")
    print(heatmap_of(report).ascii_grid())
    return 0


def _cmd_serve(args) -> int:
    """Run the compile service daemon (flags parsed by repro.serve.daemon)."""
    from repro.serve.daemon import main as serve_main

    return serve_main(args.serve_args)


def _cmd_client(args) -> int:
    """Talk to a running daemon (flags parsed by repro.serve.client)."""
    from repro.serve.client import main as client_main

    return client_main(args.client_args)


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.apps:
        forwarded.extend(["--apps", args.apps])
    forwarded.extend(["--scale", str(args.scale), "--seed", str(args.seed)])
    if args.trace:
        forwarded.extend(["--trace", args.trace])
    if args.check:
        forwarded.append("--check")
    return runner_main(forwarded)


def main(argv: List[str] = None) -> int:
    """Parse ``argv`` (default: ``sys.argv[1:]``) and dispatch a subcommand."""
    if argv is None:
        argv = sys.argv[1:]
    # ``serve`` and ``client`` own their whole flag surface (argparse's
    # REMAINDER cannot forward leading optionals), so dispatch them
    # before the main parser sees their flags.
    if argv and argv[0] in ("serve", "client"):
        try:
            if argv[0] == "serve":
                from repro.serve.daemon import main as serve_main

                return serve_main(argv[1:])
            from repro.serve.client import main as client_main

            return client_main(argv[1:])
        except (ReproError, FileNotFoundError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(func=_cmd_list)

    def add_trace_flags(p) -> None:
        p.add_argument(
            "--trace",
            default="",
            metavar="FILE",
            help="write structured JSONL trace events to FILE",
        )
        p.add_argument(
            "--trace-debug",
            action="store_true",
            help="also emit per-instance firehose events (large traces)",
        )

    def add_faults_flag(p) -> None:
        p.add_argument(
            "--faults",
            default="",
            metavar="PLAN.json",
            help="apply this fault plan (see repro.faults) before placement",
        )

    def add_check_flag(p) -> None:
        p.add_argument(
            "--check",
            action="store_true",
            help="enable runtime invariant checking (repro.check); "
            "equivalent to REPRO_CHECK=1",
        )

    def add_predictor_flag(p) -> None:
        p.add_argument(
            "--predictor",
            choices=["trace", "analytic"],
            default="trace",
            help="L2 miss predictor: 'trace' (default, trace-trained) or "
            "'analytic' (closed-form locality model, DESIGN.md sec. 12)",
        )

    def add_backend_flags(p) -> None:
        p.add_argument(
            "--backend",
            choices=["sim", "runtime"],
            default="sim",
            help="execution backend: 'sim' (default, the event simulator) "
            "or 'runtime' (Parla-style concurrent task runtime, "
            "DESIGN.md sec. 15)",
        )
        p.add_argument(
            "--backend-workers",
            type=int,
            default=None,
            metavar="N",
            help="task-runtime worker threads (runtime backend only; "
            "default 4)",
        )
        p.add_argument(
            "--backend-seed",
            type=int,
            default=None,
            metavar="SEED",
            help="seeded deterministic scheduling (runtime backend only; "
            "requires --backend-workers 1)",
        )

    compare = sub.add_parser("compare", help="default vs optimized for one app")
    compare.add_argument("app", choices=ALL_WORKLOAD_NAMES)
    compare.add_argument("--scale", type=int, default=1)
    compare.add_argument("--seed", type=int, default=0)
    add_trace_flags(compare)
    add_faults_flag(compare)
    add_check_flag(compare)
    add_predictor_flag(compare)
    add_backend_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    report = sub.add_parser(
        "report", help="write a machine-readable report.json for one app"
    )
    report.add_argument(
        "app",
        nargs="?",
        default="",
        choices=list(ALL_WORKLOAD_NAMES) + ["tiny", ""],
        help="workload name, or 'tiny' for the built-in sub-second app",
    )
    report.add_argument("--scale", type=int, default=1)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", default="report.json", metavar="FILE")
    report.add_argument(
        "--no-heatmap", action="store_true", help="skip the ASCII heatmap"
    )
    report.add_argument(
        "--skip-pass",
        action="append",
        default=[],
        metavar="NAME",
        help="skip a registered compiler pass (repeatable; see --list-passes)",
    )
    report.add_argument(
        "--list-passes",
        action="store_true",
        help="list the registered pass pipeline and exit",
    )
    add_trace_flags(report)
    add_faults_flag(report)
    add_check_flag(report)
    add_predictor_flag(report)
    add_backend_flags(report)
    report.set_defaults(func=_cmd_report)

    faults = sub.add_parser(
        "faults",
        help="fault-injection demo: degraded run + detour heatmap",
    )
    faults.add_argument(
        "app",
        nargs="?",
        default="tiny",
        choices=list(ALL_WORKLOAD_NAMES) + ["tiny"],
        help="workload to degrade (default: the sub-second 'tiny' app)",
    )
    # Generation knobs default to None so an explicit use can be detected:
    # they conflict with --plan (which supplies the plan ready-made).
    faults.add_argument(
        "--seed", type=int, default=None, help="fault-plan generation seed"
    )
    faults.add_argument(
        "--links", type=int, default=None, help="mesh links to kill (default 2)"
    )
    faults.add_argument(
        "--nodes", type=int, default=None, help="tiles to take offline (default 1)"
    )
    faults.add_argument(
        "--scale", type=int, default=1, help="workload scale (real apps)"
    )
    faults.add_argument(
        "--plan",
        default="",
        metavar="PLAN.json",
        help="use this plan instead of generating a random one",
    )
    faults.add_argument(
        "--plan-out",
        default="",
        metavar="FILE",
        help="also write the generated plan to FILE",
    )
    faults.add_argument(
        "--out", default="", metavar="FILE", help="also write report.json"
    )
    add_check_flag(faults)
    faults.set_defaults(func=_cmd_faults)

    codegen = sub.add_parser("codegen", help="show generated per-node code")
    codegen.add_argument("app", choices=ALL_WORKLOAD_NAMES)
    codegen.add_argument("--statements", type=int, default=6)
    codegen.add_argument("--scale", type=int, default=1)
    codegen.add_argument("--seed", type=int, default=0)
    codegen.set_defaults(func=_cmd_codegen)

    serve = sub.add_parser(
        "serve",
        help="run the compile-as-a-service daemon (repro.serve)",
    )
    serve.add_argument(
        "serve_args",
        nargs=argparse.REMAINDER,
        help="daemon flags (see `repro serve -- --help`): --port, "
        "--workers, --queue-depth, --cache-dir, --trace, ...",
    )
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="send requests to a running serve daemon",
    )
    client.add_argument(
        "client_args",
        nargs=argparse.REMAINDER,
        help="client arguments (see `repro client -- --help`): "
        "URL compile|stats|health|shutdown [flags]",
    )
    client.set_defaults(func=_cmd_client)

    experiments = sub.add_parser("experiments", help="run the table/figure suite")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--apps", default="")
    experiments.add_argument("--scale", type=int, default=1)
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write structured JSONL trace events to FILE",
    )
    add_check_flag(experiments)
    experiments.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    conflict = _flag_conflict(args)
    if conflict:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    try:
        if getattr(args, "check", False):
            from repro import check

            # Scoped (not enable()) so repeated main() calls in one
            # process — the test suite — never leak check mode.
            with check.checking():
                return args.func(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
