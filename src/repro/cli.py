"""Command-line entry point: ``python -m repro.cli``.

Subcommands:

* ``compare APP``   — default vs NDP-partitioned run of one workload.
* ``codegen APP``   — show the generated per-node code for a few windows.
* ``experiments``   — run the full table/figure suite (see
  :mod:`repro.experiments.runner` for flags).
* ``list``          — list the available workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.core.codegen import generate_code
from repro.experiments.common import compare_app
from repro.workloads import ALL_WORKLOAD_NAMES, workload_specs


def _cmd_list(_args) -> int:
    for spec in workload_specs():
        print(f"{spec.name:<10} [{spec.suite}] {spec.description}")
    return 0


def _cmd_compare(args) -> int:
    from repro.utils.barchart import percent_chart

    comparison = compare_app(args.app, scale=args.scale, seed=args.seed)
    d, o = comparison.default_metrics, comparison.optimized_metrics
    print(f"app: {args.app}")
    print(f"default  : {d.summary()}")
    print(f"optimized: {o.summary()}")
    print()
    print(
        percent_chart(
            {
                "movement reduction": comparison.movement_reduction(),
                "time reduction": comparison.time_reduction(),
                "L1 improvement": comparison.l1_improvement(),
                "energy reduction": comparison.energy_reduction(),
            }
        )
    )
    print(f"\nwindow sizes  : {comparison.partition.window_sizes}")
    print(f"plan variants : {comparison.partition.variant_by_nest}")
    return 0


def _cmd_codegen(args) -> int:
    comparison = compare_app(args.app, scale=args.scale, seed=args.seed)
    schedules = []
    for nest_schedule in comparison.partition.nest_schedules.values():
        for statement_schedule in nest_schedule.statement_schedules():
            schedules.append(statement_schedule)
            if len(schedules) >= args.statements:
                break
        break
    print(generate_code(schedules).listing())
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.apps:
        forwarded.extend(["--apps", args.apps])
    forwarded.extend(["--scale", str(args.scale), "--seed", str(args.seed)])
    return runner_main(forwarded)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(func=_cmd_list)

    compare = sub.add_parser("compare", help="default vs optimized for one app")
    compare.add_argument("app", choices=ALL_WORKLOAD_NAMES)
    compare.add_argument("--scale", type=int, default=1)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    codegen = sub.add_parser("codegen", help="show generated per-node code")
    codegen.add_argument("app", choices=ALL_WORKLOAD_NAMES)
    codegen.add_argument("--statements", type=int, default=6)
    codegen.add_argument("--scale", type=int, default=1)
    codegen.add_argument("--seed", type=int, default=0)
    codegen.set_defaults(func=_cmd_codegen)

    experiments = sub.add_parser("experiments", help="run the table/figure suite")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--apps", default="")
    experiments.add_argument("--scale", type=int, default=1)
    experiments.add_argument("--seed", type=int, default=0)
    experiments.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
