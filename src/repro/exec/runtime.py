"""The Parla-style concurrent execution backend (DESIGN.md section 15).

:class:`RuntimeBackend` executes a schedule of
:class:`~repro.core.subcomputation.Subcomputation` units as a real task
graph on host threads: each unit becomes a task in a
:class:`~repro.exec.taskspace.TaskSpace`, its ``sub_results`` producers
become task dependencies (the cross-node subset is exactly what the
generated listing renders as ``sync(...)`` waits), and the simulator's
memory-order arcs (flow/anti/output, :meth:`Simulator._memory_arcs`) are
added so runtime execution respects the same ordering the simulator
enforces.

Placement is *logical-device* based, following Parla: the mesh's four
quadrants are the device classes, and every task is spawned with
``placement=device_of(its mesh node)``.  Data movement is observed, not
modeled: a :class:`DataStore` tracks where blocks live while tasks run —
bounded per-node replica sets with the machine's own L1/L2 cache
geometry, homed at the SNUCA bank — and every remote fill or cross-node
result message is charged as XY-route flit-hops through a
:class:`~repro.noc.traffic.TrafficMatrix` — the same per-link accounting
the simulator uses, so the two backends' movement totals are directly
comparable (see :data:`MOVEMENT_AGREEMENT_TOLERANCE`).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.core.codegen import TaskSpec, task_specs
from repro.core.subcomputation import Subcomputation
from repro.exec.backend import Backend, ExecutionResult
from repro.exec.taskspace import TaskRuntime, TaskSpace, spawn
from repro.ir.statement import Access
from repro.noc.traffic import TrafficMatrix
from repro.sim.engine import SimConfig, Simulator

#: Documented relative tolerance for the movement-agreement check:
#: ``|runtime_observed - sim_forecast| <= tolerance * sim_forecast``.
#: A single unseeded worker replays the simulator's dispatch order
#: (ready tasks popped by ``(seq, uid)``), so its observed movement is
#: *exactly* the forecast — measured 0.0 disagreement on all five paper
#: workloads (minimd, ocean, fft, lu, radix).  With ``workers > 1`` the
#: OS interleaving perturbs the replica caches' fill order; measured
#: disagreement at 4 workers stays under 0.7% on the same workloads, so
#: 0.05 absorbs scheduling jitter with margin while still failing loudly
#: on any accounting bug (dropping the MC leg or the result messages
#: shifts totals by 10%+).  Seeded-random dispatch is *excluded* from
#: this contract: its whole point is to scramble the execution order,
#: which legitimately changes what the bounded replica caches observe.
MOVEMENT_AGREEMENT_TOLERANCE = 0.05


class LogicalDevice:
    """One placement device class: a quadrant's worth of mesh nodes."""

    def __init__(self, index: int, nodes: Tuple[int, ...]):
        self.index = index
        self.nodes = nodes

    @property
    def name(self) -> str:
        return f"quad{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogicalDevice {self.name} nodes={len(self.nodes)}>"


class DeviceMap:
    """Mesh nodes -> logical device classes (one device per quadrant).

    Mirrors how the machine's QUADRANT cluster mode carves the chip; on
    degenerate meshes some quadrants may be empty, which is fine — only
    devices that own nodes ever receive a placement.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.devices: Tuple[LogicalDevice, ...] = tuple(
            LogicalDevice(q, tuple(machine.mesh.nodes_in_quadrant(q)))
            for q in range(4)
        )

    def device_of(self, node: int) -> LogicalDevice:
        """The logical device class that owns mesh node ``node``."""
        return self.devices[self.machine.mesh.quadrant_of(node)]


class DataStore:
    """Where data lives while tasks execute: bounded replica residency.

    The runtime's observation substrate.  Each node's replica set is a
    real :class:`~repro.cache.hierarchy.CacheSystem` with the machine's
    own L1/L2 geometry (bounded LRU lines, SNUCA home banks), so the
    movement a task causes is what the machine would cause, not what an
    unbounded directory would:

    * a local replica hit moves nothing;
    * a home-bank hit charges XY hops home -> node;
    * a cold or evicted block charges the memory-controller leg too
      (MC -> home -> node), Figure 1's steps 2..5;
    * a store write-allocates at the executing node through the same
      path, mirroring the simulator's treatment of ``unit.store``.

    All charging happens under one lock: task bodies on many worker
    threads share the caches and the traffic matrix, and neither is
    thread-safe on its own.
    """

    def __init__(self, machine: Machine, traffic: TrafficMatrix):
        self.machine = machine
        self.traffic = traffic
        self.caches = CacheSystem(
            machine.node_count,
            machine.l1_config,
            machine.l2_config,
            machine.bank_to_node,
        )
        self._lock = threading.Lock()
        self.inter_device_messages = 0
        self.replica_hits = 0
        self.home_fills = 0
        self.memory_fills = 0
        self._quad = machine.mesh.quadrant_of

    def _charge(self, src: int, dst: int) -> int:
        """Record one block message ``src -> dst`` (0 hops if local)."""
        if src == dst:
            return 0
        if self._quad(src) != self._quad(dst):
            self.inter_device_messages += 1
        return self.traffic.record(src, dst)

    def access(self, access: Access, node: int) -> int:
        """Touch ``access`` at ``node``; returns the flit-hops charged.

        Reads and stores take the same path (write-allocate), exactly as
        the simulator drives its cache system.
        """
        machine = self.machine
        layout = machine.layout
        block = layout.block_of(access.array, access.index)
        bank = layout.l2_bank_of(access.array, access.index)
        with self._lock:
            if self.caches.l1s[node].access(block):
                self.replica_hits += 1
                return 0
            home = machine.home_node(access.array, access.index)
            if self.caches.l2_banks[bank].access(block):
                self.home_fills += 1
                return self._charge(home, node)
            self.memory_fills += 1
            mc = machine.mc_node(access.array, access.index, requester=node)
            return self._charge(mc, home) + self._charge(home, node)

    def result_message(self, producer_node: int, consumer_node: int) -> int:
        """Charge a cross-node subresult message; returns flit-hops."""
        with self._lock:
            return self._charge(producer_node, consumer_node)


class RuntimeBackend(Backend):
    """Concurrent host-thread execution of a subcomputation schedule.

    ``workers=1, seed=<n>`` is the reproducible mode: one worker, seeded
    ready-queue tie-breaking, so the completion order (and therefore the
    residency-protocol charge sequence) is identical across runs.  With
    ``workers > 1`` the interleaving is real OS-thread concurrency; the
    total movement may then vary slightly run to run (a different
    replica set can serve a read), which is exactly the runtime truth
    the agreement tolerance has to absorb.
    """

    name = "runtime"

    def __init__(self, workers: int = 4, seed: Optional[int] = None):
        # Validate eagerly with TaskRuntime's own rules.
        TaskRuntime(workers=workers, seed=seed)
        self.workers = workers
        self.seed = seed

    def run(
        self,
        machine: Machine,
        units: Sequence[Subcomputation],
        sim_config: Optional[SimConfig] = None,
    ) -> ExecutionResult:
        """Execute ``units`` concurrently; returns observed accounting."""
        specs = task_specs(units)
        node_of: Dict[int, int] = {spec.uid: spec.node for spec in specs}
        traffic = TrafficMatrix(machine.mesh, router=machine.router)
        store = DataStore(machine, traffic)
        space = TaskSpace("U")
        devices = DeviceMap(machine)

        sync_total = [0]
        sync_lock = threading.Lock()

        # Ordering arcs beyond dataflow: the simulator's memory-order
        # arcs (flow/anti/output from a last-writer scan), kept as a
        # per-consumer *list* because each cross-node arc is one
        # synchronization — the same edge-level count the simulator
        # reports.  Arcs to uids outside this unit set (possible on
        # partial schedules) are dropped.
        order_deps: Dict[int, List[int]] = {}
        for producer, consumer, _is_flow in Simulator._memory_arcs(units):
            if producer in node_of and consumer in node_of:
                order_deps.setdefault(consumer, []).append(producer)

        def make_body(spec: TaskSpec):
            def body() -> int:
                moved = 0
                syncs = 0
                # Child results: a cross-node producer's result arrives
                # as a message (movement) behind a point-to-point sync.
                for producer_uid in spec.deps:
                    producer_node = node_of.get(producer_uid, spec.node)
                    if producer_node != spec.node:
                        moved += store.result_message(producer_node, spec.node)
                        syncs += 1
                # Memory-order predecessors: cross-node ones are a sync
                # wait only — their data (if any) flows through the
                # residency protocol when this task reads.
                for producer_uid in order_deps.get(spec.uid, ()):
                    if node_of[producer_uid] != spec.node:
                        syncs += 1
                for access in spec.reads:
                    moved += store.access(access, spec.node)
                if spec.store is not None:
                    moved += store.access(spec.store, spec.node)
                if syncs:
                    with sync_lock:
                        sync_total[0] += syncs
                return moved

            return body

        for spec in specs:
            deps = set(spec.deps) | set(order_deps.get(spec.uid, ()))
            deps.discard(spec.uid)
            handles = [space[d] for d in sorted(deps) if d in node_of]
            spawn(
                space[spec.uid],
                dependencies=handles,
                placement=devices.device_of(spec.node),
                # Dispatch ready tasks in (seq, uid) order — the same
                # tie-break the simulator's ready heap uses, so the
                # unseeded single-worker run replays its access order.
                priority=(spec.seq, spec.uid),
            )(make_body(spec))

        runtime = TaskRuntime(workers=self.workers, seed=self.seed)
        started = time.perf_counter()
        runtime.run(space)
        wall = time.perf_counter() - started

        return ExecutionResult(
            backend=self.name,
            data_movement=traffic.total_flit_hops,
            link_flits={
                (link.src, link.dst): link.flits for link in traffic.links()
            },
            sync_count=sync_total[0],
            unit_count=len(specs),
            workers=self.workers,
            seed=self.seed,
            tasks_executed=len(runtime.completion_order),
            sync_violations=list(runtime.violations),
            wall_seconds=wall,
            completion_order=_uids_from_order(runtime.completion_order),
        )


def _uids_from_order(order: Sequence[str]) -> List[int]:
    """Recover unit uids from the runtime's qualified task names.

    Names look like ``U[42]`` (see :class:`TaskHandle.name`); the uid is
    the bracketed repr of the integer key.
    """
    uids: List[int] = []
    for name in order:
        open_idx = name.index("[")
        uids.append(int(name[open_idx + 1 : -1]))
    return uids


def movement_agreement(observed: int, forecast: int) -> float:
    """Relative disagreement between runtime-observed and sim movement.

    ``0.0`` is perfect agreement; compare against
    :data:`MOVEMENT_AGREEMENT_TOLERANCE`.  When the forecast is zero the
    runtime must also observe zero (any observed flit-hop is infinite
    disagreement, represented as ``float('inf')``).
    """
    if forecast == 0:
        return 0.0 if observed == 0 else float("inf")
    return abs(observed - forecast) / forecast
