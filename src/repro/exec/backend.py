"""The execution :class:`Backend` protocol and the simulator backend.

The compile pipeline produces schedules of
:class:`~repro.core.subcomputation.Subcomputation` units; a *backend* is
anything that can execute such a schedule on a machine and account for
the data movement it caused.  Two implementations ship:

* :class:`SimBackend` — wraps the event simulator
  (:class:`repro.sim.engine.Simulator`) unchanged.  The default; its
  numbers are bit-identical to calling ``Simulator.run`` directly.
* :class:`~repro.exec.runtime.RuntimeBackend` — a Parla-style task
  runtime that executes the units concurrently on host threads
  (DESIGN.md section 15).

Both report through :class:`ExecutionResult`: the same
``data_movement`` / per-link ``link_flits`` accounting as
:class:`~repro.sim.metrics.SimMetrics`, so a runtime execution can be
cross-checked against the simulator's forecast link by link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.machine import Machine
from repro.core.subcomputation import Subcomputation
from repro.errors import ConfigurationError
from repro.sim.engine import SimConfig, Simulator
from repro.sim.metrics import SimMetrics

#: Backend names accepted by ``--backend`` everywhere (CLI, serve).
BACKEND_NAMES = ("sim", "runtime")


@dataclass
class ExecutionResult:
    """What one backend execution produced, in common accounting terms.

    ``data_movement`` and ``link_flits`` follow the paper's metric: one
    unit per flit per link traversed, with the per-link map summing
    exactly to the total (the :class:`~repro.noc.network.LinkStats`
    invariant).  ``metrics`` carries the full :class:`SimMetrics` when
    the backend was the simulator; the runtime backend fills the
    scheduler-observability fields instead.
    """

    backend: str
    data_movement: int = 0
    link_flits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    sync_count: int = 0
    unit_count: int = 0
    #: Full simulator metrics (sim backend only).
    metrics: Optional[SimMetrics] = None
    #: Runtime-backend scheduler facts.
    workers: int = 0
    seed: Optional[int] = None
    tasks_executed: int = 0
    sync_violations: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Unit uids in observed completion order (runtime backend only) —
    #: the sync-order audit trail the property tests replay.
    completion_order: List[int] = field(default_factory=list)

    def to_json(self) -> Dict:
        """The report's ``execution`` section for this result."""
        payload: Dict = {"backend": self.backend}
        if self.backend == "sim":
            return payload
        payload.update(
            {
                "workers": self.workers,
                "seed": self.seed,
                "tasks_executed": self.tasks_executed,
                "observed_movement": self.data_movement,
                "sync_count": self.sync_count,
                "sync_violations": len(self.sync_violations),
                "wall_seconds": round(self.wall_seconds, 6),
            }
        )
        return payload


class Backend:
    """Protocol of an execution backend: a name plus :meth:`run`."""

    name: str

    def run(
        self,
        machine: Machine,
        units: Sequence[Subcomputation],
        sim_config: Optional[SimConfig] = None,
    ) -> ExecutionResult:
        """Execute ``units`` on ``machine``; returns the accounting."""
        raise NotImplementedError


class SimBackend(Backend):
    """The event simulator behind the :class:`Backend` protocol.

    A thin adapter: :meth:`run` is ``Simulator(machine, config).run``
    with the metrics re-exposed as an :class:`ExecutionResult`.  Nothing
    about the simulation changes — the default execution path stays
    bit-identical to pre-protocol behavior.
    """

    name = "sim"

    def run(
        self,
        machine: Machine,
        units: Sequence[Subcomputation],
        sim_config: Optional[SimConfig] = None,
    ) -> ExecutionResult:
        """Simulate ``units``; the full :class:`SimMetrics` ride along."""
        metrics = Simulator(machine, sim_config or SimConfig()).run(units)
        return ExecutionResult(
            backend=self.name,
            data_movement=metrics.data_movement,
            link_flits=dict(metrics.link_flits),
            sync_count=metrics.sync_count,
            unit_count=metrics.unit_count,
            metrics=metrics,
        )


def get_backend(name: str, **kwargs) -> Backend:
    """Construct the backend called ``name`` ('sim' or 'runtime').

    Keyword arguments are forwarded to the runtime backend's constructor
    (``workers=``, ``seed=``); the sim backend takes none.
    """
    if name == "sim":
        if kwargs:
            raise ConfigurationError(
                f"the sim backend takes no options, got {sorted(kwargs)}"
            )
        return SimBackend()
    if name == "runtime":
        from repro.exec.runtime import RuntimeBackend

        return RuntimeBackend(**kwargs)
    raise ConfigurationError(
        f"unknown backend {name!r}; choose one of {', '.join(BACKEND_NAMES)}"
    )
