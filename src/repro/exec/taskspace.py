"""A Parla-style task space and thread-pool task runtime.

Modeled on Parla's ``TaskSpace`` / ``@spawn`` idiom (SNIPPETS.md lessons
4-5): tasks are named handles in a :class:`TaskSpace`, spawned with a
dependency list and a logical-device placement, and executed by a
:class:`TaskRuntime` on host threads once every dependency has
completed.  The runtime is deliberately small — dependency counting, a
ready queue, worker threads — but it is a *real* concurrent scheduler:
task bodies run on OS threads, and completion order is whatever the
scheduler produces, not what a simulator models.

Two properties the tests lean on:

* **Determinism on demand** — ``TaskRuntime(workers=1, seed=...)`` runs
  every task on one worker and picks seeded-random tasks from the ready
  set, so two runs with the same seed execute tasks in the identical
  order; ``seed=None`` dispatches ready tasks by their spawn
  ``priority`` (spawn-order FIFO when unset), also deterministic on one
  worker.  With ``workers > 1`` the interleaving is up to the OS
  scheduler.
* **Auditability** — the runtime records the global completion order and
  verifies, as each task starts, that every dependency has already
  completed; a violation (a scheduler bug) is recorded, never silently
  dropped.  :attr:`TaskRuntime.violations` must come back empty.
"""

from __future__ import annotations

import heapq
import random
import threading
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class TaskError(ReproError):
    """A task body raised, or the task graph is malformed."""


class TaskHandle:
    """One named task: body, dependencies, placement, completion state."""

    def __init__(self, space: "TaskSpace", key: Hashable):
        self.space = space
        self.key = key
        self.fn: Optional[Callable[[], Any]] = None
        self.dependencies: List["TaskHandle"] = []
        self.placement: Any = None
        self.priority: Tuple = ()
        self.result: Any = None
        self.done = threading.Event()

    @property
    def name(self) -> str:
        """Qualified name, e.g. ``T[3]``."""
        return f"{self.space.name}[{self.key!r}]"

    @property
    def spawned(self) -> bool:
        """True once a body has been attached via :func:`spawn`."""
        return self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskHandle {self.name} spawned={self.spawned}>"


class TaskSpace:
    """A lazily-populated, arbitrarily-indexed space of task handles.

    Indexing creates handles on demand (``space[uid]``), so dependencies
    may name tasks that have not been spawned yet — exactly Parla's
    ``TaskSpace`` contract.
    """

    def __init__(self, name: str = "T"):
        self.name = name
        self._tasks: Dict[Hashable, TaskHandle] = {}

    def __getitem__(self, key: Hashable) -> TaskHandle:
        handle = self._tasks.get(key)
        if handle is None:
            handle = TaskHandle(self, key)
            self._tasks[key] = handle
        return handle

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())

    def spawned(self) -> List[TaskHandle]:
        """Every handle that has a body attached."""
        return [t for t in self._tasks.values() if t.spawned]


def spawn(
    handle: TaskHandle,
    dependencies: Sequence[TaskHandle] = (),
    placement: Any = None,
    priority: Tuple = (),
) -> Callable[[Callable[[], Any]], TaskHandle]:
    """Attach a body to ``handle`` — Parla's ``@spawn`` shape.

    Usage::

        @spawn(space[uid], dependencies=[space[d] for d in deps],
               placement=device)
        def body():
            ...

    ``priority`` orders ready tasks in the unseeded runtime (lowest
    first, ties by spawn order); the default empty tuple makes every
    task equal, i.e. plain FIFO.  Returns the handle (not the
    function), as Parla does, so the decorated name can be used as a
    dependency.
    """

    def register(fn: Callable[[], Any]) -> TaskHandle:
        if handle.spawned:
            raise TaskError(f"task {handle.name} spawned twice")
        handle.fn = fn
        handle.dependencies = list(dependencies)
        handle.placement = placement
        handle.priority = tuple(priority)
        return handle

    return register


class TaskRuntime:
    """Executes a :class:`TaskSpace`'s spawned tasks on worker threads.

    ``workers=1`` with a ``seed`` gives the reproducible scheduling mode:
    one worker, seeded random tie-breaks among ready tasks.  ``seed``
    with ``workers > 1`` raises — a seed promises determinism the OS
    scheduler cannot deliver across threads.
    """

    def __init__(self, workers: int = 4, seed: Optional[int] = None):
        if workers < 1:
            raise TaskError(f"workers must be >= 1, got {workers}")
        if seed is not None and workers != 1:
            raise TaskError(
                "seeded (deterministic) scheduling requires workers=1; "
                f"got workers={workers}"
            )
        self.workers = workers
        self.seed = seed
        #: Task names in global completion order (filled by run()).
        self.completion_order: List[str] = []
        #: Dependency-order violations observed at task start (must stay
        #: empty; non-empty means the scheduler itself is broken).
        self.violations: List[str] = []

    def run(self, space: TaskSpace) -> None:
        """Run every spawned task in ``space``; returns when all are done.

        Raises :class:`TaskError` on an unspawned dependency, a
        dependency cycle (detected as a stall), or a task body exception
        (re-raised with the task's name).
        """
        tasks = space.spawned()
        self.completion_order = []
        self.violations = []
        if not tasks:
            return

        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        pending: Dict[TaskHandle, int] = {}
        dependents: Dict[TaskHandle, List[TaskHandle]] = {}
        completed: set = set()
        # Unseeded: a heap ordered by (priority, arrival) — spawn-order
        # FIFO when nobody sets priorities.  Seeded: a plain list the
        # RNG picks random indices from.
        ready: List[Any] = []
        failures: List[BaseException] = []
        remaining = len(tasks)
        in_flight = 0
        stalled = False
        arrivals = 0
        rng = random.Random(self.seed) if self.seed is not None else None

        def push_ready(task: TaskHandle) -> None:
            nonlocal arrivals
            if rng is None:
                heapq.heappush(ready, (task.priority, arrivals, task))
            else:
                ready.append(task)
            arrivals += 1

        for task in tasks:
            for dep in task.dependencies:
                if not dep.spawned:
                    raise TaskError(
                        f"task {task.name} depends on {dep.name}, "
                        "which was never spawned"
                    )
            pending[task] = len(task.dependencies)
            for dep in task.dependencies:
                dependents.setdefault(dep, []).append(task)
        for task in tasks:
            if pending[task] == 0:
                push_ready(task)

        def take_ready() -> Optional[TaskHandle]:
            """Pop the next task (seeded random index, else priority)."""
            if not ready:
                return None
            if rng is not None:
                return ready.pop(rng.randrange(len(ready)))
            return heapq.heappop(ready)[2]

        def worker() -> None:
            nonlocal remaining, in_flight, stalled
            while True:
                with ready_cv:
                    while (
                        not ready and remaining > 0 and not failures
                        and not stalled and in_flight > 0
                    ):
                        ready_cv.wait()
                    if remaining <= 0 or failures or stalled:
                        ready_cv.notify_all()
                        return
                    if not ready:
                        # remaining > 0, nothing ready, nothing running:
                        # the graph has a cycle — stop instead of hanging
                        # (run() turns the shortfall into a TaskError).
                        stalled = True
                        ready_cv.notify_all()
                        return
                    task = take_ready()
                    in_flight += 1
                    late = [
                        dep.name
                        for dep in task.dependencies
                        if dep not in completed
                    ]
                    if late:
                        self.violations.append(
                            f"{task.name} started before "
                            f"dependencies: {', '.join(late)}"
                        )
                try:
                    task.result = task.fn()
                except BaseException as error:  # noqa: BLE001 - re-raised
                    with ready_cv:
                        failures.append(
                            TaskError(f"task {task.name} failed: {error}")
                        )
                        in_flight -= 1
                        remaining = 0
                        ready_cv.notify_all()
                    return
                with ready_cv:
                    completed.add(task)
                    self.completion_order.append(task.name)
                    task.done.set()
                    in_flight -= 1
                    remaining -= 1
                    for succ in dependents.get(task, ()):
                        pending[succ] -= 1
                        if pending[succ] == 0:
                            push_ready(succ)
                    ready_cv.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"task-runtime-{i}")
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        if len(self.completion_order) != len(tasks):
            stalled = [t.name for t in tasks if t not in completed]
            raise TaskError(
                "task graph has a dependency cycle; never ready: "
                + ", ".join(sorted(stalled)[:8])
            )
