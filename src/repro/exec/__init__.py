"""Execution backends: anything that can run a compiled schedule.

The :class:`~repro.exec.backend.Backend` protocol abstracts "execute
these subcomputation units on this machine and account for the data
movement".  ``sim`` is the event simulator (default, bit-identical to
the pre-protocol pipeline); ``runtime`` is the Parla-style concurrent
task runtime (DESIGN.md section 15).
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    Backend,
    ExecutionResult,
    SimBackend,
    get_backend,
)
from repro.exec.taskspace import TaskError, TaskRuntime, TaskSpace, spawn

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ExecutionResult",
    "SimBackend",
    "get_backend",
    "TaskError",
    "TaskRuntime",
    "TaskSpace",
    "spawn",
]
