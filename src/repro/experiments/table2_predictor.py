"""Table 2: L2 cache hit/miss predictor accuracy per application.

Trains the two-bit region predictor on each application's default-execution
L2 access stream (exactly what the compiler does in Section 4.1) and
reports the measured accuracy; the paper's values range 63.1%-91.8%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.predictor import HitMissPredictor
from repro.core.partitioner import train_predictor
from repro.experiments.common import (
    DEFAULT_APPS,
    experiment,
    experiment_main,
    format_table,
    paper_machine,
)
from repro.workloads import build_workload

PAPER_VALUES: Dict[str, float] = {
    "barnes": 0.631, "cholesky": 0.918, "fft": 0.845, "fmm": 0.706,
    "lu": 0.857, "ocean": 0.793, "radiosity": 0.781, "radix": 0.891,
    "raytrace": 0.802, "water": 0.776, "minimd": 0.874, "minixyce": 0.865,
}


@dataclass
class Table2Result:
    accuracy: Dict[str, float]

    def report(self) -> str:
        rows = []
        for app, measured in self.accuracy.items():
            paper = PAPER_VALUES.get(app)
            rows.append([
                app,
                f"{measured * 100:.1f}%",
                f"{paper * 100:.1f}%" if paper is not None else "-",
            ])
        return "Table 2: L2 hit/miss predictor accuracy\n" + format_table(
            ["app", "measured", "paper"], rows
        )


@experiment("Table 2", 2)
def run(
    apps: List[str] = DEFAULT_APPS,
    scale: int = 1,
    seed: int = 0,
    training_instances: int = 6000,
) -> Table2Result:
    accuracy: Dict[str, float] = {}
    for app in apps:
        machine = paper_machine()
        program = build_workload(app, scale, seed)
        predictor = HitMissPredictor()
        accuracy[app] = train_predictor(machine, program, predictor, training_instances)
    return Table2Result(accuracy)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
