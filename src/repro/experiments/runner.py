"""Run every experiment and emit a combined report.

``python -m repro.experiments.runner [--apps a,b,c] [--scale N] [--quick]
[--jobs N] [--trace FILE]`` prints each table/figure's report in paper
order; ``--quick`` restricts to a 4-app subset for smoke runs.
``--trace FILE`` streams structured JSONL trace events for every compile
and simulation in the suite to ``FILE`` (see :mod:`repro.obs.tracer`);
it never changes the rendered reports.  ``--jobs N`` fans the heavy
per-app compile+simulate work (all cluster/memory-mode comparisons, the
ideal-analysis runs, and the fixed-window sweeps) out over N worker
processes before the reports are rendered serially, so the output is
identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import common

# Importing the modules registers each @experiment-decorated run() with
# ``common``; the suite order comes from the registry, not this list.
from repro.experiments import (  # noqa: F401
    fig13_movement,
    fig14_parallelism,
    fig15_syncs,
    fig16_l1,
    fig17_exec_time,
    fig18_isolation,
    fig19_latency,
    fig20_window,
    fig21_window_l1,
    fig22_modes,
    fig23_data_mapping,
    fig24_energy,
    predictor_sweep,
    table1_analyzable,
    table2_predictor,
    table3_opmix,
)

QUICK_APPS = ["barnes", "cholesky", "ocean", "minimd"]


def run_all(apps: List[str], scale: int = 1, seed: int = 0, out=sys.stdout) -> None:
    for name, experiment in common.all_experiments():
        started = time.time()
        result = experiment(apps=apps, scale=scale, seed=seed)
        elapsed = time.time() - started
        print(f"\n=== {name} ({elapsed:.1f}s) ===", file=out)
        print(result.report(), file=out)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", default="", help="comma-separated app subset")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="4-app smoke subset")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-app prewarm phase (1 = serial)",
    )
    parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write structured JSONL trace events to FILE",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="enable runtime invariant checking (repro.check) for the suite",
    )
    args = parser.parse_args(argv)
    if args.apps:
        apps = common.parse_apps(args.apps)
        if apps is None:
            return 2
    elif args.quick:
        apps = QUICK_APPS
    else:
        apps = common.DEFAULT_APPS
    if args.check:
        import os

        from repro import check

        check.enable()
        # Worker processes (--jobs) bootstrap their mode from the
        # environment, so checking composes with the parallel prewarm.
        os.environ["REPRO_CHECK"] = "1"
    if args.jobs > 1:
        common.prewarm(apps, scale=args.scale, seed=args.seed, jobs=args.jobs)
    if args.trace:
        from repro.obs.tracer import tracing

        with tracing(args.trace):
            run_all(apps, args.scale, args.seed)
    else:
        run_all(apps, args.scale, args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
