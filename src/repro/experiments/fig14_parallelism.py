"""Figure 14: degree of subcomputation parallelism.

Average and maximum number of subcomputations executed in parallel per
program statement.  The paper's average across applications is ~3, with
Ocean and Barnes highest (their statements are longest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)
from repro.utils.stats import mean


@dataclass
class Fig14Result:
    parallelism: Dict[str, Tuple[float, int]]  # app -> (avg, max)

    def overall_average(self) -> float:
        return mean(avg for avg, _ in self.parallelism.values())

    def report(self) -> str:
        rows = [
            [app, f"{avg:.2f}", str(worst)]
            for app, (avg, worst) in self.parallelism.items()
        ]
        rows.append(["mean", f"{self.overall_average():.2f}", ""])
        return (
            "Figure 14: degree of subcomputation parallelism per statement\n"
            + format_table(["app", "avg", "max"], rows)
        )


@experiment("Figure 14", 14)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig14Result:
    parallelism: Dict[str, Tuple[float, int]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        partition = comparison.partition
        parallelism[app] = (
            partition.average_parallelism(),
            partition.max_parallelism(),
        )
    return Fig14Result(parallelism)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
