"""Figure 21: L1 hit-rate improvement as the window size changes.

Companion to Figure 20 (the fixed-size runs are shared): execution time
follows the L1 hit-rate trend; the hit rate rises while window reuse is
being captured and falls once the modeled window outruns the real cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    fixed_window_metrics,
    format_table,
)


@dataclass
class Fig21Result:
    # app -> {size -> absolute L1 hit-rate delta vs default}
    improvements: Dict[str, Dict[int, float]]

    def report(self) -> str:
        sizes = sorted(next(iter(self.improvements.values())).keys()) if self.improvements else []
        rows = []
        for app, values in self.improvements.items():
            rows.append([app] + [f"{values[s] * 100:+.1f}%" for s in sizes])
        return (
            "Figure 21: L1 hit-rate improvement by window size\n"
            + format_table(["app"] + [str(s) for s in sizes], rows)
        )


@experiment("Figure 21", 21)
def run(
    apps: List[str] = DEFAULT_APPS,
    scale: int = 1,
    seed: int = 0,
    sizes: range = range(1, 9),
) -> Fig21Result:
    improvements: Dict[str, Dict[int, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base_rate = comparison.default_metrics.l1_hit_rate()
        per_app: Dict[int, float] = {}
        for size in sizes:
            metrics = fixed_window_metrics(app, size, scale, seed)
            per_app[size] = metrics.l1_hit_rate() - base_rate
        improvements[app] = per_app
    return Fig21Result(improvements)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
