"""Figure 24: energy reduction compared to the default placement.

Energy comes from the simulator's event counts through the CACTI/McPAT-style
constants (network flit-hops, cache accesses, DRAM accesses, ALU ops,
synchronizations, static leakage x cycles).  Paper: ~23.1% average saving;
the ideal-network and ideal-analysis scenarios bound it from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.ideal import ideal_network_config
from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
    paper_machine,
)
from repro.sim.engine import Simulator
from repro.utils.stats import mean
from repro.workloads import build_workload


@dataclass
class Fig24Result:
    # app -> (ours, ideal network, ideal analysis) energy reductions
    reductions: Dict[str, Tuple[float, float, float]]

    def average(self) -> float:
        return mean(r[0] for r in self.reductions.values())

    def report(self) -> str:
        rows = [
            [app, f"{ours * 100:.1f}%", f"{net * 100:.1f}%", f"{ana * 100:.1f}%"]
            for app, (ours, net, ana) in self.reductions.items()
        ]
        rows.append(["mean", f"{self.average() * 100:.1f}%", "", ""])
        return (
            "Figure 24: energy reduction (ours / ideal network / ideal "
            "analysis)\n"
            + format_table(["app", "ours", "ideal-net", "ideal-analysis"], rows)
        )


@experiment("Figure 24", 24)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig24Result:
    reductions: Dict[str, Tuple[float, float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base = comparison.default_metrics.energy_pj
        ours = comparison.energy_reduction()

        machine = paper_machine()
        build_workload(app, scale, seed).declare_on(machine)
        net_metrics = Simulator(machine, ideal_network_config()).run(
            comparison.partition.units()
        )
        net = (base - net_metrics.energy_pj) / base if base else 0.0

        from repro.experiments.common import ideal_analysis_metrics

        ana_metrics = ideal_analysis_metrics(app, scale, seed)
        ana = (base - ana_metrics.energy_pj) / base if base else 0.0

        reductions[app] = (ours, max(net, ours), max(ana, ours))
    return Fig24Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
