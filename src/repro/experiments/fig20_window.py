"""Figure 20: execution time with fixed window sizes 1..8 vs adaptive.

For each application: eight bars with the window size fixed for all nests,
plus the adaptive per-nest choice (the paper's approach).  Expected shape:
improvement rises with window size, peaks, then falls (L1 pollution), and
the adaptive bar matches or beats the best fixed bar.  The adaptive run's
split plan is held fixed so the sweep varies the window size only; the
fixed-size runs are shared with Figure 21.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    fixed_window_metrics,
    format_table,
)


@dataclass
class Fig20Result:
    # app -> {1:..8: fixed-size time reduction, 'adaptive': reduction}
    reductions: Dict[str, Dict[str, float]]

    def report(self) -> str:
        sizes = [str(s) for s in range(1, 9)] + ["adaptive"]
        rows = []
        for app, values in self.reductions.items():
            rows.append([app] + [f"{values.get(s, 0.0) * 100:+.1f}%" for s in sizes])
        return (
            "Figure 20: execution time reduction by window size\n"
            + format_table(["app"] + sizes, rows)
        )


@experiment("Figure 20", 20)
def run(
    apps: List[str] = DEFAULT_APPS,
    scale: int = 1,
    seed: int = 0,
    sizes: range = range(1, 9),
    reuse_aware: bool = True,
) -> Fig20Result:
    reductions: Dict[str, Dict[str, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base = comparison.default_metrics.total_cycles
        per_app: Dict[str, float] = {}
        for size in sizes:
            metrics = fixed_window_metrics(app, size, scale, seed, reuse_aware)
            per_app[str(size)] = (base - metrics.total_cycles) / base if base else 0.0
        per_app["adaptive"] = comparison.time_reduction()
        reductions[app] = per_app
    return Fig20Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
