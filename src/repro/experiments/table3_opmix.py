"""Table 3: operator mix of the computations our scheme re-maps.

For every application, the fraction of re-mapped (off the default node)
operations that are adds/subtracts vs multiplies/divides vs others.  Our IR
has the four arithmetic operators; pure data forwards land in 'others'
(the paper's 'others' are shifts/logicals in the original codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)

PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "barnes": {"add/sub": 0.514, "mul/div": 0.262, "others": 0.224},
    "cholesky": {"add/sub": 0.394, "mul/div": 0.476, "others": 0.130},
    "fft": {"add/sub": 0.331, "mul/div": 0.465, "others": 0.204},
    "fmm": {"add/sub": 0.472, "mul/div": 0.453, "others": 0.075},
    "lu": {"add/sub": 0.418, "mul/div": 0.516, "others": 0.066},
    "ocean": {"add/sub": 0.522, "mul/div": 0.414, "others": 0.064},
    "radiosity": {"add/sub": 0.462, "mul/div": 0.334, "others": 0.204},
    "radix": {"add/sub": 0.390, "mul/div": 0.387, "others": 0.223},
    "raytrace": {"add/sub": 0.434, "mul/div": 0.497, "others": 0.069},
    "water": {"add/sub": 0.581, "mul/div": 0.282, "others": 0.137},
    "minimd": {"add/sub": 0.444, "mul/div": 0.372, "others": 0.184},
    "minixyce": {"add/sub": 0.463, "mul/div": 0.367, "others": 0.170},
}


@dataclass
class Table3Result:
    mixes: Dict[str, Dict[str, float]]

    def report(self) -> str:
        rows = []
        for app, mix in self.mixes.items():
            paper = PAPER_VALUES.get(app, {})
            rows.append([
                app,
                f"{mix['add/sub'] * 100:.1f}%",
                f"{mix['mul/div'] * 100:.1f}%",
                f"{mix['others'] * 100:.1f}%",
                f"{paper.get('add/sub', 0) * 100:.0f}/{paper.get('mul/div', 0) * 100:.0f}/{paper.get('others', 0) * 100:.0f}",
            ])
        return (
            "Table 3: operator mix of re-mapped computations\n"
            + format_table(["app", "add/sub", "mul/div", "others", "paper"], rows)
        )


@experiment("Table 3", 3)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Table3Result:
    mixes: Dict[str, Dict[str, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        mixes[app] = comparison.partition.remapped_op_fractions()
    return Table3Result(mixes)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
