"""Figure 19: reduction in average and maximum NoC latency.

The maximum latency is the paper's congestion proxy; the point of the
figure is that the approach does not create network bottlenecks — both
statistics drop for every application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)


@dataclass
class Fig19Result:
    reductions: Dict[str, Tuple[float, float]]  # app -> (avg, max)

    def report(self) -> str:
        rows = [
            [app, f"{avg * 100:.1f}%", f"{worst * 100:.1f}%"]
            for app, (avg, worst) in self.reductions.items()
        ]
        return (
            "Figure 19: on-chip network latency reduction (avg / max)\n"
            + format_table(["app", "avg latency", "max latency"], rows)
        )


@experiment("Figure 19", 19)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig19Result:
    reductions: Dict[str, Tuple[float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        reductions[app] = comparison.network_latency_reduction()
    return Fig19Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
