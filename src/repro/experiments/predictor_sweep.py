"""Predictor sweep: trace-trained vs analytic L2 miss prediction.

An extension experiment (no paper counterpart): for each application,
build both predictors the compiler can use — the default two-bit
trace-trained predictor (Section 4.1) and the closed-form analytic
locality model (DESIGN.md section 12) — and report

* per-address **agreement** between the two over the default-execution
  access stream (the differential-oracle metric of ``repro.check``);
* **build cost**: trace-training time vs closed-form model time;
* the **end-to-end effect**: data-movement reduction when the full
  pipeline is compiled with each predictor (``--predictor`` in the CLI).

The trace predictor stays the pipeline default; the sweep quantifies how
much of its verdicts the analytic model reproduces without simulating a
single cache access, and what the residual divergence costs downstream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.cache.predictor import HitMissPredictor
from repro.core.locality import AnalyticMissPredictor
from repro.core.partitioner import train_predictor
from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
    paper_machine,
)
from repro.workloads import build_workload

#: Instance budget for both trace training and the agreement probe —
#: the same default the compile pipeline trains with.
TRAINING_INSTANCES = 4000


@dataclass
class PredictorSweepRow:
    """One application's trace-vs-analytic comparison."""

    agreement: float
    trace_seconds: float
    analytic_seconds: float
    trace_movement_reduction: float
    analytic_movement_reduction: float


@dataclass
class PredictorSweepResult:
    rows: Dict[str, PredictorSweepRow]

    def report(self) -> str:
        table = []
        for app, row in self.rows.items():
            table.append([
                app,
                f"{row.agreement * 100:.1f}%",
                f"{row.trace_seconds:.2f}s",
                f"{row.analytic_seconds:.2f}s",
                f"{row.trace_movement_reduction * 100:.1f}%",
                f"{row.analytic_movement_reduction * 100:.1f}%",
            ])
        return (
            "Predictor sweep: trace-trained vs analytic (DESIGN.md sec. 12)\n"
            + format_table(
                [
                    "app",
                    "agreement",
                    "trace build",
                    "analytic build",
                    "moves saved (trace)",
                    "moves saved (analytic)",
                ],
                table,
            )
        )


def _agreement(analytic_pair, trace_pair, budget: int) -> float:
    """Per-address agreement over the first ``budget`` instances.

    Each predictor answers against its *own* machine's physical
    addresses (layouts are allocated independently but the programs are
    element-for-element identical), mirroring check mode's differential
    oracle.
    """
    (analytic_machine, analytic_program, analytic) = analytic_pair
    (trace_machine, trace_program, trace) = trace_pair
    agree = total = 0
    pairs = zip(analytic_program.instances(), trace_program.instances())
    for count, (analytic_instance, trace_instance) in enumerate(pairs):
        if count >= budget:
            break
        for a_access, t_access in zip(
            analytic_instance.accesses(), trace_instance.accesses()
        ):
            a = analytic_machine.layout.pa_of(a_access.array, a_access.index)
            t = trace_machine.layout.pa_of(t_access.array, t_access.index)
            agree += analytic.predict(a) == trace.predict(t)
            total += 1
    return agree / total if total else 1.0


@experiment("Predictor sweep", 26)
def run(
    apps: List[str] = DEFAULT_APPS,
    scale: int = 1,
    seed: int = 0,
) -> PredictorSweepResult:
    rows: Dict[str, PredictorSweepRow] = {}
    for app in apps:
        trace_machine = paper_machine()
        trace_program = build_workload(app, scale, seed)
        trace = HitMissPredictor()
        started = time.perf_counter()
        train_predictor(
            trace_machine, trace_program, trace, TRAINING_INSTANCES
        )
        trace_seconds = time.perf_counter() - started

        analytic_machine = paper_machine()
        analytic_program = build_workload(app, scale, seed)
        started = time.perf_counter()
        analytic = AnalyticMissPredictor(analytic_machine, analytic_program)
        analytic_seconds = time.perf_counter() - started

        agreement = _agreement(
            (analytic_machine, analytic_program, analytic),
            (trace_machine, trace_program, trace),
            TRAINING_INSTANCES,
        )
        with_trace = compare_app(app, scale=scale, seed=seed)
        with_analytic = compare_app(
            app, scale=scale, seed=seed, predictor="analytic"
        )
        rows[app] = PredictorSweepRow(
            agreement=agreement,
            trace_seconds=trace_seconds,
            analytic_seconds=analytic_seconds,
            trace_movement_reduction=with_trace.movement_reduction(),
            analytic_movement_reduction=with_analytic.movement_reduction(),
        )
    return PredictorSweepResult(rows)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
