"""Figure 15: synchronizations per statement due to subcomputation scheduling.

After the transitive-closure minimization (Section 4.5).  The paper
observes more parallelism usually means more synchronizations; both the
minimized and unminimized counts are reported here so the minimization's
effect is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)


@dataclass
class Fig15Result:
    syncs: Dict[str, Tuple[float, float]]  # app -> (minimized, unminimized)

    def report(self) -> str:
        rows = [
            [app, f"{minimized:.2f}", f"{unminimized:.2f}"]
            for app, (minimized, unminimized) in self.syncs.items()
        ]
        return (
            "Figure 15: synchronizations per statement (after / before "
            "transitive-closure minimization)\n"
            + format_table(["app", "minimized", "unminimized"], rows)
        )


@experiment("Figure 15", 15)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig15Result:
    syncs: Dict[str, Tuple[float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        partition = comparison.partition
        syncs[app] = (
            partition.syncs_per_statement(),
            partition.syncs_per_statement_unminimized(),
        )
    return Fig15Result(syncs)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
