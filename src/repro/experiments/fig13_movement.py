"""Figure 13: reduction in on-chip data movement over the default placement.

Average (per statement) and maximum reductions in data movement, measured
from the simulator's link-traversal accounting.  Paper: geometric mean of
the average reduction ~35.3%, with Barnes/Ocean/MiniMD high and
Cholesky/LU low (their original network footprint is small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)
from repro.utils.stats import geomean


@dataclass
class Fig13Result:
    reductions: Dict[str, Tuple[float, float]]  # app -> (avg, max)

    def average_geomean(self) -> float:
        positives = [max(avg, 1e-4) for avg, _ in self.reductions.values()]
        return geomean(positives) if positives else 0.0

    def mean_reduction(self) -> float:
        values = [avg for avg, _ in self.reductions.values()]
        return sum(values) / len(values) if values else 0.0

    def report(self) -> str:
        rows = [
            [app, f"{avg * 100:.1f}%", f"{worst * 100:.1f}%"]
            for app, (avg, worst) in self.reductions.items()
        ]
        rows.append(["mean", f"{self.mean_reduction() * 100:.1f}%", ""])
        return (
            "Figure 13: data movement reduction over default placement\n"
            + format_table(["app", "avg", "max"], rows)
        )


@experiment("Figure 13", 13)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig13Result:
    reductions: Dict[str, Tuple[float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        reductions[app] = (
            comparison.movement_reduction(),
            comparison.movement_reduction_max(),
        )
    return Fig13Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
