"""Figure 17: execution-time reduction — ours vs two ideal scenarios.

Three bars per application: our compiler approach, the ideal-network
scenario (all messages take 0 cycles), and ideal data analysis (oracle
predictor + perfect reuse knowledge).  Paper geomeans: 18.4% / 24.4% /
22.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.ideal import ideal_network_config
from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
    paper_machine,
)
from repro.sim.engine import Simulator
from repro.utils.stats import geomean
from repro.workloads import build_workload


@dataclass
class Fig17Result:
    # app -> (ours, ideal network, ideal analysis) fractional time reduction
    reductions: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        def geo(index: int) -> float:
            values = [max(r[index], 1e-4) for r in self.reductions.values()]
            return geomean(values) if values else 0.0

        return geo(0), geo(1), geo(2)

    def means(self) -> Tuple[float, float, float]:
        def mean(index: int) -> float:
            values = [r[index] for r in self.reductions.values()]
            return sum(values) / len(values) if values else 0.0

        return mean(0), mean(1), mean(2)

    def report(self) -> str:
        rows = [
            [app, f"{ours * 100:.1f}%", f"{net * 100:.1f}%", f"{ana * 100:.1f}%"]
            for app, (ours, net, ana) in self.reductions.items()
        ]
        g = self.means()
        rows.append(["mean", f"{g[0] * 100:.1f}%", f"{g[1] * 100:.1f}%", f"{g[2] * 100:.1f}%"])
        return (
            "Figure 17: execution time reduction (ours / ideal network / "
            "ideal data analysis)\n"
            + format_table(["app", "ours", "ideal-net", "ideal-analysis"], rows)
        )


@experiment("Figure 17", 17)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig17Result:
    reductions: Dict[str, Tuple[float, float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base = comparison.default_metrics.total_cycles
        ours = comparison.time_reduction()

        # Ideal network: rerun the optimized schedule with free messages.
        machine = paper_machine()
        build_workload(app, scale, seed).declare_on(machine)
        ideal_net_metrics = Simulator(machine, ideal_network_config()).run(
            comparison.partition.units()
        )
        ideal_net = (base - ideal_net_metrics.total_cycles) / base if base else 0.0

        # Ideal data analysis: oracle-repartitioned run (shared with Fig 24).
        from repro.experiments.common import ideal_analysis_metrics

        ideal_ana_metrics = ideal_analysis_metrics(app, scale, seed)
        ideal_ana = (base - ideal_ana_metrics.total_cycles) / base if base else 0.0

        reductions[app] = (ours, max(ideal_net, ours), max(ideal_ana, ours))
    return Fig17Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
