"""Figure 18: contribution of each metric to the improvement (simulation).

Four counterfactual versions of the *default* execution, each inheriting
exactly one property of the optimized run:

* S1 — the optimized code's L1 hit/miss profile;
* S2 — the optimized code's data-movement costs;
* S3 — the optimized code's degree of parallelism;
* S4 — the default plus the optimized code's synchronization costs.

Reported as normalized performance vs the default (higher is better; S4 is
<= 1 by construction).  Paper: movement dominates (S2 ~ 1.15), then
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
    run_default,
)
from repro.sim.engine import SimConfig
from repro.utils.stats import geomean


@dataclass
class Fig18Result:
    # app -> (S1, S2, S3, S4) normalized performance (default = 1.0)
    speedups: Dict[str, Tuple[float, float, float, float]]

    def geomeans(self) -> Tuple[float, float, float, float]:
        def geo(index: int) -> float:
            return geomean([max(s[index], 1e-4) for s in self.speedups.values()])

        return geo(0), geo(1), geo(2), geo(3)

    def report(self) -> str:
        rows = [
            [app, f"{s1:.3f}", f"{s2:.3f}", f"{s3:.3f}", f"{s4:.3f}"]
            for app, (s1, s2, s3, s4) in self.speedups.items()
        ]
        g = self.geomeans()
        rows.append(["geomean"] + [f"{v:.3f}" for v in g])
        return (
            "Figure 18: per-metric contribution (normalized performance, "
            "default = 1.0)\n"
            + format_table(["app", "S1:L1", "S2:movement", "S3:parallel", "S4:syncs"], rows)
        )


@experiment("Figure 18", 18)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig18Result:
    speedups: Dict[str, Tuple[float, float, float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base_cycles = comparison.default_metrics.total_cycles
        if base_cycles <= 0:
            speedups[app] = (1.0, 1.0, 1.0, 1.0)
            continue

        # S1: force the optimized L1 hit rate onto the default execution.
        target_l1 = comparison.optimized_metrics.l1_hit_rate()
        _, s1_metrics, _ = run_default(
            app, scale, seed, sim_config=SimConfig(forced_l1_hit_rate=target_l1)
        )
        s1 = base_cycles / max(s1_metrics.total_cycles, 1e-9)

        # S2: scale the default's network latencies by the optimized/default
        # movement ratio.
        base_movement = comparison.default_metrics.data_movement
        opt_movement = comparison.optimized_metrics.data_movement
        ratio = opt_movement / base_movement if base_movement else 1.0
        _, s2_metrics, _ = run_default(
            app, scale, seed, sim_config=SimConfig(hop_latency_scale=ratio)
        )
        s2 = base_cycles / max(s2_metrics.total_cycles, 1e-9)

        # S3: grant the default the optimized degree of parallelism by
        # scaling compute time (the same ops run spread over that many
        # subcomputations).
        parallelism = max(comparison.partition.average_parallelism(), 1.0)
        _, s3_metrics, _ = run_default(
            app, scale, seed, sim_config=SimConfig(compute_scale=1.0 / parallelism)
        )
        s3 = base_cycles / max(s3_metrics.total_cycles, 1e-9)

        # S4: charge the default with the optimized version's sync count.
        opt_syncs = comparison.optimized_metrics.sync_count
        base_units = max(comparison.default_units, 1)
        extra = SimConfig().sync_cycles * opt_syncs / base_units
        _, s4_metrics, _ = run_default(
            app, scale, seed,
            sim_config=SimConfig(per_unit_overhead_cycles=extra),
        )
        s4 = base_cycles / max(s4_metrics.total_cycles, 1e-9)

        speedups[app] = (s1, s2, s3, s4)
    return Fig18Result(speedups)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
