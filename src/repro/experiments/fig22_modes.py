"""Figure 22: results across KNL cluster modes and memory modes.

Grid of (cluster mode A/B/C) x (memory mode X/Y/Z) x (original/optimized),
normalized against (B,X,1) — the default quadrant+flat configuration
running the original code.  Values are speedups (>1 is better).

Paper observations reproduced here: (1) optimization helps in every
configuration; (2) cluster-mode differences shrink under the optimization;
(3) flat beats cache mode; (4) (C,X,2) is best overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.cluster_modes import ClusterMode
from repro.arch.memory_modes import MemoryMode
from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)
from repro.utils.stats import geomean

ConfigKey = Tuple[str, str, int]  # (cluster label, memory label, 1=orig 2=opt)


@dataclass
class Fig22Result:
    # app -> {(cluster, memory, version) -> normalized performance}
    grid: Dict[str, Dict[ConfigKey, float]]

    def geomean_for(self, key: ConfigKey) -> float:
        values = [max(per_app.get(key, 0.0), 1e-4) for per_app in self.grid.values()]
        return geomean(values) if values else 0.0

    def report(self) -> str:
        keys: List[ConfigKey] = []
        for cluster in "ABC":
            for memory in "XY":
                for version in (1, 2):
                    keys.append((cluster, memory, version))
        headers = ["app"] + [f"{c}{m}{v}" for c, m, v in keys]
        rows = []
        for app, values in self.grid.items():
            rows.append([app] + [f"{values.get(k, 0.0):.2f}" for k in keys])
        rows.append(["geomean"] + [f"{self.geomean_for(k):.2f}" for k in keys])
        return (
            "Figure 22: (cluster mode, memory mode, version) grid, normalized "
            "to (B,X,1)\n" + format_table(headers, rows)
        )


@experiment("Figure 22", 22)
def run(
    apps: List[str] = DEFAULT_APPS,
    scale: int = 1,
    seed: int = 0,
    clusters: Tuple[ClusterMode, ...] = (
        ClusterMode.ALL_TO_ALL,
        ClusterMode.QUADRANT,
        ClusterMode.SNC4,
    ),
    memories: Tuple[MemoryMode, ...] = (MemoryMode.FLAT, MemoryMode.CACHE),
) -> Fig22Result:
    grid: Dict[str, Dict[ConfigKey, float]] = {}
    for app in apps:
        baseline = compare_app(app, scale, seed)  # (B,X): quadrant+flat
        base_cycles = baseline.default_metrics.total_cycles
        per_app: Dict[ConfigKey, float] = {}
        for cluster in clusters:
            for memory in memories:
                comparison = compare_app(app, scale, seed, cluster, memory)
                per_app[(cluster.label, memory.label, 1)] = base_cycles / max(
                    comparison.default_metrics.total_cycles, 1e-9
                )
                per_app[(cluster.label, memory.label, 2)] = base_cycles / max(
                    comparison.optimized_metrics.total_cycles, 1e-9
                )
        grid[app] = per_app
    return Fig22Result(grid)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
