"""Mesh sweep: flat vs hierarchical placement search across mesh sizes.

Runs paper workloads plus DAMOV-style generated workloads (classified by
compute-vs-movement intensity, :mod:`repro.workloads.damov`) on meshes
from the paper's 6x6 up through 16x16, timing the default placement's two
preference searches (DESIGN.md section 14) on identical residency
profiles.  The report answers the scaling question the tentpole poses:
*where is the crossover* — the smallest mesh on which the hierarchical
quadrant-decomposed search beats the historical flat sort — and by how
much the gap widens at 16x16.

``python -m repro.experiments.mesh_sweep --out BENCH_mesh.json`` writes
the machine-readable report consumed by the bench-regression comparator
(``repro.benchmarks.regression --mesh-baseline/--mesh-fresh``); CI runs
the ``--smoke`` variant (single timing repetition, same coverage) via
``make mesh-sweep-smoke``.

Timings are wall-clock and environment-dependent; everything else in the
report (chunk counts, alive nodes, auto-search decisions, workload set)
is deterministic, and the regression comparator gates on the stable
fields plus a generous speedup-ratio tolerance.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.default_placement import DefaultPlacement
from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.common import (
    experiment,
    format_table,
    paper_machine,
)
from repro.ir.program import Program
from repro.workloads import build_workload
from repro.workloads.damov import damov_suite

#: Mesh sizes swept by default: the paper's evaluation mesh, the first
#: size past the hierarchical threshold, and the 16x16 scaling target.
DEFAULT_MESHES: Tuple[Tuple[int, int], ...] = ((6, 6), (12, 12), (16, 16))

#: Paper workloads included in the sweep (one high-movement, one
#: dense-regular, one neighbor-list kernel); the DAMOV suite contributes
#: the classified synthetic side.
DEFAULT_SWEEP_APPS: Tuple[str, ...] = ("barnes", "fft", "minimd")

#: Generated workloads per sweep (two per DAMOV class).
DEFAULT_GENERATED_COUNT = 6

#: BENCH_mesh.json schema version.
MESH_BENCH_SCHEMA = 1


@dataclass
class MeshSweepEntry:
    """One (workload, mesh) measurement."""

    app: str
    source: str  # "paper" or "damov"
    damov_class: str  # "" for paper workloads
    cols: int
    rows: int
    chunks: int
    alive: int
    auto_search: str
    flat_seconds: float
    hier_seconds: float

    @property
    def mesh(self) -> str:
        return f"{self.cols}x{self.rows}"

    @property
    def speedup(self) -> float:
        return self.flat_seconds / self.hier_seconds if self.hier_seconds else 0.0

    def to_json(self) -> Dict:
        return {
            "app": self.app,
            "source": self.source,
            "damov_class": self.damov_class,
            "mesh": self.mesh,
            "cols": self.cols,
            "rows": self.rows,
            "chunks": self.chunks,
            "alive": self.alive,
            "auto_search": self.auto_search,
            "flat_seconds": round(self.flat_seconds, 6),
            "hier_seconds": round(self.hier_seconds, 6),
            "speedup": round(self.speedup, 3),
        }


@dataclass
class MeshSweepResult:
    """The full sweep: entries plus the derived crossover summary."""

    meshes: List[Tuple[int, int]]
    entries: List[MeshSweepEntry] = field(default_factory=list)

    def mean_speedup(self, cols: int, rows: int) -> float:
        values = [
            e.speedup for e in self.entries if (e.cols, e.rows) == (cols, rows)
        ]
        return sum(values) / len(values) if values else 0.0

    def crossover_mesh(self) -> Optional[str]:
        """Smallest swept mesh where hierarchical beats flat on average."""
        for cols, rows in sorted(self.meshes, key=lambda m: m[0] * m[1]):
            if self.mean_speedup(cols, rows) > 1.0:
                return f"{cols}x{rows}"
        return None

    def to_json(self) -> Dict:
        return {
            "schema_version": MESH_BENCH_SCHEMA,
            "meshes": [f"{c}x{r}" for c, r in self.meshes],
            "workloads": sorted({e.app for e in self.entries}),
            "entries": [e.to_json() for e in self.entries],
            "summary": {
                f"{c}x{r}": round(self.mean_speedup(c, r), 3)
                for c, r in self.meshes
            },
            "crossover_mesh": self.crossover_mesh(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def report(self) -> str:
        rows = [
            [
                e.app,
                e.mesh,
                e.auto_search,
                f"{e.flat_seconds * 1e3:.2f}ms",
                f"{e.hier_seconds * 1e3:.2f}ms",
                f"{e.speedup:.2f}x",
            ]
            for e in self.entries
        ]
        crossover = self.crossover_mesh() or "none in swept range"
        summary = ", ".join(
            f"{c}x{r}: {self.mean_speedup(c, r):.2f}x" for c, r in self.meshes
        )
        return (
            "Mesh sweep: flat vs hierarchical placement search\n"
            + format_table(
                ["app", "mesh", "auto", "flat", "hier", "speedup"], rows
            )
            + f"\nmean speedup by mesh: {summary}"
            + f"\ncrossover (hierarchical wins on average): {crossover}"
        )


def _time_search(
    placement: DefaultPlacement,
    counts,
    alive,
    search: str,
    repeat: int,
) -> float:
    # Untimed warmup: pays one-time costs (the hierarchical region tree,
    # allocator warm-up) outside the measurement, so single-repetition
    # smoke runs measure the steady-state search like repeated runs do.
    placement.rank_preferences(counts, alive, search=search)
    best = None
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        placement.rank_preferences(counts, alive, search=search)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _sweep_one(
    app: str,
    source: str,
    damov_class: str,
    program: Program,
    cols: int,
    rows: int,
    repeat: int,
) -> MeshSweepEntry:
    machine = paper_machine(mesh_cols=cols, mesh_rows=rows)
    program.declare_on(machine)
    placement = DefaultPlacement(machine)
    nest = program.nests[0]
    counts, alive = placement.chunk_home_counts(program, nest)
    flat_seconds = _time_search(placement, counts, alive, "flat", repeat)
    hier_seconds = _time_search(placement, counts, alive, "hierarchical", repeat)
    return MeshSweepEntry(
        app=app,
        source=source,
        damov_class=damov_class,
        cols=cols,
        rows=rows,
        chunks=len(counts),
        alive=len(alive),
        auto_search=(
            "hierarchical" if placement.uses_hierarchical(len(alive)) else "flat"
        ),
        flat_seconds=flat_seconds,
        hier_seconds=hier_seconds,
    )


@experiment("Mesh sweep", 90)
def run(
    apps: Sequence[str] = DEFAULT_SWEEP_APPS,
    scale: int = 1,
    seed: int = 0,
    meshes: Sequence[Tuple[int, int]] = DEFAULT_MESHES,
    generated: int = DEFAULT_GENERATED_COUNT,
    repeat: int = 3,
) -> MeshSweepResult:
    """Sweep ``apps`` + ``generated`` DAMOV workloads over ``meshes``."""
    workloads: List[Tuple[str, str, str, Program]] = [
        (app, "paper", "", build_workload(app, scale, seed)) for app in apps
    ]
    for generated_workload in damov_suite(generated, scale, seed) if generated else []:
        workloads.append(
            (
                generated_workload.name,
                "damov",
                generated_workload.damov_class,
                generated_workload.program,
            )
        )
    result = MeshSweepResult(meshes=[tuple(m) for m in meshes])
    for cols, rows in result.meshes:
        for app, source, damov_class, program in workloads:
            result.entries.append(
                _sweep_one(app, source, damov_class, program, cols, rows, repeat)
            )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Mesh sweep: flat vs hierarchical placement search."
    )
    parser.add_argument(
        "--apps",
        default=",".join(DEFAULT_SWEEP_APPS),
        help="comma-separated paper workloads to include",
    )
    parser.add_argument(
        "--meshes",
        default=",".join(f"{c}x{r}" for c, r in DEFAULT_MESHES),
        help="comma-separated mesh sizes, e.g. 6x6,12x12,16x16",
    )
    parser.add_argument("--generated", type=int, default=DEFAULT_GENERATED_COUNT)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions (min taken)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single timing repetition (full coverage, CI-friendly runtime)",
    )
    parser.add_argument(
        "--out", default="", metavar="FILE", help="write BENCH_mesh.json to FILE"
    )
    args = parser.parse_args(argv)
    try:
        meshes = []
        for spec in args.meshes.split(","):
            cols_text, _, rows_text = spec.strip().partition("x")
            meshes.append((int(cols_text), int(rows_text)))
    except ValueError:
        print(f"error: bad --meshes value {args.meshes!r}")
        return 2
    apps = [app.strip() for app in args.apps.split(",") if app.strip()]
    try:
        result = run(
            apps=apps,
            scale=args.scale,
            seed=args.seed,
            meshes=meshes,
            generated=args.generated,
            repeat=1 if args.smoke else args.repeat,
        )
    except (WorkloadError, ConfigurationError) as exc:
        print(f"error: {exc}")
        return 2
    print(result.report())
    if args.out:
        result.write_json(args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
