"""Experiment harnesses: one module per paper table/figure.

Every experiment follows the same pattern: build the 12-workload suite,
run the default placement and the NDP partitioner through the simulator
(results are cached per configuration within the process), and print the
same rows/series the paper reports.  The benchmarks under ``benchmarks/``
are thin wrappers that invoke these and assert the reproduced *shape*.

Index (see DESIGN.md for the full mapping):

========  =======================================  =======================
artifact  quantity                                 module
========  =======================================  =======================
Table 1   analyzable reference fractions           table1_analyzable
Table 2   L2 predictor accuracy                    table2_predictor
Table 3   op mix of re-mapped computations         table3_opmix
Fig 13    per-statement movement reduction         fig13_movement
Fig 14    degree of subcomputation parallelism     fig14_parallelism
Fig 15    synchronizations per statement           fig15_syncs
Fig 16    L1 hit-rate improvement                  fig16_l1
Fig 17    execution time vs ideal scenarios        fig17_exec_time
Fig 18    metric isolation (S1..S4)                fig18_isolation
Fig 19    network latency reduction                fig19_latency
Fig 20    fixed vs adaptive window sizes           fig20_window
Fig 21    L1 hit rate vs window size               fig21_window_l1
Fig 22    cluster mode x memory mode grid          fig22_modes
Fig 23    profile data-to-MC mapping               fig23_data_mapping
Fig 24    energy savings                           fig24_energy
========  =======================================  =======================
"""

from repro.experiments.common import (
    DEFAULT_APPS,
    AppComparison,
    compare_app,
    paper_machine,
    clear_cache,
)

__all__ = [
    "DEFAULT_APPS",
    "AppComparison",
    "compare_app",
    "paper_machine",
    "clear_cache",
]
