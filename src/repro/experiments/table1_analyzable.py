"""Table 1: fraction of compile-time-analyzable data references.

The paper reports, per application, the fraction of dynamic data references
whose location the compiler can determine statically (affine subscripts of
loop variables).  Indirect subscripts (through index arrays) are the
non-analyzable remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import DEFAULT_APPS, experiment, experiment_main, format_table
from repro.ir.dependence import analyzable_fraction
from repro.workloads import build_workload

#: The values Table 1 prints (fractions); entries the scan of the paper
#: truncated are carried at our calibrated targets.
PAPER_VALUES: Dict[str, float] = {
    "barnes": 0.683, "cholesky": 0.972, "fft": 0.923, "fmm": 0.744,
    "lu": 0.907, "ocean": 0.773, "radiosity": 0.773, "radix": 0.842,
    "raytrace": 0.802, "water": 0.905, "minimd": 0.874, "minixyce": 0.938,
}


@dataclass
class Table1Result:
    fractions: Dict[str, float]

    def report(self) -> str:
        rows = []
        for app, measured in self.fractions.items():
            paper = PAPER_VALUES.get(app)
            rows.append([
                app,
                f"{measured * 100:.1f}%",
                f"{paper * 100:.1f}%" if paper is not None else "-",
            ])
        return "Table 1: compile-time-analyzable data references\n" + format_table(
            ["app", "measured", "paper"], rows
        )


@experiment("Table 1", 1)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Table1Result:
    fractions = {
        app: analyzable_fraction(build_workload(app, scale, seed)) for app in apps
    }
    return Table1Result(fractions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
