"""Shared experiment infrastructure.

``paper_machine`` is the evaluation platform: the KNL template (6x6 mesh,
32 L2 banks, corner DDR controllers, edge MCDRAM EDCs) with the L1 scaled
to 8KB.  The scaling argument: the paper's applications run 661MB-3.3GB
datasets against 32KB L1s (working-set-to-L1 ratios in the thousands); our
workloads are ~10^3 smaller, so an 8KB L1 restores the
working-set-exceeds-L1 regime every result in Section 6 depends on.  The
machine is otherwise the faithful template; ``knl_machine()`` (32KB L1)
remains available for full-scale runs.

``compare_app`` runs the default placement and the NDP-partitioned version
of one application through the simulator and caches the outcome, since
most figures slice the same 12-app comparison differently.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.cluster_modes import ClusterMode
from repro.arch.machine import Machine, MachineConfig
from repro.arch.memory_modes import MemoryMode
from repro.baselines.default_placement import DefaultPlacement, PlacementResult
from repro.core.partitioner import NdpPartitioner, PartitionConfig, PartitionResult
from repro.faults import FaultPlan
from repro.sim.engine import SimConfig, Simulator
from repro.sim.metrics import SimMetrics
from repro.workloads import ALL_WORKLOAD_NAMES, build_workload

#: Canonical application list (paper Table 1 order).
DEFAULT_APPS: List[str] = list(ALL_WORKLOAD_NAMES)

#: title -> (paper order, run function); filled by the @experiment
#: decorator when the fig*/table* modules import.
_EXPERIMENTS: Dict[str, Tuple[int, Callable]] = {}


def experiment(title: str, order: int) -> Callable:
    """Decorator registering a module's ``run`` as a named experiment.

    Every ``fig*.py``/``table*.py`` decorates its ``run(apps, scale,
    seed)`` with its paper title and ordering key; the suite runner and
    the per-module CLIs (:func:`experiment_main`) are derived from the
    registry instead of copy-pasted lists and argparse blocks.
    """

    def register(fn: Callable) -> Callable:
        _EXPERIMENTS[title] = (order, fn)
        fn.experiment_title = title
        return fn

    return register


def all_experiments() -> List[Tuple[str, Callable]]:
    """Registered (title, run) pairs in paper order (tables, then figures)."""
    return [
        (title, fn)
        for title, (_, fn) in sorted(_EXPERIMENTS.items(), key=lambda kv: kv[1][0])
    ]


def parse_apps(spec: str) -> Optional[List[str]]:
    """A validated app list from a comma-separated ``--apps`` value.

    Returns ``None`` (with a message on stderr) when any name is unknown —
    callers translate that into exit code 2.
    """
    apps = [app.strip() for app in spec.split(",") if app.strip()]
    unknown = [app for app in apps if app not in ALL_WORKLOAD_NAMES]
    if unknown:
        print(
            f"error: unknown app name(s): {', '.join(unknown)}; "
            f"known apps: {', '.join(ALL_WORKLOAD_NAMES)}",
            file=sys.stderr,
        )
        return None
    return apps


def experiment_main(run_fn: Callable, argv: Optional[List[str]] = None) -> int:
    """Shared CLI for one experiment module: ``--apps/--scale/--seed``.

    ``python -m repro.experiments.fig13_movement --apps barnes,fft`` runs
    just that figure; unknown app names exit 2 with a message.
    """
    import argparse

    title = getattr(run_fn, "experiment_title", run_fn.__module__)
    parser = argparse.ArgumentParser(description=f"Run {title}.")
    parser.add_argument("--apps", default="", help="comma-separated app subset")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    apps = DEFAULT_APPS
    if args.apps:
        apps = parse_apps(args.apps)
        if apps is None:
            return 2
    result = run_fn(apps=apps, scale=args.scale, seed=args.seed)
    print(result.report())
    return 0


#: The paper's evaluation mesh (KNL: 6x6 tiles, 32 active L2 banks).
PAPER_MESH = (6, 6)


def paper_machine(
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    mesh_cols: int = PAPER_MESH[0],
    mesh_rows: int = PAPER_MESH[1],
) -> Machine:
    """The evaluation machine (KNL template, L1 scaled to the workload size).

    Defaults to the paper's 6x6/32-bank configuration; passing
    ``mesh_cols``/``mesh_rows`` scales the same template to any
    rectangular mesh (bank count snapping to the largest power of two
    that fits — see :func:`repro.arch.knl.mesh_machine`), which is what
    the mesh-sweep experiment runs.
    """
    if (mesh_cols, mesh_rows) != PAPER_MESH:
        from repro.arch.knl import mesh_machine

        return mesh_machine(
            mesh_cols, mesh_rows,
            cluster_mode=cluster_mode, memory_mode=memory_mode,
        )
    return Machine(
        MachineConfig(
            mesh_cols=mesh_cols,
            mesh_rows=mesh_rows,
            l2_bank_count=32,
            l1_capacity=8 * 1024,
            l1_associativity=8,
            l2_bank_capacity=1 << 20,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
        )
    )


@dataclass
class AppComparison:
    """Default vs optimized outcome for one application."""

    app: str
    default_metrics: SimMetrics
    optimized_metrics: SimMetrics
    partition: PartitionResult
    default_units: int
    optimized_units: int

    # -- paper metrics -----------------------------------------------------

    def movement_reduction(self) -> float:
        """Fractional on-chip data movement reduction (Fig 13's quantity)."""
        base = self.default_metrics.data_movement
        if base <= 0:
            return 0.0
        return (base - self.optimized_metrics.data_movement) / base

    def movement_reduction_max(self) -> float:
        """Max per-statement movement reduction across statements."""
        base = self.default_metrics.movement_by_seq
        opt = self.optimized_metrics.movement_by_seq
        best = 0.0
        for seq, movement in base.items():
            if movement <= 0:
                continue
            reduction = (movement - opt.get(seq, 0)) / movement
            best = max(best, reduction)
        return best

    def time_reduction(self) -> float:
        """Fractional execution-time reduction (Fig 17's quantity)."""
        base = self.default_metrics.total_cycles
        if base <= 0:
            return 0.0
        return (base - self.optimized_metrics.total_cycles) / base

    def l1_improvement(self) -> float:
        """Absolute L1 hit-rate improvement (Fig 16's quantity)."""
        return (
            self.optimized_metrics.l1_hit_rate()
            - self.default_metrics.l1_hit_rate()
        )

    def energy_reduction(self) -> float:
        """Fractional energy reduction (Fig 24's quantity)."""
        base = self.default_metrics.energy_pj
        if base <= 0:
            return 0.0
        return (base - self.optimized_metrics.energy_pj) / base

    def network_latency_reduction(self) -> Tuple[float, float]:
        """(average, maximum) NoC latency reductions (Fig 19)."""
        base_avg = self.default_metrics.network_avg_latency
        base_max = self.default_metrics.network_max_latency
        avg = 0.0 if base_avg <= 0 else (
            (base_avg - self.optimized_metrics.network_avg_latency) / base_avg
        )
        worst = 0.0 if base_max <= 0 else (
            (base_max - self.optimized_metrics.network_max_latency) / base_max
        )
        return avg, worst


_CACHE: Dict[Tuple, AppComparison] = {}
_IDEAL_CACHE: Dict[Tuple, SimMetrics] = {}
_FIXED_CACHE: Dict[Tuple, SimMetrics] = {}


def clear_cache() -> None:
    """Drop all memoized comparisons (tests use this for isolation)."""
    _CACHE.clear()
    _IDEAL_CACHE.clear()
    _FIXED_CACHE.clear()


def ideal_analysis_metrics(app: str, scale: int = 1, seed: int = 0) -> SimMetrics:
    """Simulated metrics of the ideal-data-analysis partition (memoized).

    Shared by Figures 17 and 24, which report the same scenario's time and
    energy respectively.
    """
    key = (app, scale, seed)
    cached = _IDEAL_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.baselines.ideal import partition_with_ideal_analysis

    machine = paper_machine()
    program = build_workload(app, scale, seed)
    partition = partition_with_ideal_analysis(machine, program)
    machine.mcdram.reset()
    metrics = Simulator(machine, SimConfig()).run(partition.units())
    _IDEAL_CACHE[key] = metrics
    return metrics


def fixed_window_metrics(
    app: str,
    size: int,
    scale: int = 1,
    seed: int = 0,
    reuse_aware: bool = True,
) -> SimMetrics:
    """Metrics of the fixed-window-size build (memoized).

    Shared by Figures 20 (time) and 21 (L1 rate).  The adaptive run's split
    plan is held fixed so only the window size varies.
    """
    key = (app, size, scale, seed, reuse_aware)
    cached = _FIXED_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.core.window import WindowConfig

    comparison = compare_app(app, scale, seed)
    config = PartitionConfig(
        window=WindowConfig(reuse_aware=reuse_aware),
        adaptive_window=False,
        fixed_window_size=size,
        split_plan_override=comparison.partition.split_plan,
    )
    _, metrics, _ = run_optimized(app, scale, seed, partition_config=config)
    _FIXED_CACHE[key] = metrics
    return metrics


def run_default(
    app: str,
    scale: int = 1,
    seed: int = 0,
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    sim_config: SimConfig = SimConfig(),
    faults: Optional[FaultPlan] = None,
) -> Tuple[PlacementResult, SimMetrics, Machine]:
    """Default placement of ``app``, simulated; returns placement + metrics."""
    machine = paper_machine(cluster_mode, memory_mode)
    if faults is not None and not faults.is_empty:
        machine.apply_faults(faults)
    program = build_workload(app, scale, seed)
    placement = DefaultPlacement(machine).place(program)
    metrics = Simulator(machine, sim_config).run(placement.units)
    return placement, metrics, machine


def run_optimized(
    app: str,
    scale: int = 1,
    seed: int = 0,
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    partition_config: Optional[PartitionConfig] = None,
    sim_config: SimConfig = SimConfig(),
    faults: Optional[FaultPlan] = None,
    predictor: str = "trace",
) -> Tuple[PartitionResult, SimMetrics, Machine]:
    """NDP-partitioned ``app``, simulated; returns partition + metrics.

    Builds one :class:`~repro.pipeline.session.CompilationSession` per run
    (which owns fault application) and compiles through the pass pipeline
    via the :class:`NdpPartitioner` facade.  ``predictor`` selects the
    miss-prediction pass: ``"trace"`` (the default trace-trained
    predictor) or ``"analytic"`` (the closed-form locality model,
    DESIGN.md §12).
    """
    from repro.pipeline import session_for
    from repro.pipeline.passes import predictor_pass_order

    session = session_for(
        paper_machine(cluster_mode, memory_mode),
        config=partition_config or PartitionConfig(),
        faults=faults,
        pass_order=predictor_pass_order(predictor),
    )
    machine = session.machine
    program = build_workload(app, scale, seed)
    partitioner = NdpPartitioner.from_session(session)
    partition = partitioner.partition(program)
    machine.mcdram.reset()
    metrics = Simulator(machine, sim_config).run(partition.units())
    return partition, metrics, machine


def compare_app(
    app: str,
    scale: int = 1,
    seed: int = 0,
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    faults: Optional[FaultPlan] = None,
    predictor: str = "trace",
) -> AppComparison:
    """Default-vs-optimized comparison for one app (memoized).

    A non-empty ``faults`` plan degrades both machines before placement;
    the memoization key includes the plan's fingerprint (and the chosen
    predictor), so healthy/degraded and trace/analytic comparisons of the
    same app never collide.
    """
    if faults is not None and faults.is_empty:
        faults = None
    fault_key = None if faults is None else faults.fingerprint()
    key = (app, scale, seed, cluster_mode, memory_mode, fault_key, predictor)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    _, default_metrics, _ = run_default(
        app, scale, seed, cluster_mode, memory_mode, faults=faults
    )
    partition, optimized_metrics, _ = run_optimized(
        app, scale, seed, cluster_mode, memory_mode, faults=faults,
        predictor=predictor,
    )
    comparison = AppComparison(
        app=app,
        default_metrics=default_metrics,
        optimized_metrics=optimized_metrics,
        partition=partition,
        default_units=default_metrics.unit_count,
        optimized_units=optimized_metrics.unit_count,
    )
    _CACHE[key] = comparison
    return comparison


def _prewarm_compare(args) -> Tuple[Tuple, AppComparison]:
    """Worker: one (app, cluster, memory) comparison, cache-key + value."""
    app, scale, seed, cluster_mode, memory_mode = args
    comparison = compare_app(app, scale, seed, cluster_mode, memory_mode)
    return (
        (app, scale, seed, cluster_mode, memory_mode, None, "trace"),
        comparison,
    )


def _prewarm_ideal(args) -> Tuple[Tuple, SimMetrics]:
    """Worker: the ideal-analysis metrics of one app."""
    app, scale, seed = args
    return (app, scale, seed), ideal_analysis_metrics(app, scale, seed)


def _prewarm_fixed(args) -> Tuple[Tuple, SimMetrics]:
    """Worker: one fixed-window-size build, given the adaptive split plan.

    Replicates :func:`fixed_window_metrics` without recomputing the app
    comparison — the caller passes the already-computed split plan in.
    """
    app, size, scale, seed, reuse_aware, split_plan = args
    from repro.core.window import WindowConfig

    config = PartitionConfig(
        window=WindowConfig(reuse_aware=reuse_aware),
        adaptive_window=False,
        fixed_window_size=size,
        split_plan_override=split_plan,
    )
    _, metrics, _ = run_optimized(app, scale, seed, partition_config=config)
    return (app, size, scale, seed, reuse_aware), metrics


def prewarm(
    apps: List[str],
    scale: int = 1,
    seed: int = 0,
    jobs: int = 1,
    cluster_modes: Tuple[ClusterMode, ...] = (
        ClusterMode.ALL_TO_ALL,
        ClusterMode.QUADRANT,
        ClusterMode.SNC4,
    ),
    memory_modes: Tuple[MemoryMode, ...] = (MemoryMode.FLAT, MemoryMode.CACHE),
    window_sizes: Tuple[int, ...] = tuple(range(1, 9)),
) -> None:
    """Fill the comparison caches in parallel across ``jobs`` processes.

    Every experiment then reads memoized results, so a subsequent serial
    ``run_all`` pass emits byte-identical reports while the heavy per-app
    compile+simulate work fans out over :func:`repro.pipeline.run_pool`
    (the same ``--jobs`` worker-pool idiom as ``compile_many``).  Two
    phases: (1) all (app, cluster, memory) comparisons plus the
    ideal-analysis runs; (2) the fixed-window sweeps, which need phase 1's
    split plans.
    """
    from repro.pipeline import run_pool

    compare_tasks = [
        (app, scale, seed, cluster, memory)
        for app in apps
        for cluster in cluster_modes
        for memory in memory_modes
    ]
    ideal_tasks = [(app, scale, seed) for app in apps]
    for key, comparison in run_pool(_prewarm_compare, compare_tasks, jobs):
        _CACHE[key] = comparison
    for key, metrics in run_pool(_prewarm_ideal, ideal_tasks, jobs):
        _IDEAL_CACHE[key] = metrics
    fixed_tasks = [
        (
            app,
            size,
            scale,
            seed,
            True,
            _CACHE[
                (app, scale, seed, ClusterMode.QUADRANT, MemoryMode.FLAT,
                 None, "trace")
            ].partition.split_plan,
        )
        for app in apps
        for size in window_sizes
    ]
    for key, metrics in run_pool(_prewarm_fixed, fixed_tasks, jobs):
        _FIXED_CACHE[key] = metrics


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Plain-text table used by every experiment's report."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
