"""Figure 23: comparison against a profile-based data-to-MC mapping.

Three bars per application (execution-time improvement over the default):

* ours — computation mapping (the paper's scheme);
* data mapping — default computation placement, pages remapped to the MC
  preferred by their accessing cores (profile-based, Section 6.5);
* combined — our computation mapping plus the data mapping.

Paper geomeans: 18.4% / 7.9% / 21.4% — data mapping alone is weaker
(pages used by central cores have no clearly-preferable controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.data_mapping import profile_page_mc_mapping
from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
    paper_machine,
)
from repro.sim.engine import SimConfig, Simulator
from repro.utils.stats import geomean
from repro.workloads import build_workload
from repro.baselines.default_placement import DefaultPlacement


@dataclass
class Fig23Result:
    # app -> (ours, data mapping, combined) time reductions
    reductions: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        def geo(index: int) -> float:
            return geomean([max(r[index], 1e-4) for r in self.reductions.values()])

        return geo(0), geo(1), geo(2)

    def means(self) -> Tuple[float, float, float]:
        def mean(index: int) -> float:
            values = [r[index] for r in self.reductions.values()]
            return sum(values) / len(values) if values else 0.0

        return mean(0), mean(1), mean(2)

    def report(self) -> str:
        rows = [
            [app, f"{ours * 100:.1f}%", f"{dmap * 100:.1f}%", f"{both * 100:.1f}%"]
            for app, (ours, dmap, both) in self.reductions.items()
        ]
        g = self.means()
        rows.append(["mean"] + [f"{v * 100:.1f}%" for v in g])
        return (
            "Figure 23: ours vs profile data-to-MC mapping vs combined\n"
            + format_table(["app", "ours", "data-map", "combined"], rows)
        )


@experiment("Figure 23", 23)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig23Result:
    reductions: Dict[str, Tuple[float, float, float]] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        base = comparison.default_metrics.total_cycles
        ours = comparison.time_reduction()

        # Data mapping alone: default placement + page->MC override.
        machine = paper_machine()
        program = build_workload(app, scale, seed)
        placement = DefaultPlacement(machine).place(program)
        mapping = profile_page_mc_mapping(machine, placement.units)
        machine.mcdram.reset()
        metrics = Simulator(machine, SimConfig(mc_override=mapping)).run(
            placement.units
        )
        data_only = (base - metrics.total_cycles) / base if base else 0.0

        # Combined: our schedule + the same page->MC override.
        machine2 = paper_machine()
        build_workload(app, scale, seed).declare_on(machine2)
        units = comparison.partition.units()
        mapping2 = profile_page_mc_mapping(machine2, units)
        machine2.mcdram.reset()
        metrics2 = Simulator(machine2, SimConfig(mc_override=mapping2)).run(units)
        combined = (base - metrics2.total_cycles) / base if base else 0.0

        reductions[app] = (ours, data_only, combined)
    return Fig23Result(reductions)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
