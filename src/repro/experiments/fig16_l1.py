"""Figure 16: improvement in L1 hit rate over the default placement.

The default is already locality-optimized for the LLC; our windows add L1
reuse on top (paper average: +11.6%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    DEFAULT_APPS,
    compare_app,
    experiment,
    experiment_main,
    format_table,
)
from repro.utils.stats import mean


@dataclass
class Fig16Result:
    improvement: Dict[str, float]         # absolute hit-rate delta
    default_rate: Dict[str, float]
    optimized_rate: Dict[str, float]

    def average_improvement(self) -> float:
        return mean(self.improvement.values())

    def report(self) -> str:
        rows = [
            [
                app,
                f"{self.default_rate[app] * 100:.1f}%",
                f"{self.optimized_rate[app] * 100:.1f}%",
                f"{delta * 100:+.1f}%",
            ]
            for app, delta in self.improvement.items()
        ]
        rows.append(["mean", "", "", f"{self.average_improvement() * 100:+.1f}%"])
        return "Figure 16: L1 hit rate improvement\n" + format_table(
            ["app", "default", "optimized", "delta"], rows
        )


@experiment("Figure 16", 16)
def run(apps: List[str] = DEFAULT_APPS, scale: int = 1, seed: int = 0) -> Fig16Result:
    improvement: Dict[str, float] = {}
    default_rate: Dict[str, float] = {}
    optimized_rate: Dict[str, float] = {}
    for app in apps:
        comparison = compare_app(app, scale, seed)
        default_rate[app] = comparison.default_metrics.l1_hit_rate()
        optimized_rate[app] = comparison.optimized_metrics.l1_hit_rate()
        improvement[app] = comparison.l1_improvement()
    return Fig16Result(improvement, default_rate, optimized_rate)


if __name__ == "__main__":
    raise SystemExit(experiment_main(run))
