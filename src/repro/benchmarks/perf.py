"""Compile/simulate timing harness.

``python -m repro.benchmarks.perf [--apps a,b | --tiny | --smoke]
[--out FILE] [--trace FILE]`` times each pipeline phase per application
— workload build, NDP
partitioning (the compile step, including the window-size search),
default-placement simulation, and optimized simulation — and writes the
results to ``BENCH_compile.json``.

The JSON schema (version 1):

    {
      "version": 1,
      "scale": 1, "seed": 0, "jobs": 1,
      "apps": [
        {"app": "barnes",
         "phases": {"build": 0.01, "partition": 3.2,
                    "simulate_default": 1.1, "simulate_optimized": 1.0},
         "total_seconds": 5.31}
      ],
      "total_seconds": 5.31
    }

``--tiny`` benchmarks a built-in two-statement synthetic app on the
small 4x4 machine instead of paper workloads; it finishes in well under
a second, so the smoke test in ``tests/test_perf_harness.py`` (and
``make bench-smoke``) can validate the harness inside tier 1.

``--smoke`` benchmarks the :data:`SMOKE_APPS` subset of real workloads
(the apps recorded in the committed ``BENCH_compile.json`` baseline) —
what CI's bench-regression job runs and then compares with
:mod:`repro.benchmarks.regression`.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable, Dict, List, Optional

from repro.arch.knl import small_machine
from repro.arch.machine import Machine
from repro.baselines.default_placement import DefaultPlacement
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.core.window import WindowConfig
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.sim.engine import SimConfig, Simulator

SCHEMA_VERSION = 1
PHASES = ("build", "partition", "simulate_default", "simulate_optimized")

#: Real-workload subset benchmarked by ``--smoke`` (matches the committed
#: BENCH_compile.json baseline that CI's regression check compares against).
SMOKE_APPS = ("barnes", "cholesky", "minimd")


def tiny_app() -> Program:
    """Built-in synthetic app: two statements sharing C(i) (paper Fig 11)."""
    p = Program("tiny")
    for name in ("A", "B", "C", "D", "E", "X", "Y"):
        p.declare(name, 512)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 32)],
            [
                parse_statement("A(i) = B(i) + C(i) + D(i) + E(i)"),
                parse_statement("X(i) = Y(i) + C(i)"),
            ],
            "main",
        )
    )
    return p


def _timed(fn: Callable):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def bench_app(
    app: str,
    scale: int = 1,
    seed: int = 0,
    jobs: int = 1,
    machine_factory: Optional[Callable[[], Machine]] = None,
    program_factory: Optional[Callable[[], Program]] = None,
) -> Dict:
    """Time each pipeline phase for one app; returns a schema `apps` entry."""
    if machine_factory is None:
        from repro.experiments.common import paper_machine

        machine_factory = paper_machine
    if program_factory is None:
        from repro.workloads import build_workload

        program_factory = lambda: build_workload(app, scale, seed)

    phases: Dict[str, float] = {}

    program, phases["build"] = _timed(program_factory)

    compile_machine = machine_factory()
    config = PartitionConfig(window=WindowConfig(jobs=jobs))
    partition, phases["partition"] = _timed(
        lambda: NdpPartitioner(compile_machine, config).partition(program)
    )

    default_machine = machine_factory()
    placement, _ = _timed(lambda: DefaultPlacement(default_machine).place(program))
    _, phases["simulate_default"] = _timed(
        lambda: Simulator(default_machine, SimConfig()).run(placement.units)
    )

    compile_machine.mcdram.reset()
    _, phases["simulate_optimized"] = _timed(
        lambda: Simulator(compile_machine, SimConfig()).run(partition.units())
    )

    return {
        "app": app,
        "phases": {name: round(phases[name], 6) for name in PHASES},
        "total_seconds": round(sum(phases.values()), 6),
    }


def run_bench(
    apps: List[str],
    scale: int = 1,
    seed: int = 0,
    jobs: int = 1,
    tiny: bool = False,
) -> Dict:
    """Benchmark every app and assemble the BENCH_compile.json payload."""
    entries = []
    for app in apps:
        if tiny:
            entry = bench_app(
                app,
                scale,
                seed,
                jobs,
                machine_factory=small_machine,
                program_factory=tiny_app,
            )
        else:
            entry = bench_app(app, scale, seed, jobs)
        entries.append(entry)
    return {
        "version": SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        "apps": entries,
        "total_seconds": round(sum(e["total_seconds"] for e in entries), 6),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", default="", help="comma-separated app subset")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="benchmark the built-in tiny synthetic app on the small machine",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"benchmark the CI regression subset: {', '.join(SMOKE_APPS)}",
    )
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="WindowConfig.jobs for the partition phase (1 = serial)",
    )
    parser.add_argument("--out", default="BENCH_compile.json")
    parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write structured JSONL trace events to FILE (adds a little "
        "I/O to the timed phases; leave off for clean numbers)",
    )
    args = parser.parse_args(argv)

    if sum(bool(flag) for flag in (args.tiny, args.smoke, args.apps)) > 1:
        parser.error("--tiny, --smoke, and --apps are mutually exclusive")
    if args.tiny:
        apps = ["tiny"]
    elif args.smoke:
        apps = list(SMOKE_APPS)
    elif args.apps:
        apps = [a.strip() for a in args.apps.split(",") if a.strip()]
        from repro.workloads import ALL_WORKLOAD_NAMES

        unknown = [a for a in apps if a not in ALL_WORKLOAD_NAMES]
        if unknown:
            parser.error(
                f"unknown app name(s): {', '.join(unknown)}; "
                f"known apps: {', '.join(ALL_WORKLOAD_NAMES)}"
            )
    else:
        from repro.experiments.common import DEFAULT_APPS

        apps = list(DEFAULT_APPS)

    if args.trace:
        from repro.obs.tracer import tracing

        with tracing(args.trace):
            payload = run_bench(
                apps, args.scale, args.seed, args.jobs, tiny=args.tiny
            )
    else:
        payload = run_bench(apps, args.scale, args.seed, args.jobs, tiny=args.tiny)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for entry in payload["apps"]:
        parts = "  ".join(
            f"{name}={entry['phases'][name]:.3f}s" for name in PHASES
        )
        print(f"{entry['app']:>12}  {parts}  total={entry['total_seconds']:.3f}s")
    print(f"wrote {args.out} ({payload['total_seconds']:.3f}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
