"""Timing harnesses for the compile (partition) and simulate pipelines."""
