"""Bench-regression gate: compare a fresh perf run against the baseline.

``python -m repro.benchmarks.regression --baseline BENCH_compile.json
--fresh BENCH_fresh.json [--tolerance 3.0]`` compares per-app
``total_seconds`` between a committed baseline (produced by
:mod:`repro.benchmarks.perf`) and a freshly measured run.  An app
*regresses* when its fresh total exceeds ``tolerance x`` its baseline
total; any regression (or an app missing from the fresh run) prints a
clear verdict line and exits 1, which is what fails CI's
``bench-regression`` job.

The default tolerance is deliberately generous (3x): shared CI runners
have noisy wall clocks, and this gate exists to catch order-of-magnitude
algorithmic regressions (an accidentally quadratic search, a dropped
cache), not a few percent of jitter.  Apps present only in the fresh run
are reported but never fail the gate, so the baseline can trail the app
list without blocking.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

#: Fresh total may be up to this multiple of baseline before failing.
DEFAULT_TOLERANCE = 3.0


def _totals(payload: Dict) -> Dict[str, float]:
    """app name -> total_seconds from one BENCH_compile.json payload."""
    return {
        entry["app"]: float(entry["total_seconds"])
        for entry in payload.get("apps", [])
    }


def compare(
    baseline: Dict, fresh: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression messages (empty = pass) comparing two bench payloads."""
    problems: List[str] = []
    baseline_totals = _totals(baseline)
    fresh_totals = _totals(fresh)
    for app, base_seconds in sorted(baseline_totals.items()):
        if app not in fresh_totals:
            problems.append(f"{app}: present in baseline but not benchmarked")
            continue
        if base_seconds <= 0:
            # A zero-time baseline admits no meaningful ratio (any positive
            # fresh time would be "infinitely" slower); such entries come
            # from clock granularity, not from a measured budget.
            continue
        fresh_seconds = fresh_totals[app]
        limit = tolerance * base_seconds
        if fresh_seconds > limit:
            problems.append(
                f"{app}: {fresh_seconds:.2f}s exceeds {tolerance:.1f}x "
                f"baseline {base_seconds:.2f}s (limit {limit:.2f}s)"
            )
    return problems


def _load(path: str, role: str) -> Optional[Dict]:
    """Parse one bench JSON; None (with a clear stderr line) on failure."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        print(
            f"error: {role} file {path!r} does not exist "
            f"(generate it with `python -m repro.benchmarks.perf`)",
            file=sys.stderr,
        )
    except json.JSONDecodeError as exc:
        print(f"error: {role} file {path!r} is not valid JSON: {exc}", file=sys.stderr)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_compile.json",
        help="committed baseline JSON (default: BENCH_compile.json)",
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly measured perf JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fresh/baseline wall-time ratio (default %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline, "baseline")
    fresh = _load(args.fresh, "fresh")
    if baseline is None or fresh is None:
        return 2

    baseline_totals = _totals(baseline)
    fresh_totals = _totals(fresh)
    for app in sorted(set(baseline_totals) | set(fresh_totals)):
        base = baseline_totals.get(app)
        new = fresh_totals.get(app)
        if base is None:
            print(f"{app:>12}  (no baseline)  fresh={new:.2f}s")
        elif new is None:
            print(f"{app:>12}  baseline={base:.2f}s  (not benchmarked)")
        elif base <= 0:
            print(f"{app:>12}  baseline={base:.2f}s  fresh={new:.2f}s  (no ratio)")
        else:
            print(
                f"{app:>12}  baseline={base:.2f}s  fresh={new:.2f}s  "
                f"ratio={new / base:.2f}x"
            )

    problems = compare(baseline, fresh, args.tolerance)
    if problems:
        print(
            f"\nbench regression (tolerance {args.tolerance:.1f}x):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"\nok: no app exceeds {args.tolerance:.1f}x its baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
