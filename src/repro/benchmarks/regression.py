"""Bench-regression gate: compare fresh perf runs against baselines.

``python -m repro.benchmarks.regression --baseline BENCH_compile.json
--fresh BENCH_fresh.json [--tolerance 3.0]`` compares per-app
``total_seconds`` between a committed baseline (produced by
:mod:`repro.benchmarks.perf`) and a freshly measured run.  An app
*regresses* when its fresh total exceeds ``tolerance x`` its baseline
total; any regression (or an app missing from the fresh run) prints a
clear verdict line and exits 1, which is what fails CI's
``bench-regression`` job.

The service path is gated the same way: ``--serve-baseline
BENCH_serve.json --serve-fresh BENCH_serve_fresh.json
[--serve-tolerance 5.0]`` compares the load harness's per-phase p99
latency (fresh must stay under ``tolerance x`` baseline) and throughput
(fresh must stay above ``baseline / tolerance``), so a service-path
regression — a dropped cache, an accidentally serialized queue — fails
the job exactly like a compile-path one.  Either comparison (or both)
may be requested; at least one pair is required.

The mesh sweep is gated with ``--mesh-baseline BENCH_mesh.json
--mesh-fresh BENCH_mesh_fresh.json [--mesh-tolerance 3.0]``: the
deterministic fields of every baseline entry (coverage, chunk/alive
counts, the auto flat-vs-hierarchical decision) must match exactly, the
hierarchical search's wall time may not exceed ``tolerance x`` its
baseline, and on meshes where the hierarchical search won on average it
must keep at least ``baseline_speedup / tolerance`` — so losing the
crossover entirely (a regressed hierarchical search) fails CI while
normal runner jitter does not.

The default tolerances are deliberately generous (3x compile, 5x
serve): shared CI runners have noisy wall clocks, and this gate exists
to catch order-of-magnitude algorithmic regressions (an accidentally
quadratic search, a dropped cache), not a few percent of jitter.  Apps
present only in the fresh run are reported but never fail the gate, so
the baseline can trail the app list without blocking.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

#: Fresh total may be up to this multiple of baseline before failing.
DEFAULT_TOLERANCE = 3.0

#: Service latency/throughput tolerance (serve numbers are noisier than
#: compile totals: they mix queueing, fork scheduling, and loopback TCP).
DEFAULT_SERVE_TOLERANCE = 5.0

#: Mesh-sweep entries faster than this are below timer/scheduler noise
#: (6x6 searches finish in well under a millisecond); the per-entry
#: hierarchical-time ratio only gates entries slower than the floor.
MESH_TIME_FLOOR_SECONDS = 0.005


def _totals(payload: Dict) -> Dict[str, float]:
    """app name -> total_seconds from one BENCH_compile.json payload."""
    return {
        entry["app"]: float(entry["total_seconds"])
        for entry in payload.get("apps", [])
    }


def compare(
    baseline: Dict, fresh: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression messages (empty = pass) comparing two bench payloads."""
    problems: List[str] = []
    baseline_totals = _totals(baseline)
    fresh_totals = _totals(fresh)
    for app, base_seconds in sorted(baseline_totals.items()):
        if app not in fresh_totals:
            problems.append(f"{app}: present in baseline but not benchmarked")
            continue
        if base_seconds <= 0:
            # A zero-time baseline admits no meaningful ratio (any positive
            # fresh time would be "infinitely" slower); such entries come
            # from clock granularity, not from a measured budget.
            continue
        fresh_seconds = fresh_totals[app]
        limit = tolerance * base_seconds
        if fresh_seconds > limit:
            problems.append(
                f"{app}: {fresh_seconds:.2f}s exceeds {tolerance:.1f}x "
                f"baseline {base_seconds:.2f}s (limit {limit:.2f}s)"
            )
    return problems


def compare_serve(
    baseline: Dict, fresh: Dict, tolerance: float = DEFAULT_SERVE_TOLERANCE
) -> List[str]:
    """Regression messages (empty = pass) comparing two serve payloads.

    Per phase (``cold``, ``warm``): fresh p99 latency must stay under
    ``tolerance x`` baseline p99, and fresh throughput must stay above
    ``baseline / tolerance``.  A phase absent from the fresh run is a
    regression; one absent from both is skipped, and zero baselines
    (clock granularity, empty phases) admit no ratio and never fail.
    """
    problems: List[str] = []
    for phase in ("cold", "warm"):
        base = baseline.get(phase)
        new = fresh.get(phase)
        if base is None:
            continue
        if new is None:
            problems.append(f"serve/{phase}: present in baseline but not measured")
            continue
        base_p99 = float(base.get("p99_ms", 0.0))
        new_p99 = float(new.get("p99_ms", 0.0))
        if base_p99 > 0 and new_p99 > tolerance * base_p99:
            problems.append(
                f"serve/{phase}: p99 {new_p99:.1f}ms exceeds {tolerance:.1f}x "
                f"baseline {base_p99:.1f}ms (limit {tolerance * base_p99:.1f}ms)"
            )
        base_rps = float(base.get("throughput_rps", 0.0))
        new_rps = float(new.get("throughput_rps", 0.0))
        if base_rps > 0 and new_rps < base_rps / tolerance:
            problems.append(
                f"serve/{phase}: throughput {new_rps:.1f} req/s below "
                f"baseline {base_rps:.1f} / {tolerance:.1f} "
                f"(floor {base_rps / tolerance:.1f} req/s)"
            )
    return problems


def _mesh_entries(payload: Dict) -> Dict:
    """(app, mesh) -> entry from one BENCH_mesh.json payload."""
    return {
        (entry["app"], entry["mesh"]): entry
        for entry in payload.get("entries", [])
    }


def compare_mesh(
    baseline: Dict, fresh: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression messages (empty = pass) comparing two mesh-sweep payloads.

    Deterministic fields gate exactly; timings gate by ratio.  Per
    baseline entry: it must be present in the fresh sweep with the same
    chunk/alive counts and the same auto search decision, and the fresh
    hierarchical time may not exceed ``tolerance x`` baseline — unless it
    is under :data:`MESH_TIME_FLOOR_SECONDS`, where ratios are timer
    noise rather than algorithmic regressions.  Per mesh
    where the baseline's mean speedup beat flat (the crossover side),
    the fresh mean speedup must stay above ``baseline / tolerance``.
    """
    problems: List[str] = []
    base_entries = _mesh_entries(baseline)
    fresh_entries = _mesh_entries(fresh)
    for (app, mesh), base in sorted(base_entries.items()):
        new = fresh_entries.get((app, mesh))
        if new is None:
            problems.append(f"{app}@{mesh}: present in baseline but not swept")
            continue
        for field in ("chunks", "alive", "auto_search"):
            if base.get(field) != new.get(field):
                problems.append(
                    f"{app}@{mesh}: deterministic field {field!r} changed "
                    f"({base.get(field)!r} -> {new.get(field)!r})"
                )
        base_hier = float(base.get("hier_seconds", 0.0))
        new_hier = float(new.get("hier_seconds", 0.0))
        if (
            base_hier > 0
            and new_hier > MESH_TIME_FLOOR_SECONDS
            and new_hier > tolerance * base_hier
        ):
            problems.append(
                f"{app}@{mesh}: hierarchical search {new_hier * 1e3:.2f}ms "
                f"exceeds {tolerance:.1f}x baseline {base_hier * 1e3:.2f}ms"
            )
    base_summary = baseline.get("summary", {})
    fresh_summary = fresh.get("summary", {})
    for mesh, base_speedup in sorted(base_summary.items()):
        base_speedup = float(base_speedup)
        if base_speedup <= 1.0:
            continue  # flat won at this size; nothing to defend
        new_speedup = float(fresh_summary.get(mesh, 0.0))
        floor = base_speedup / tolerance
        if new_speedup < floor:
            problems.append(
                f"mesh {mesh}: mean hierarchical speedup {new_speedup:.2f}x "
                f"below baseline {base_speedup:.2f}x / {tolerance:.1f} "
                f"(floor {floor:.2f}x)"
            )
    return problems


def _load(path: str, role: str) -> Optional[Dict]:
    """Parse one bench JSON; None (with a clear stderr line) on failure."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        print(
            f"error: {role} file {path!r} does not exist "
            f"(generate it with `python -m repro.benchmarks.perf`)",
            file=sys.stderr,
        )
    except json.JSONDecodeError as exc:
        print(f"error: {role} file {path!r} is not valid JSON: {exc}", file=sys.stderr)
    return None


def _report_compile(baseline: Dict, fresh: Dict) -> None:
    """Print the per-app baseline/fresh/ratio table."""
    baseline_totals = _totals(baseline)
    fresh_totals = _totals(fresh)
    for app in sorted(set(baseline_totals) | set(fresh_totals)):
        base = baseline_totals.get(app)
        new = fresh_totals.get(app)
        if base is None:
            print(f"{app:>12}  (no baseline)  fresh={new:.2f}s")
        elif new is None:
            print(f"{app:>12}  baseline={base:.2f}s  (not benchmarked)")
        elif base <= 0:
            print(f"{app:>12}  baseline={base:.2f}s  fresh={new:.2f}s  (no ratio)")
        else:
            print(
                f"{app:>12}  baseline={base:.2f}s  fresh={new:.2f}s  "
                f"ratio={new / base:.2f}x"
            )


def _report_serve(baseline: Dict, fresh: Dict) -> None:
    """Print the per-phase serve baseline/fresh table."""
    for phase in ("cold", "warm"):
        base = baseline.get(phase)
        new = fresh.get(phase)
        if base is None and new is None:
            continue
        base_p99 = float((base or {}).get("p99_ms", 0.0))
        base_rps = float((base or {}).get("throughput_rps", 0.0))
        new_p99 = float((new or {}).get("p99_ms", 0.0))
        new_rps = float((new or {}).get("throughput_rps", 0.0))
        print(
            f"{'serve/' + phase:>12}  "
            f"p99 {base_p99:.1f}ms -> {new_p99:.1f}ms  "
            f"throughput {base_rps:.1f} -> {new_rps:.1f} req/s"
        )


def _report_mesh(baseline: Dict, fresh: Dict) -> None:
    """Print the per-mesh mean-speedup comparison and crossover meshes."""
    base_summary = baseline.get("summary", {})
    fresh_summary = fresh.get("summary", {})
    for mesh in sorted(set(base_summary) | set(fresh_summary)):
        base = base_summary.get(mesh)
        new = fresh_summary.get(mesh)
        base_text = "(no baseline)" if base is None else f"{float(base):.2f}x"
        new_text = "(not swept)" if new is None else f"{float(new):.2f}x"
        print(f"{'mesh ' + mesh:>12}  mean speedup {base_text} -> {new_text}")
    print(
        f"{'crossover':>12}  {baseline.get('crossover_mesh')!r} -> "
        f"{fresh.get('crossover_mesh')!r}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="",
        help="committed compile baseline JSON (e.g. BENCH_compile.json)",
    )
    parser.add_argument(
        "--fresh", default="", help="freshly measured compile perf JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fresh/baseline wall-time ratio (default %(default)s)",
    )
    parser.add_argument(
        "--serve-baseline",
        default="",
        help="committed serve baseline JSON (e.g. BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-fresh", default="", help="freshly measured serve load JSON"
    )
    parser.add_argument(
        "--serve-tolerance",
        type=float,
        default=DEFAULT_SERVE_TOLERANCE,
        help="allowed serve p99/throughput ratio (default %(default)s)",
    )
    parser.add_argument(
        "--mesh-baseline",
        default="",
        help="committed mesh-sweep baseline JSON (e.g. BENCH_mesh.json)",
    )
    parser.add_argument(
        "--mesh-fresh", default="", help="freshly measured mesh-sweep JSON"
    )
    parser.add_argument(
        "--mesh-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed mesh-sweep time/speedup ratio (default %(default)s)",
    )
    args = parser.parse_args(argv)

    if bool(args.baseline or args.fresh) and not (args.baseline and args.fresh):
        # --baseline used to default to BENCH_compile.json; keep that for
        # callers who pass only --fresh.
        args.baseline = args.baseline or "BENCH_compile.json"
        if not args.fresh:
            parser.error("--baseline requires --fresh")
    if bool(args.serve_baseline) != bool(args.serve_fresh):
        parser.error("--serve-baseline and --serve-fresh go together")
    if bool(args.mesh_baseline) != bool(args.mesh_fresh):
        parser.error("--mesh-baseline and --mesh-fresh go together")
    if not args.fresh and not args.serve_fresh and not args.mesh_fresh:
        parser.error(
            "nothing to compare: pass --baseline/--fresh, "
            "--serve-baseline/--serve-fresh, and/or "
            "--mesh-baseline/--mesh-fresh"
        )

    problems: List[str] = []
    if args.fresh:
        baseline = _load(args.baseline, "baseline")
        fresh = _load(args.fresh, "fresh")
        if baseline is None or fresh is None:
            return 2
        _report_compile(baseline, fresh)
        problems += compare(baseline, fresh, args.tolerance)
    if args.serve_fresh:
        serve_baseline = _load(args.serve_baseline, "serve baseline")
        serve_fresh = _load(args.serve_fresh, "serve fresh")
        if serve_baseline is None or serve_fresh is None:
            return 2
        _report_serve(serve_baseline, serve_fresh)
        problems += compare_serve(serve_baseline, serve_fresh, args.serve_tolerance)
    if args.mesh_fresh:
        mesh_baseline = _load(args.mesh_baseline, "mesh baseline")
        mesh_fresh = _load(args.mesh_fresh, "mesh fresh")
        if mesh_baseline is None or mesh_fresh is None:
            return 2
        _report_mesh(mesh_baseline, mesh_fresh)
        problems += compare_mesh(mesh_baseline, mesh_fresh, args.mesh_tolerance)

    if problems:
        print("\nbench regression:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("\nok: no benchmark exceeds its tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
