"""``repro.serve`` — compile-as-a-service on top of the pass pipeline.

The "millions of users" story (ROADMAP item 1): a long-lived daemon that
answers compile requests from a content-addressed artifact cache and
shards cache misses across a persistent pool of forked compile workers.

* :mod:`repro.serve.request` — :class:`CompileRequest` and the canonical
  fingerprint that keys the cache (covers program, machine, predictor
  choice, skip-pass set, and fault plan);
* :mod:`repro.serve.store` — :class:`ArtifactStore`, the disk-backed
  LRU-capped content-addressed cache with atomic writes;
* :mod:`repro.serve.compiler` — deterministic request execution
  (request in, canonical artifact bytes out; runs inside workers);
* :mod:`repro.serve.daemon` — the HTTP daemon: bounded queue with 429
  backpressure, single-flight deduplication, worker respawn-and-retry,
  graceful SIGTERM drain, per-request tracing;
* :mod:`repro.serve.client` — the stdlib keep-alive client
  (``repro.cli client``);
* :mod:`repro.serve.loadgen` — the load-test harness behind
  ``make serve-smoke`` and ``BENCH_serve.json``.

Architecture and measured numbers: DESIGN.md §13.
"""

from repro.serve.client import ServeClient, ServeResponseError
from repro.serve.compiler import compile_artifact, compile_bytes
from repro.serve.daemon import (
    Backpressure,
    CompileService,
    Draining,
    ServeConfig,
    ServeDaemon,
)
from repro.serve.request import CompileRequest
from repro.serve.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "Backpressure",
    "CompileRequest",
    "CompileService",
    "Draining",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeResponseError",
    "compile_artifact",
    "compile_bytes",
]
