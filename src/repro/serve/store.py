"""Content-addressed artifact store: fingerprint -> artifact bytes on disk.

One artifact per file, named ``<fingerprint>.json`` under the cache
directory.  Three properties matter:

* **Atomic writes** — an artifact is written to a temporary file in the
  same directory and ``os.replace``-d into place, so a reader never sees
  a torn artifact and two writers racing on the same fingerprint both
  leave a complete (identical — the store is content-addressed) file.
* **LRU size cap** — the store tracks total bytes; putting an artifact
  past ``capacity_bytes`` evicts least-recently-*used* artifacts first
  (use = hit or put; recency is tracked in-process, seeded from file
  mtimes on startup so a restarted daemon evicts sensibly).
* **Thread safety** — the daemon's handler threads share one store; all
  index mutations happen under a lock.  Byte content needs no locking
  beyond atomic replace.

The store never invents artifacts: a ``get`` on a file deleted out from
under it (or unreadable) is a miss, not an error.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

#: Default size cap: plenty for tens of thousands of tiny artifacts but
#: small enough that a runaway load test cannot fill a CI disk.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


class ArtifactStore:
    """Disk-backed, LRU-capped, content-addressed artifact cache."""

    def __init__(
        self, root: str, capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.root = root
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        #: fingerprint -> size in bytes, in LRU order (oldest first).
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        os.makedirs(root, exist_ok=True)
        self._load_index()

    # -- paths -------------------------------------------------------------

    def path_of(self, fingerprint: str) -> str:
        """The artifact file of one fingerprint (may not exist)."""
        return os.path.join(self.root, f"{fingerprint}.json")

    def _load_index(self) -> None:
        """Seed the LRU index from existing files, oldest mtime first."""
        entries = []
        for name in os.listdir(self.root):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, name[: -len(".json")], stat.st_size))
        for _, fingerprint, size in sorted(entries):
            self._index[fingerprint] = size
            self._total_bytes += size

    # -- store API ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The cached artifact bytes, or ``None`` (counts hit/miss)."""
        try:
            with open(self.path_of(fingerprint), "rb") as fh:
                blob = fh.read()
        except OSError:
            with self._lock:
                self.misses += 1
                # The file is gone regardless of what the index believed.
                size = self._index.pop(fingerprint, None)
                if size is not None:
                    self._total_bytes -= size
            return None
        with self._lock:
            self.hits += 1
            size = self._index.pop(fingerprint, len(blob))
            self._index[fingerprint] = size  # move to MRU position
        return blob

    def put(self, fingerprint: str, blob: bytes) -> None:
        """Store ``blob`` atomically and evict past the capacity cap."""
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=f".{fingerprint}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_path, self.path_of(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        evict = []
        with self._lock:
            self.puts += 1
            previous = self._index.pop(fingerprint, None)
            if previous is not None:
                self._total_bytes -= previous
            self._index[fingerprint] = len(blob)
            self._total_bytes += len(blob)
            while self._total_bytes > self.capacity_bytes and len(self._index) > 1:
                victim, size = self._index.popitem(last=False)
                self._total_bytes -= size
                self.evictions += 1
                evict.append(victim)
        for victim in evict:
            try:
                os.unlink(self.path_of(victim))
            except OSError:
                pass

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Total bytes currently indexed."""
        with self._lock:
            return self._total_bytes

    def stats(self) -> Dict:
        """JSON-safe snapshot for ``/stats`` and the load harness."""
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": self._total_bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
            }
