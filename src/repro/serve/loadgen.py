"""Load-test harness: thousands of synthetic clients vs one daemon.

``python -m repro.serve.loadgen`` drives a two-phase load against a
serve daemon and writes ``BENCH_serve.json``:

* **cold** — every one of ``--unique`` distinct requests once (all
  cache misses: this measures compile throughput through the queue and
  worker pool);
* **warm** — the remaining ``--requests`` total re-issue those same
  fingerprints round-robin (repeat traffic: this measures the
  content-addressed store and must be nearly all cache hits).

Per phase it records client-observed p50/p95/p99 latency, throughput,
and the cache hit rate, in the spirit of DAMOV's measure-and-sweep
bottleneck methodology — numbers, not anecdotes — and the result feeds
CI's bench-regression gate (:mod:`repro.benchmarks.regression`).

Two ways to point it at a daemon::

    # spawn one as a subprocess, SIGTERM it at the end, assert clean exit
    python -m repro.serve.loadgen --spawn --requests 1000 --unique 200

    # or target an already-running daemon
    python -m repro.serve.loadgen --url http://127.0.0.1:8731 ...

``--assert-warm-hit-rate`` / ``--verify-identity`` turn the harness into
a gate: the warm pass must hit the cache at the given rate, and a cached
response must be **byte-identical** to an in-process compile of the
same request (`make serve-smoke`'s acceptance check).

``--out-dir DIR`` keeps the working tree clean: every *relative* output
path (``--out``, ``--trace``, ``--cache-dir``) is routed under ``DIR``
(created on demand) instead of landing in the repo root; absolute paths
are honored as given.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServeError
from repro.serve.client import ServeClient, ServeResponseError

BENCH_VERSION = 1


def synthetic_request(index: int) -> Dict:
    """The ``index``-th distinct synthetic compile request.

    All requests compile the built-in tiny app on the small machine;
    distinctness comes from the ``seed`` field (part of the fingerprint),
    so every unique request costs one real compile while staying
    sub-second.  Every 5th request also flips the predictor and every
    7th skips the balance pass, so the key space exercises the
    pipeline-shape dimensions of the fingerprint, not just the seed.
    """
    request: Dict = {"app": "tiny", "seed": index}
    if index % 5 == 4:
        request["predictor"] = "analytic"
    if index % 7 == 6:
        request["skip_passes"] = ["balance"]
    return request


@dataclass
class PhaseResult:
    """Client-side measurements of one load phase."""

    name: str
    requests: int = 0
    errors: int = 0
    rejected: int = 0
    cache_hits: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the recorded latencies (ms)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def to_json(self) -> Dict:
        """The phase's ``BENCH_serve.json`` entry."""
        completed = len(self.latencies_ms)
        return {
            "requests": self.requests,
            "completed": completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                round(self.cache_hits / completed, 6) if completed else 0.0
            ),
            "p50_ms": round(self.percentile(0.50), 3),
            "p95_ms": round(self.percentile(0.95), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": (
                round(completed / self.wall_seconds, 3)
                if self.wall_seconds > 0
                else 0.0
            ),
        }


def run_phase(
    url: str,
    name: str,
    requests: List[Dict],
    clients: int,
    retry_rejected: bool = True,
) -> PhaseResult:
    """Drive ``requests`` through ``clients`` concurrent threads.

    Each client thread owns one keep-alive connection and pulls from a
    shared cursor, so the offered concurrency is exactly ``clients``.
    429 rejections count separately and are retried (with a short
    backoff) when ``retry_rejected`` — the load must eventually land so
    hit-rate accounting stays exact.
    """
    result = PhaseResult(name=name)
    lock = threading.Lock()
    cursor = iter(range(len(requests)))

    def worker() -> None:
        client = ServeClient(url)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                request = requests[index]
                started = time.perf_counter()
                while True:
                    try:
                        _, cache = client.compile_raw(request)
                    except ServeResponseError as exc:
                        if exc.status == 429:
                            with lock:
                                result.rejected += 1
                            if retry_rejected:
                                time.sleep(0.02)
                                continue
                        with lock:
                            result.errors += 1
                        break
                    except (OSError, ServeError):
                        with lock:
                            result.errors += 1
                        break
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    with lock:
                        result.latencies_ms.append(elapsed_ms)
                        if cache in ("hit", "joined"):
                            result.cache_hits += 1
                    break
        finally:
            client.close()

    result.requests = len(requests)
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{name}-{i}")
        for i in range(max(1, clients))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - started
    return result


def spawn_daemon(
    workers: int,
    queue_depth: int,
    cache_dir: str,
    trace: str = "",
) -> subprocess.Popen:
    """Launch a daemon subprocess; returns once it reports its URL.

    The daemon prints ``serve: listening on http://host:port ...`` as its
    first line; the spawned process object gets a ``serve_url`` attribute
    with that URL.
    """
    command = [
        sys.executable, "-m", "repro.serve.daemon",
        "--port", "0",
        "--workers", str(workers),
        "--queue-depth", str(queue_depth),
        "--cache-dir", cache_dir,
    ]
    if trace:
        command += ["--trace", trace]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise ServeError(
                f"daemon exited during boot (rc={process.poll()})"
            )
        if line.startswith("serve: listening on "):
            process.serve_url = line.split()[3]  # type: ignore[attr-defined]
            return process
    process.kill()
    raise ServeError("daemon did not report a listening URL within 60s")


def terminate_daemon(process: subprocess.Popen, timeout: float = 30.0) -> int:
    """SIGTERM the daemon and return its exit code (must drain cleanly)."""
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        raise ServeError(f"daemon ignored SIGTERM for {timeout:.0f}s")
    # Drain the remaining stdout so the pipe does not leak.
    if process.stdout is not None:
        process.stdout.read()
        process.stdout.close()
    return code


def run_load(
    url: str,
    total_requests: int,
    unique: int,
    clients: int,
) -> Dict:
    """The full cold+warm run against ``url``; returns the bench payload."""
    if unique < 1 or total_requests < unique:
        raise ServeError("--requests must be >= --unique (both >= 1)")
    pool = [synthetic_request(i) for i in range(unique)]
    warm_count = total_requests - unique
    warm = [pool[i % unique] for i in range(warm_count)]

    cold_result = run_phase(url, "cold", pool, clients)
    warm_result = run_phase(url, "warm", warm, clients)

    with ServeClient(url) as client:
        daemon_stats = client.stats()

    return {
        "version": BENCH_VERSION,
        "clients": clients,
        "unique_requests": unique,
        "total_requests": total_requests,
        "workers": daemon_stats.get("workers"),
        "queue_depth": daemon_stats.get("queue_depth"),
        "cold": cold_result.to_json(),
        "warm": warm_result.to_json(),
        "daemon": {
            key: daemon_stats.get(key)
            for key in (
                "requests", "cache_hits", "cache_misses", "compiles",
                "joined", "rejected", "retries", "worker_restarts",
            )
        },
        "store": daemon_stats.get("store"),
    }


def verify_identity(url: str, request: Dict) -> None:
    """Assert a served (cached) artifact == an in-process fresh compile.

    Compares exact bytes: the daemon's response for ``request`` (a cache
    hit by now) against :func:`repro.serve.compiler.compile_bytes` run
    locally.  Raises :class:`ServeError` on any difference.
    """
    from repro.serve.compiler import compile_bytes
    from repro.serve.request import CompileRequest

    with ServeClient(url) as client:
        served, cache = client.compile_raw(request)
    local = compile_bytes(CompileRequest.from_json(request))
    if served != local:
        raise ServeError(
            "cached artifact differs from a fresh in-process compile "
            f"(cache={cache!r}, served {len(served)} bytes, "
            f"local {len(local)} bytes)"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Run the harness; exit non-zero when an assertion fails."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen", description=__doc__.split("\n\n")[0]
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--url", default="", help="drive an already-running daemon"
    )
    target.add_argument(
        "--spawn", action="store_true",
        help="spawn a daemon subprocess and SIGTERM it afterwards",
    )
    parser.add_argument("--requests", type=int, default=1000,
                        help="total requests across cold+warm (default 1000)")
    parser.add_argument("--unique", type=int, default=200,
                        help="distinct fingerprints (the cold pass; default 200)")
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent client threads (default 50)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon workers (spawn mode)")
    parser.add_argument("--queue-depth", type=int, default=256,
                        help="daemon queue depth (spawn mode)")
    parser.add_argument("--cache-dir", default=".serve_cache_bench",
                        help="daemon cache dir (spawn mode; cleared first)")
    parser.add_argument("--trace", default="",
                        help="daemon trace file (spawn mode)")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--out-dir", default="", metavar="DIR",
        help="route relative --out/--trace/--cache-dir paths under DIR "
        "(created on demand) instead of the current directory",
    )
    parser.add_argument(
        "--assert-warm-hit-rate", type=float, default=None, metavar="RATE",
        help="fail unless the warm pass hit rate is >= RATE (e.g. 0.9)",
    )
    parser.add_argument(
        "--verify-identity", action="store_true",
        help="fail unless a cached artifact is byte-identical to a "
        "fresh in-process compile",
    )
    args = parser.parse_args(argv)

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        for name in ("out", "trace", "cache_dir"):
            value = getattr(args, name)
            if value and not os.path.isabs(value):
                setattr(args, name, os.path.join(args.out_dir, value))

    process = None
    try:
        if args.spawn:
            # A stale cache would turn the cold pass into hits and void
            # the cold/warm contrast — start from an empty store.
            import shutil

            shutil.rmtree(args.cache_dir, ignore_errors=True)
            process = spawn_daemon(
                args.workers, args.queue_depth, args.cache_dir, args.trace
            )
            url = process.serve_url
        else:
            url = args.url

        payload = run_load(url, args.requests, args.unique, args.clients)

        failures: List[str] = []
        for phase in ("cold", "warm"):
            entry = payload[phase]
            if entry["errors"]:
                failures.append(f"{phase} pass had {entry['errors']} errors")
        warm_rate = payload["warm"]["cache_hit_rate"]
        if args.assert_warm_hit_rate is not None:
            if args.requests == args.unique:
                failures.append(
                    "--assert-warm-hit-rate needs a warm pass "
                    "(--requests > --unique)"
                )
            elif warm_rate < args.assert_warm_hit_rate:
                failures.append(
                    f"warm cache hit rate {warm_rate:.3f} < "
                    f"required {args.assert_warm_hit_rate:.3f}"
                )
        if args.verify_identity:
            try:
                verify_identity(url, synthetic_request(0))
                payload["identity_verified"] = True
            except ServeError as exc:
                failures.append(str(exc))

        if process is not None:
            code = terminate_daemon(process)
            payload["sigterm_exit_code"] = code
            process = None
            if code != 0:
                failures.append(f"daemon exited {code} after SIGTERM")

        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

        for phase in ("cold", "warm"):
            entry = payload[phase]
            print(
                f"{phase:>5}: {entry['completed']}/{entry['requests']} ok  "
                f"p50={entry['p50_ms']:.1f}ms p95={entry['p95_ms']:.1f}ms "
                f"p99={entry['p99_ms']:.1f}ms  "
                f"{entry['throughput_rps']:.0f} req/s  "
                f"hit-rate={entry['cache_hit_rate']:.1%}"
            )
        print(f"wrote {args.out}")

        if failures:
            for failure in failures:
                print(f"loadgen: FAIL: {failure}", file=sys.stderr)
            return 1
        return 0
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if process is not None and process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    raise SystemExit(main())
