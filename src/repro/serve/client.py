"""Stdlib HTTP client for the ``repro.serve`` daemon.

:class:`ServeClient` wraps one keep-alive ``http.client`` connection —
cheap enough that the load harness gives every synthetic client thread
its own.  Protocol errors surface as :class:`~repro.errors.ServeError`
carrying the daemon's JSON error message and the HTTP status in
:attr:`ServeError.args`; transport errors raise the underlying OSError.

Also the implementation behind ``repro.cli client``::

    python -m repro.cli client http://127.0.0.1:8731 compile --app tiny
    python -m repro.cli client http://127.0.0.1:8731 stats
"""

from __future__ import annotations

import json
import sys
from http.client import HTTPConnection
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.errors import ServeError


class ServeResponseError(ServeError):
    """A non-2xx daemon response (``status`` carries the HTTP code)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeClient:
    """One keep-alive connection to a serve daemon."""

    def __init__(self, url: str, timeout: float = 60.0):
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http") or not parsed.hostname:
            raise ServeError(f"unsupported daemon URL {url!r} (http only)")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, BrokenPipeError):
            # Stale keep-alive (daemon restarted / connection dropped):
            # one clean reconnect, then surface the failure.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        return response.status, raw, dict(response.getheaders())

    def _json_or_raise(self, status: int, raw: bytes) -> Dict:
        if status >= 400:
            try:
                message = json.loads(raw).get("error", raw.decode())
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode(errors="replace")
            raise ServeResponseError(status, message)
        return json.loads(raw)

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict:
        """``GET /healthz``."""
        status, raw, _ = self._request("GET", "/healthz")
        return self._json_or_raise(status, raw)

    def stats(self) -> Dict:
        """``GET /stats``."""
        status, raw, _ = self._request("GET", "/stats")
        return self._json_or_raise(status, raw)

    def compile_raw(self, request: Dict) -> Tuple[bytes, str]:
        """``POST /compile`` → (exact artifact bytes, cache status).

        The bytes are the daemon's response verbatim — this is the call
        the byte-identity checks use.
        """
        status, raw, headers = self._request("POST", "/compile", request)
        if status >= 400:
            self._json_or_raise(status, raw)
        return raw, headers.get("X-Cache", "")

    def compile(self, request: Dict) -> Dict:
        """``POST /compile`` → parsed artifact dict."""
        raw, _ = self.compile_raw(request)
        return json.loads(raw)

    def batch(self, requests: List[Dict]) -> Dict:
        """``POST /batch`` → ``{"cache": [...], "results": [...]}``."""
        status, raw, _ = self._request(
            "POST", "/batch", {"requests": requests}
        )
        return self._json_or_raise(status, raw)

    def shutdown(self) -> Dict:
        """``POST /shutdown`` — ask the daemon to drain and exit."""
        status, raw, _ = self._request("POST", "/shutdown")
        return self._json_or_raise(status, raw)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point behind ``repro.cli client``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro client", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("url", help="daemon base URL, e.g. http://127.0.0.1:8731")
    sub = parser.add_subparsers(dest="action", required=True)

    compile_cmd = sub.add_parser("compile", help="send one compile request")
    compile_cmd.add_argument(
        "--app", default="tiny", help="workload name or 'tiny'"
    )
    compile_cmd.add_argument("--scale", type=int, default=1)
    compile_cmd.add_argument("--seed", type=int, default=0)
    compile_cmd.add_argument(
        "--predictor", choices=["trace", "analytic"], default="trace"
    )
    compile_cmd.add_argument(
        "--skip-pass", action="append", default=[], metavar="NAME"
    )
    compile_cmd.add_argument(
        "--request", default="", metavar="FILE",
        help="read the full request JSON from FILE instead of flags",
    )
    sub.add_parser("stats", help="print daemon counters")
    sub.add_parser("health", help="print daemon health")
    sub.add_parser("shutdown", help="drain and stop the daemon")

    args = parser.parse_args(argv)
    client = ServeClient(args.url)
    try:
        if args.action == "compile":
            if args.request:
                with open(args.request) as fh:
                    request = json.load(fh)
            else:
                request = {
                    "app": args.app,
                    "scale": args.scale,
                    "seed": args.seed,
                    "predictor": args.predictor,
                    "skip_passes": args.skip_pass,
                }
            raw, cache = client.compile_raw(request)
            artifact = json.loads(raw)
            print(f"cache: {cache or 'n/a'}")
            print(f"fingerprint: {artifact['fingerprint']}")
            print(f"movement: {artifact['movement']}")
            print(f"window sizes: {artifact['plan']['window_sizes']}")
        elif args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "health":
            print(json.dumps(client.healthz(), indent=2, sort_keys=True))
        else:
            print(json.dumps(client.shutdown(), indent=2, sort_keys=True))
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"error: cannot reach daemon at {args.url}: {error}",
            file=sys.stderr,
        )
        return 2
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
