"""Execute one compile request: request in, deterministic artifact out.

This is the code that runs *inside* a serve worker (or inline in the
daemon when ``--workers 0``): resolve the request's machine preset and
program, run the pass pipeline on a fresh
:class:`~repro.pipeline.session.CompilationSession`, and serialize the
result as canonical JSON bytes.

Determinism is the load-bearing property: the artifact bytes are a pure
function of the request's canonical form, so a cached artifact is
**byte-identical** to a fresh compile of the same request (asserted by
``tests/test_serve_daemon.py`` and the load harness's identity check).
Everything nondeterministic — wall times, worker identity — is excluded
from the artifact.

``worker_entry`` is the module-level function the persistent pool maps
requests onto (it must be picklable).  Its ``debug`` hooks exist for the
robustness tests only (kill a worker mid-request once, stall a request)
and are stripped by the daemon unless ``--allow-debug-hooks`` is set;
they never change the artifact bytes.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Callable, Dict

from repro.arch.machine import Machine
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.serve.request import TINY_APP, CompileRequest

#: Artifact schema version (see :func:`compile_artifact`).
ARTIFACT_VERSION = 1
ARTIFACT_KIND = "repro.serve.artifact"


def machine_for(request: CompileRequest) -> Machine:
    """A fresh machine for the request's preset.

    ``'small'``, ``'paper'``, or the parameterized ``mesh:<cols>x<rows>``
    form (the KNL template scaled to that mesh).
    """
    if request.machine == "small":
        from repro.arch.knl import small_machine

        return small_machine()
    from repro.serve.request import parse_mesh_preset

    mesh = parse_mesh_preset(request.machine)
    if mesh is not None:
        from repro.arch.knl import mesh_machine

        return mesh_machine(*mesh)
    from repro.experiments.common import paper_machine

    return paper_machine()


def program_for(request: CompileRequest) -> Program:
    """Build the request's program (workload, tiny app, or inline spec)."""
    if request.app == TINY_APP:
        from repro.benchmarks.perf import tiny_app

        return tiny_app()
    if request.app is not None:
        from repro.workloads import build_workload

        return build_workload(request.app, request.scale, request.seed)
    spec = request.program
    program = Program(spec["name"])
    for array, size in sorted(spec["arrays"].items()):
        program.declare(array, size)
    for nest in spec["nests"]:
        program.add_nest(
            LoopNest.of(
                [
                    Loop(
                        loop["var"], loop["start"], loop["stop"], loop["step"]
                    )
                    for loop in nest["loops"]
                ],
                [parse_statement(stmt) for stmt in nest["body"]],
                nest["name"],
            )
        )
    return program


def compile_artifact(request: CompileRequest) -> Dict:
    """Compile ``request`` and return its artifact dict (deterministic).

    The artifact records the cache key (fingerprint + canonical request),
    the pipeline shape that produced it, and the compile products the
    report path exposes (:func:`repro.obs.report._plan_info`'s plan
    object plus the headline movement/statement counts).  No wall times.

    A ``backend: runtime`` request additionally *executes* the compiled
    schedule on the task runtime and embeds the observed accounting as an
    ``execution`` section.  The runtime is pinned to its reproducible
    mode (one worker, seed 0) so the observed movement — and therefore
    the artifact bytes — stay a pure function of the request; wall time
    is excluded for the same reason.
    """
    from repro.obs.report import _plan_info
    from repro.pipeline import compile_program, session_for
    from repro.pipeline.passes import predictor_pass_order, resolve_order

    machine = machine_for(request)
    program = program_for(request)
    pass_order = predictor_pass_order(request.predictor)
    session = session_for(
        machine,
        faults=request.faults,
        skip_passes=request.skip_passes,
        pass_order=pass_order,
    )
    partition = compile_program(program, session)
    artifact = {
        "kind": ARTIFACT_KIND,
        "version": ARTIFACT_VERSION,
        "fingerprint": request.fingerprint(),
        "request": request.canonical(),
        "pipeline": {
            "pass_order": list(resolve_order(pass_order)),
            "skipped_passes": sorted(request.skip_passes),
        },
        "plan": _plan_info(partition),
        "movement": partition.movement,
        "statement_count": partition.statement_count,
        "unit_count": len(partition.units()),
    }
    if request.backend == "runtime":
        artifact["execution"] = _execute_runtime(machine, partition)
    return artifact


def _execute_runtime(machine, partition) -> Dict:
    """Run the compiled schedule on the task runtime (deterministically).

    One worker, seed 0: the completion order — and with it the replica
    caches' fill sequence and the observed movement — is identical on
    every run, preserving the artifact's byte-identity guarantee.  The
    agreement is computed against the simulator's measured movement (the
    forecast), not the partitioner's cost-model prediction, which is
    what the ``movement`` field above records.
    """
    from repro.exec.backend import SimBackend
    from repro.exec.runtime import RuntimeBackend, movement_agreement

    units = partition.units()
    machine.mcdram.reset()
    forecast = SimBackend().run(machine, units)
    machine.mcdram.reset()
    execution = RuntimeBackend(workers=1, seed=0).run(machine, units)
    return {
        "backend": execution.backend,
        "workers": execution.workers,
        "seed": execution.seed,
        "tasks_executed": execution.tasks_executed,
        "observed_movement": execution.data_movement,
        "forecast_movement": forecast.data_movement,
        "agreement": round(
            movement_agreement(
                execution.data_movement, forecast.data_movement
            ),
            6,
        ),
        "sync_count": execution.sync_count,
        "sync_violations": len(execution.sync_violations),
    }


def artifact_to_bytes(artifact: Dict) -> bytes:
    """Canonical serialization (stable key order, one trailing newline)."""
    return (json.dumps(artifact, indent=2, sort_keys=True) + "\n").encode()


def compile_bytes(request: CompileRequest) -> bytes:
    """Compile ``request`` straight to its canonical artifact bytes."""
    return artifact_to_bytes(compile_artifact(request))


def _run_debug_hooks(debug: Dict) -> None:
    """Honor the test-only hooks of one request (daemon-gated).

    * ``sleep_ms`` — stall before compiling, so concurrency tests can
      hold requests in flight deterministically.
    * ``kill_once_path`` — SIGKILL this worker process, but only the
      first time (a marker file at the given path records the kill), so
      the daemon's respawn-and-retry path succeeds on the second try.
    """
    sleep_ms = debug.get("sleep_ms", 0)
    if sleep_ms:
        time.sleep(float(sleep_ms) / 1000.0)
    kill_once = debug.get("kill_once_path")
    if kill_once and not os.path.exists(kill_once):
        with open(kill_once, "w") as marker:
            marker.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)


def worker_entry(payload: Dict) -> bytes:
    """Pool worker: canonical request dict (+ optional debug) -> bytes."""
    debug = payload.pop("debug", None) or {}
    request = CompileRequest.from_json(payload)
    if debug:
        _run_debug_hooks(debug)
    return compile_bytes(request)


def _warm_worker(_: int) -> int:
    """No-op warmup task used to pre-fork pool workers at daemon boot."""
    return os.getpid()


#: Signature workers implement; the daemon holds the pool, not this module.
WorkerFn = Callable[[Dict], bytes]
