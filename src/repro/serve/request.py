"""Compile requests and their content-addressed fingerprints.

A :class:`CompileRequest` is the unit of work `repro.serve` accepts: a
program (a workload name, the built-in ``"tiny"`` app, or an inline
program spec), the machine preset to compile for, the workload
parameters, and the full pipeline shape — predictor choice, skipped
passes, and an optional fault plan.

The **fingerprint** is the artifact store's cache key, so it must obey
the same discipline as :meth:`repro.faults.FaultPlan.fingerprint`: a
short SHA-256 over the *canonical* JSON form, in which every field is
resolved to an explicit value (defaults filled in, ``skip_passes``
sorted, the fault plan reduced to its canonical ``to_json`` form).  Two
requests that could compile to different artifacts must never share a
fingerprint — in particular the predictor choice (``trace`` vs
``analytic``), the skip-pass set, and the execution backend (``sim`` vs
``runtime``) are part of the key, because each changes the compile
result while leaving the program untouched
(``tests/test_serve_fingerprint.py`` plants exactly those collisions).

The ``debug`` field is deliberately **excluded** from the canonical form:
it carries test-only execution hooks (see :mod:`repro.serve.compiler`)
that never change the artifact bytes, so it must not split the cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ServeError
from repro.faults import FaultPlan

#: Canonical request schema version (bumped when the key format changes:
#: a version bump invalidates every cached artifact, which is exactly
#: right — old artifacts answered a differently-shaped question).
REQUEST_VERSION = 1

#: Fixed machine presets a request may name (resolved by
#: repro.serve.compiler).  Requests may also name a parameterized mesh
#: preset ``mesh:<cols>x<rows>`` (e.g. ``mesh:8x8``) — the KNL template
#: scaled to that mesh via :func:`repro.arch.knl.mesh_machine`.  The
#: preset string is part of the canonical form, so a 6x6 and an 8x8
#: compile of the same program never share a fingerprint.
MACHINE_PRESETS = ("small", "paper")

#: Prefix of the parameterized mesh preset.
MESH_PRESET_PREFIX = "mesh:"


def parse_mesh_preset(machine: str) -> Optional[Tuple[int, int]]:
    """``(cols, rows)`` for a ``mesh:<cols>x<rows>`` preset, else ``None``.

    Raises :class:`ServeError` for a malformed mesh preset (right prefix,
    bad dimensions) so typos fail loudly instead of falling through to
    the unknown-preset error.
    """
    if not machine.startswith(MESH_PRESET_PREFIX):
        return None
    spec = machine[len(MESH_PRESET_PREFIX):]
    cols_text, sep, rows_text = spec.partition("x")
    try:
        cols, rows = int(cols_text), int(rows_text)
    except ValueError:
        cols = rows = 0
    if not sep or cols < 2 or rows < 2:
        raise ServeError(
            f"bad mesh preset {machine!r}: expected "
            f"'{MESH_PRESET_PREFIX}<cols>x<rows>' with cols, rows >= 2"
        )
    return cols, rows

#: Predictor choices (mirrors the CLI's ``--predictor`` flag).
PREDICTORS = ("trace", "analytic")

#: The built-in sub-second app name (shared with repro.obs.report).
TINY_APP = "tiny"

_REQUEST_FIELDS = {
    "version", "app", "program", "scale", "seed", "machine",
    "predictor", "backend", "skip_passes", "faults", "debug",
}

_PROGRAM_FIELDS = {"name", "arrays", "nests"}
_NEST_FIELDS = {"name", "loops", "body"}
_LOOP_FIELDS = {"var", "start", "stop", "step"}


def _require_type(value, types, what: str):
    if not isinstance(value, types):
        names = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise ServeError(
            f"{what} must be {names}, got {type(value).__name__}"
        )
    return value


def _canonical_program(spec: Dict) -> Dict:
    """Validate an inline program spec and return its canonical form."""
    _require_type(spec, dict, "request field 'program'")
    unknown = sorted(set(spec) - _PROGRAM_FIELDS)
    if unknown:
        raise ServeError(
            f"unknown program field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_PROGRAM_FIELDS))})"
        )
    name = _require_type(spec.get("name", "program"), str, "program name")
    arrays = _require_type(spec.get("arrays"), dict, "program arrays")
    if not arrays:
        raise ServeError("program spec declares no arrays")
    canonical_arrays = {}
    for array, size in sorted(arrays.items()):
        _require_type(array, str, "array name")
        if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
            raise ServeError(f"array {array!r} size must be a positive int")
        canonical_arrays[array] = size
    nests = _require_type(spec.get("nests"), list, "program nests")
    if not nests:
        raise ServeError("program spec declares no loop nests")
    canonical_nests = []
    for position, nest in enumerate(nests):
        _require_type(nest, dict, f"nest #{position}")
        unknown = sorted(set(nest) - _NEST_FIELDS)
        if unknown:
            raise ServeError(
                f"unknown nest field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_NEST_FIELDS))})"
            )
        loops = _require_type(nest.get("loops"), list, "nest loops")
        body = _require_type(nest.get("body"), list, "nest body")
        if not loops or not body:
            raise ServeError(
                f"nest #{position} needs at least one loop and one statement"
            )
        canonical_loops = []
        for loop in loops:
            _require_type(loop, dict, "loop")
            unknown = sorted(set(loop) - _LOOP_FIELDS)
            if unknown:
                raise ServeError(f"unknown loop field(s): {', '.join(unknown)}")
            try:
                canonical_loops.append({
                    "var": _require_type(loop["var"], str, "loop var"),
                    "start": int(loop["start"]),
                    "stop": int(loop["stop"]),
                    "step": int(loop.get("step", 1)),
                })
            except KeyError as exc:
                raise ServeError(f"loop is missing field {exc}") from exc
        canonical_nests.append({
            "name": _require_type(
                nest.get("name", f"nest{position}"), str, "nest name"
            ),
            "loops": canonical_loops,
            "body": [
                _require_type(stmt, str, "nest body statement") for stmt in body
            ],
        })
    return {"name": name, "arrays": canonical_arrays, "nests": canonical_nests}


@dataclass(frozen=True)
class CompileRequest:
    """One validated compile request (construct via :meth:`from_json`)."""

    app: Optional[str] = None
    program: Optional[Dict] = None
    scale: int = 1
    seed: int = 0
    machine: str = "small"
    predictor: str = "trace"
    backend: str = "sim"
    skip_passes: Tuple[str, ...] = ()
    faults: Optional[FaultPlan] = None
    #: Test-only execution hooks; excluded from the fingerprint and only
    #: honored by a daemon started with ``--allow-debug-hooks``.
    debug: Dict = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: Dict) -> "CompileRequest":
        """Parse and validate a request dict; raises :class:`ServeError`."""
        _require_type(data, dict, "compile request")
        unknown = sorted(set(data) - _REQUEST_FIELDS)
        if unknown:
            raise ServeError(
                f"unknown request field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_REQUEST_FIELDS))})"
            )
        version = data.get("version", REQUEST_VERSION)
        if version != REQUEST_VERSION:
            raise ServeError(f"unsupported request version {version!r}")

        app = data.get("app")
        program = data.get("program")
        if (app is None) == (program is None):
            raise ServeError(
                "a request names exactly one of 'app' (a workload name or "
                "'tiny') or 'program' (an inline program spec)"
            )
        if app is not None:
            _require_type(app, str, "request field 'app'")
            from repro.workloads import ALL_WORKLOAD_NAMES

            if app != TINY_APP and app not in ALL_WORKLOAD_NAMES:
                known = ", ".join((TINY_APP,) + tuple(ALL_WORKLOAD_NAMES))
                raise ServeError(f"unknown app {app!r} (known: {known})")
        else:
            program = _canonical_program(program)

        scale = data.get("scale", 1)
        seed = data.get("seed", 0)
        for name, value in (("scale", scale), ("seed", seed)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ServeError(f"request field {name!r} must be an int")
        if scale < 1:
            raise ServeError("request field 'scale' must be >= 1")

        machine = data.get("machine", cls._default_machine(app))
        _require_type(machine, str, "request field 'machine'")
        if machine not in MACHINE_PRESETS and parse_mesh_preset(machine) is None:
            raise ServeError(
                f"unknown machine preset {machine!r} (known: "
                f"{', '.join(MACHINE_PRESETS)}, "
                f"{MESH_PRESET_PREFIX}<cols>x<rows>)"
            )
        predictor = data.get("predictor", "trace")
        if predictor not in PREDICTORS:
            raise ServeError(
                f"unknown predictor {predictor!r} "
                f"(known: {', '.join(PREDICTORS)})"
            )
        from repro.exec.backend import BACKEND_NAMES

        backend = data.get("backend", "sim")
        if backend not in BACKEND_NAMES:
            raise ServeError(
                f"unknown backend {backend!r} "
                f"(known: {', '.join(BACKEND_NAMES)})"
            )

        skip_raw = data.get("skip_passes", [])
        _require_type(skip_raw, list, "request field 'skip_passes'")
        from repro.pipeline.passes import PASS_REGISTRY

        skip = tuple(sorted(set(
            _require_type(name, str, "skip_passes entry") for name in skip_raw
        )))
        unknown = sorted(name for name in skip if name not in PASS_REGISTRY)
        if unknown:
            raise ServeError(
                f"unknown pass name(s) in skip_passes: {', '.join(unknown)}; "
                f"registered passes: {', '.join(sorted(PASS_REGISTRY))}"
            )

        faults = None
        faults_raw = data.get("faults")
        if faults_raw is not None:
            _require_type(faults_raw, dict, "request field 'faults'")
            plan = FaultPlan.from_json(faults_raw)
            faults = None if plan.is_empty else plan

        debug = data.get("debug") or {}
        _require_type(debug, dict, "request field 'debug'")

        return cls(
            app=app,
            program=program,
            scale=scale,
            seed=seed,
            machine=machine,
            predictor=predictor,
            backend=backend,
            skip_passes=skip,
            faults=faults,
            debug=dict(debug),
        )

    @staticmethod
    def _default_machine(app: Optional[str]) -> str:
        """'small' for tiny/inline programs, 'paper' for real workloads."""
        return "small" if app is None or app == TINY_APP else "paper"

    # -- canonical form ----------------------------------------------------

    def canonical(self) -> Dict:
        """The fully-resolved request dict the fingerprint hashes.

        Every optional field appears with its resolved value, so requests
        that differ only in *spelling* (defaults implicit vs explicit,
        skip-pass order) canonicalize identically, while requests that
        differ in *meaning* — including predictor choice, execution
        backend, and skip-pass set — never do.  ``debug`` is excluded:
        hooks never change the artifact.
        """
        return {
            "version": REQUEST_VERSION,
            "app": self.app,
            "program": self.program,
            "scale": self.scale,
            "seed": self.seed,
            "machine": self.machine,
            "predictor": self.predictor,
            "backend": self.backend,
            "skip_passes": list(self.skip_passes),
            "faults": None if self.faults is None else self.faults.to_json(),
        }

    def canonical_json(self) -> str:
        """Canonical JSON text (stable key order; what gets hashed)."""
        return json.dumps(self.canonical(), sort_keys=True)

    def fingerprint(self) -> str:
        """Short stable content hash — the artifact store's cache key."""
        digest = hashlib.sha256(self.canonical_json().encode()).hexdigest()
        return digest[:16]

    def describe(self) -> str:
        """One-line human-readable summary (trace events, CLI output)."""
        target = self.app if self.app is not None else self.program["name"]
        extras = []
        if self.predictor != "trace":
            extras.append(f"predictor={self.predictor}")
        if self.backend != "sim":
            extras.append(f"backend={self.backend}")
        if self.skip_passes:
            extras.append(f"skip={','.join(self.skip_passes)}")
        if self.faults is not None:
            extras.append(f"faults={self.faults.fingerprint()}")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return (
            f"{target} scale={self.scale} seed={self.seed} "
            f"machine={self.machine}{suffix}"
        )
