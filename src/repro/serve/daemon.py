"""The ``repro.serve`` daemon: compile-as-a-service over HTTP.

Architecture (DESIGN.md §13)::

    client threads ──HTTP──▶ ThreadingHTTPServer
                                 │  handler thread per request
                                 ▼
                           CompileService
                 ┌───────────────┼──────────────────┐
                 ▼               ▼                  ▼
          ArtifactStore    single-flight      WorkerPool
          (disk, LRU)      (fingerprint →     (persistent forked
                            in-flight map)     compile workers)

* A request is answered from the **content-addressed store** when its
  fingerprint is cached (a *hit* — no compile, no queueing).
* Concurrent identical requests are **single-flighted**: the first
  becomes the owner and compiles; the rest join its in-flight future and
  receive the same bytes (one compile total).
* Distinct misses are admitted into a **bounded queue** (`--queue-depth`)
  and sharded across the persistent worker pool; when the queue is full
  the daemon rejects with HTTP 429 instead of building unbounded
  backlog (backpressure — the client decides whether to retry).
* A worker killed mid-request is detected, the pool **respawned**, and
  the request retried (bounded retries) before the error is surfaced.
* SIGTERM (or ``POST /shutdown``) **drains**: new work gets 503, active
  requests finish, the pool shuts down, and the process exits 0.

Endpoints::

    GET  /healthz   → {"status": "ok"|"draining", ...}
    GET  /stats     → service + store counters (JSON)
    POST /compile   → artifact bytes; X-Cache: hit|miss|joined
    POST /batch     → {"results": [artifact, ...], "cache": [...]}
    POST /shutdown  → {"status": "draining"}, then the daemon drains

Every request is traced through the process tracer
(:mod:`repro.obs.tracer`) as ``serve.request`` points when the daemon
was started with ``--trace``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, ServeError
from repro.obs.tracer import get_tracer
from repro.pipeline.batch import WorkerCrash, WorkerPool
from repro.serve.compiler import worker_entry
from repro.serve.request import CompileRequest
from repro.serve.store import DEFAULT_CAPACITY_BYTES, ArtifactStore

#: Default bound on admitted-but-unfinished compile requests.
DEFAULT_QUEUE_DEPTH = 64


class Backpressure(ServeError):
    """The bounded request queue is full (HTTP 429)."""


class Draining(ServeError):
    """The daemon is shutting down and admits no new work (HTTP 503)."""


@dataclass
class ServeConfig:
    """Everything the daemon needs to boot (CLI flags map 1:1 onto this)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    cache_dir: str = ".serve_cache"
    cache_capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    #: Retries after a worker crash before the error is surfaced.
    retries: int = 2
    #: Honor test-only ``debug`` request hooks (robustness tests).
    allow_debug_hooks: bool = False
    #: Seconds the drain waits for active requests before giving up.
    drain_grace: float = 30.0

    def __post_init__(self):
        if self.queue_depth < 1:
            raise ServeError("queue_depth must be >= 1")
        if self.workers < 0:
            raise ServeError("workers must be >= 0 (0 = compile inline)")


class CompileService:
    """The daemon's brain: cache, single-flight, queue, worker pool."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = ArtifactStore(
            config.cache_dir, config.cache_capacity_bytes
        )
        self.pool = WorkerPool(worker_entry, config.workers)
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._pending = 0
        self._draining = False
        self._started = time.monotonic()
        # Service counters (all under _lock).
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.compiles = 0
        self.joined = 0
        self.rejected = 0
        self.retries = 0
        self.worker_restarts = 0
        self.errors = 0

    # -- request path ------------------------------------------------------

    def handle(self, data: Dict) -> Tuple[bytes, str]:
        """Serve one compile request: ``(artifact bytes, cache status)``.

        Status is ``"hit"`` (served from the store), ``"miss"`` (this
        call compiled), or ``"joined"`` (an identical request was already
        in flight; its result was shared).  Raises :class:`Backpressure`
        when the queue is full, :class:`Draining` during shutdown, and
        :class:`ServeError` for malformed requests.
        """
        request = CompileRequest.from_json(data)
        fingerprint = request.fingerprint()
        with self._lock:
            self.requests += 1
            if self._draining:
                raise Draining("daemon is draining; not accepting new work")
        blob = self.store.get(fingerprint)
        if blob is not None:
            with self._lock:
                self.cache_hits += 1
            self._trace(request, fingerprint, "hit")
            return blob, "hit"
        with self._lock:
            self.cache_misses += 1
            future = self._inflight.get(fingerprint)
            if future is None:
                if self._pending >= self.config.queue_depth:
                    self.rejected += 1
                    raise Backpressure(
                        f"queue full ({self.config.queue_depth} in flight); "
                        "retry later"
                    )
                self._pending += 1
                future = Future()
                self._inflight[fingerprint] = future
                owner = True
            else:
                self.joined += 1
                owner = False
        if not owner:
            blob = future.result()
            self._trace(request, fingerprint, "joined")
            return blob, "joined"
        try:
            blob = self._compile(request)
            self.store.put(fingerprint, blob)
            future.set_result(blob)
        except BaseException as exc:
            with self._lock:
                self.errors += 1
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._pending -= 1
                self._inflight.pop(fingerprint, None)
        self._trace(request, fingerprint, "miss")
        return blob, "miss"

    def handle_batch(self, items: List[Dict]) -> List[Tuple[bytes, str]]:
        """Serve a batch concurrently; results in request order.

        The HTTP batch endpoint maps onto the same semantics as
        :func:`repro.pipeline.compile_many`: every member is independent
        (own cache lookup, own single-flight slot, own worker), and the
        response preserves order.  Batch members share the global queue
        bound, so an oversized batch surfaces :class:`Backpressure` on
        its overflowing members rather than stalling the daemon.
        """
        if not items:
            return []
        if len(items) == 1:
            return [self.handle(items[0])]
        with ThreadPoolExecutor(
            max_workers=min(len(items), 32), thread_name_prefix="serve-batch"
        ) as fan_out:
            futures = [fan_out.submit(self.handle, item) for item in items]
            results = []
            for future in futures:
                results.append(future.result())
            return results

    def _compile(self, request: CompileRequest) -> bytes:
        """One compile on the pool, with crash-respawn-retry."""
        payload = request.canonical()
        if request.debug and self.config.allow_debug_hooks:
            payload["debug"] = dict(request.debug)
        attempt = 0
        while True:
            attempt += 1
            try:
                blob = self.pool.call(dict(payload))
                with self._lock:
                    self.compiles += 1
                return blob
            except WorkerCrash:
                with self._lock:
                    self.worker_restarts += 1
                self.pool.respawn()
                if attempt > self.config.retries:
                    raise ServeError(
                        f"compile worker died {attempt} times for "
                        f"{request.describe()}; giving up"
                    ) from None
                with self._lock:
                    self.retries += 1

    def _trace(self, request: CompileRequest, fingerprint: str, status: str):
        tracer = get_tracer()
        if tracer.enabled:
            tracer.point(
                "serve.request",
                fingerprint=fingerprint,
                cache=status,
                request=request.describe(),
            )

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once shutdown has begun."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new requests (idempotent)."""
        with self._lock:
            self._draining = True
        tracer = get_tracer()
        if tracer.enabled:
            tracer.point("serve.drain", pending=self._pending)

    def finish_drain(self, grace: Optional[float] = None) -> bool:
        """Wait for in-flight work, then stop the pool; True = clean."""
        deadline = time.monotonic() + (
            self.config.drain_grace if grace is None else grace
        )
        clean = True
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    break
            time.sleep(0.02)
        else:
            clean = False
        self.pool.shutdown()
        return clean

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict:
        """JSON-safe counters for ``/stats`` and the load harness."""
        with self._lock:
            return {
                "status": "draining" if self._draining else "ok",
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "pending": self._pending,
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "compiles": self.compiles,
                "joined": self.joined,
                "rejected": self.rejected,
                "retries": self.retries,
                "worker_restarts": self.worker_restarts,
                "worker_respawns": self.pool.respawns,
                "errors": self.errors,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "store": self.store.stats(),
            }


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`CompileService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    #: Idle keep-alive connections time out so drain never waits on them.
    timeout = 30

    # The default handler logs every request to stderr; the daemon's
    # request log is the trace stream instead.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence the default per-request stderr log."""

    @property
    def service(self) -> CompileService:
        """The daemon's service (attached by :class:`ServeDaemon`)."""
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str = "application/json",
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        if self.service.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict, **extra) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(code, body, extra=extra or None)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            self._send_error_json(400, "empty request body")
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"request body is not JSON: {exc}")
            return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Route ``GET /healthz`` and ``GET /stats``."""
        with self.server.tracked():  # type: ignore[attr-defined]
            if self.path == "/healthz":
                status = "draining" if self.service.draining else "ok"
                self._send_json(200, {"status": status})
            elif self.path == "/stats":
                self._send_json(200, self.service.stats())
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Route ``POST /compile``, ``/batch``, and ``/shutdown``."""
        with self.server.tracked():  # type: ignore[attr-defined]
            if self.path == "/compile":
                self._post_compile()
            elif self.path == "/batch":
                self._post_batch()
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "draining"})
                self.server.request_stop()  # type: ignore[attr-defined]
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

    def _post_compile(self) -> None:
        data = self._read_body()
        if data is None:
            return
        try:
            blob, status = self.service.handle(data)
        except Backpressure as exc:
            self._send_error_json(429, str(exc))
        except Draining as exc:
            self._send_error_json(503, str(exc))
        except ReproError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:  # compile crashed: surface, keep serving
            self._send_error_json(500, f"compile failed: {exc}")
        else:
            self._send(200, blob, extra={"X-Cache": status})

    def _post_batch(self) -> None:
        data = self._read_body()
        if data is None:
            return
        items = data.get("requests") if isinstance(data, dict) else None
        if not isinstance(items, list):
            self._send_error_json(
                400, "batch body must be {\"requests\": [request, ...]}"
            )
            return
        try:
            results = self.service.handle_batch(items)
        except Backpressure as exc:
            self._send_error_json(429, str(exc))
        except Draining as exc:
            self._send_error_json(503, str(exc))
        except ReproError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:
            self._send_error_json(500, f"batch compile failed: {exc}")
        else:
            body = (
                "{\"cache\": "
                + json.dumps([status for _, status in results])
                + ", \"results\": ["
                + ", ".join(blob.decode().rstrip("\n") for blob, _ in results)
                + "]}\n"
            ).encode()
            self._send(200, body)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service and an active-count."""

    daemon_threads = True
    #: The stdlib default listen backlog (5) resets connections when a
    #: client fleet connects at once; the load harness opens 50+.
    request_queue_size = 128

    def __init__(self, address, service: CompileService, stop_event):
        super().__init__(address, _Handler)
        self.service = service
        self._stop_event = stop_event
        self._active = 0
        self._active_lock = threading.Lock()

    def tracked(self):
        """Context manager counting active (mid-request) handlers."""
        server = self

        class _Tracked:
            def __enter__(self):
                with server._active_lock:
                    server._active += 1
                return self

            def __exit__(self, *exc):
                with server._active_lock:
                    server._active -= 1

        return _Tracked()

    @property
    def active_requests(self) -> int:
        """Handlers currently inside a request (idle keep-alives excluded)."""
        with self._active_lock:
            return self._active

    def request_stop(self) -> None:
        """Ask the daemon's main loop to drain and exit."""
        self._stop_event.set()


@dataclass
class ServeDaemon:
    """Owns one server + service pair and the drain choreography.

    Tests and :mod:`examples/serve_client.py` run it in-process
    (:meth:`start` / :meth:`stop`); :func:`main` runs it as a real
    process with SIGTERM handling.
    """

    config: ServeConfig
    service: CompileService = field(init=False)
    _server: _Server = field(init=False)
    _stop_event: threading.Event = field(init=False)
    _thread: Optional[threading.Thread] = field(init=False, default=None)

    def __post_init__(self):
        self._stop_event = threading.Event()
        self.service = CompileService(self.config)
        self._server = _Server(
            (self.config.host, self.config.port), self.service, self._stop_event
        )

    @property
    def host(self) -> str:
        """Bound host."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when the config asked for port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeDaemon":
        """Serve in a background thread (in-process use); returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait_for_stop(self) -> None:
        """Block until SIGTERM / ``POST /shutdown`` asks for drain."""
        self._stop_event.wait()

    def stop(self, grace: Optional[float] = None) -> bool:
        """Drain and shut everything down; True = drained cleanly."""
        self.service.begin_drain()
        self._server.shutdown()  # stop accepting
        deadline = time.monotonic() + (
            self.config.drain_grace if grace is None else grace
        )
        while self._server.active_requests > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        clean = self._server.active_requests == 0
        clean = self.service.finish_drain(grace) and clean
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        return clean


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``python -m repro.serve.daemon`` / ``repro.cli serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one and print it)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="compile worker processes (0 = compile in the handler thread)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH,
        help="max admitted-but-unfinished compiles before 429s",
    )
    parser.add_argument(
        "--cache-dir", default=".serve_cache",
        help="artifact store directory (created if missing)",
    )
    parser.add_argument(
        "--cache-cap-mb", type=int, default=DEFAULT_CAPACITY_BYTES // (1 << 20),
        help="artifact store size cap in MiB",
    )
    parser.add_argument(
        "--trace", default="", metavar="FILE",
        help="write JSONL trace events (serve.request, ...) to FILE",
    )
    parser.add_argument(
        "--allow-debug-hooks", action="store_true",
        help="honor test-only request debug hooks (never in production)",
    )
    args = parser.parse_args(argv)

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            cache_dir=args.cache_dir,
            cache_capacity_bytes=args.cache_cap_mb * (1 << 20),
            allow_debug_hooks=args.allow_debug_hooks,
        )
        daemon = ServeDaemon(config)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def _on_signal(signum, _frame):
        daemon._stop_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    def _run() -> int:
        daemon.start()
        print(
            f"serve: listening on {daemon.url} "
            f"(workers={config.workers} queue={config.queue_depth} "
            f"cache={config.cache_dir})",
            flush=True,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.point(
                "serve.boot",
                host=daemon.host,
                port=daemon.port,
                workers=config.workers,
                queue_depth=config.queue_depth,
            )
        daemon.wait_for_stop()
        clean = daemon.stop()
        stats = daemon.service.stats()
        print(
            f"serve: drained {'cleanly' if clean else 'WITH STRAGGLERS'} — "
            f"{stats['requests']} requests, {stats['cache_hits']} hits, "
            f"{stats['compiles']} compiles, {stats['rejected']} rejected",
            flush=True,
        )
        return 0 if clean else 1

    if args.trace:
        from repro.obs.tracer import tracing

        with tracing(args.trace):
            return _run()
    return _run()


if __name__ == "__main__":
    raise SystemExit(main())
