"""Loops and loop nests.

A :class:`LoopNest` is the unit the paper's compiler optimizes: a rectangular
nest of counted loops with a list of body statements.  The adaptive window
search (Section 4.4) picks one window size *per nest*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ir.statement import Statement


@dataclass(frozen=True)
class Loop:
    """A counted loop ``for var in range(start, stop, step)``."""

    var: str
    start: int
    stop: int
    step: int = 1

    def __post_init__(self):
        if self.step == 0:
            raise ConfigurationError(f"loop {self.var} has zero step")

    def values(self) -> range:
        return range(self.start, self.stop, self.step)

    @property
    def trip_count(self) -> int:
        return len(self.values())

    def __str__(self) -> str:
        return f"for({self.var}={self.start}; {self.var}<{self.stop}; {self.var}+={self.step})"


@dataclass(frozen=True)
class LoopNest:
    """A rectangular loop nest with a straight-line body of statements."""

    loops: Tuple[Loop, ...]
    body: Tuple[Statement, ...]
    name: str = "nest"

    def __post_init__(self):
        if not self.loops:
            raise ConfigurationError(f"loop nest {self.name!r} has no loops")
        if not self.body:
            raise ConfigurationError(f"loop nest {self.name!r} has an empty body")
        seen = set()
        for loop in self.loops:
            if loop.var in seen:
                raise ConfigurationError(
                    f"loop nest {self.name!r} reuses variable {loop.var!r}"
                )
            seen.add(loop.var)

    @staticmethod
    def of(
        loops: Sequence[Loop],
        body: Sequence[Statement],
        name: str = "nest",
    ) -> "LoopNest":
        return LoopNest(tuple(loops), tuple(body), name)

    @property
    def body_size(self) -> int:
        return len(self.body)

    @property
    def trip_count(self) -> int:
        """Total number of iterations of the whole nest."""
        total = 1
        for loop in self.loops:
            total *= loop.trip_count
        return total

    @property
    def instance_count(self) -> int:
        """Total statement instances executed by the nest."""
        return self.trip_count * self.body_size

    def iterations(self) -> Iterator[Tuple[Tuple[str, int], ...]]:
        """Lexicographic iteration-space walk yielding variable bindings."""
        ranges = [loop.values() for loop in self.loops]
        variables = [loop.var for loop in self.loops]
        for point in itertools.product(*ranges):
            yield tuple(zip(variables, point))

    def variables(self) -> Tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    def __str__(self) -> str:
        header = " ".join(str(loop) for loop in self.loops)
        body = "; ".join(str(s) for s in self.body)
        return f"{self.name}: {header} {{ {body} }}"
