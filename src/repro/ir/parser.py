"""Recursive-descent parser for statements.

Grammar (whitespace insensitive)::

    statement := ref '=' expr
    expr      := term (('+' | '-') term)*
    term      := factor (('*' | '/') factor)*
    factor    := ref | NUMBER | '(' expr ')'
    ref       := NAME [ '(' index (',' index)* ')' ]    # bare NAME = scalar
    index     := NAME '(' affine ')'                    # indirect subscript
               | affine
    affine    := ['-'] aterm (('+' | '-') aterm)*
    aterm     := INT [ '*' NAME ] | NAME [ '*' INT ]

Examples::

    A(i) = B(i) + C(i) + D(i) + E(i)
    x = a * (b + c) + d * (e + f + g)
    A(i,j) = A(i-1,j) + A(i,j-1)
    X(i) = X(i) + W(Y(i))
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.ir.expr import (
    AffineIndex,
    BinOp,
    Const,
    Expr,
    Index,
    IndirectIndex,
    Ref,
)
from repro.ir.statement import Statement

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\.\d+|\d+)|(?P<name>[A-Za-z_]\w*)|(?P<sym>[-+*/(),=]))"
)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            if source[pos:].strip() == "":
                break
            raise ParseError("unexpected character", source, pos)
        if match.lastgroup is None:  # pure whitespace tail
            break
        text = match.group(match.lastgroup)
        tokens.append(_Token(match.lastgroup, text, match.start(match.lastgroup)))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        at = self.index + offset
        return self.tokens[at] if at < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", self.source, len(self.source))
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, got {token.text!r}", self.source, token.pos)
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        lhs = self.parse_ref()
        self._expect("=")
        rhs = self.parse_expr()
        self._check_done()
        return Statement(lhs, rhs)

    def parse_expr_entry(self) -> Expr:
        expr = self.parse_expr()
        self._check_done()
        return expr

    def _check_done(self) -> None:
        token = self._peek()
        if token is not None:
            raise ParseError(f"trailing input {token.text!r}", self.source, token.pos)

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            token = self._peek()
            if token is None or token.text not in ("+", "-"):
                return left
            self._next()
            right = self.parse_term()
            left = BinOp(token.text, left, right)

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            token = self._peek()
            if token is None or token.text not in ("*", "/"):
                return left
            self._next()
            right = self.parse_factor()
            left = BinOp(token.text, left, right)

    def parse_factor(self) -> Expr:
        token = self._peek()
        if token is None:
            raise ParseError("expected a factor", self.source, len(self.source))
        if token.text == "(":
            self._next()
            inner = self.parse_expr()
            self._expect(")")
            return inner
        if token.kind == "number":
            self._next()
            return Const(float(token.text))
        if token.kind == "name":
            return self.parse_ref()
        raise ParseError(f"unexpected token {token.text!r}", self.source, token.pos)

    def parse_ref(self) -> Ref:
        name_token = self._next()
        if name_token.kind != "name":
            raise ParseError(
                f"expected an identifier, got {name_token.text!r}",
                self.source,
                name_token.pos,
            )
        following = self._peek()
        if following is None or following.text != "(":
            return Ref(name_token.text, ())  # scalar
        self._expect("(")
        indices = [self.parse_index()]
        while self._accept(","):
            indices.append(self.parse_index())
        self._expect(")")
        return Ref(name_token.text, tuple(indices))

    def parse_index(self) -> Index:
        token = self._peek()
        after = self._peek(1)
        if (
            token is not None
            and token.kind == "name"
            and after is not None
            and after.text == "("
        ):
            # Indirect subscript: NAME '(' affine ')'
            array = self._next().text
            self._expect("(")
            inner = self.parse_affine()
            self._expect(")")
            return IndirectIndex(array, inner)
        return self.parse_affine()

    def parse_affine(self) -> AffineIndex:
        coeffs: List[Tuple[str, int]] = []
        const = 0
        sign = 1
        if self._accept("-"):
            sign = -1
        while True:
            var, coeff = self._parse_affine_term()
            if var is None:
                const += sign * coeff
            else:
                coeffs.append((var, sign * coeff))
            token = self._peek()
            if token is not None and token.text in ("+", "-"):
                sign = 1 if token.text == "+" else -1
                self._next()
                continue
            break
        merged: List[Tuple[str, int]] = []
        seen = {}
        for var, coeff in coeffs:
            if var in seen:
                seen[var] += coeff
            else:
                seen[var] = coeff
                merged.append((var, 0))
        merged = [(var, seen[var]) for var, _ in merged if seen[var] != 0]
        return AffineIndex(tuple(merged), const)

    def _parse_affine_term(self) -> Tuple[Optional[str], int]:
        """One ``aterm``; returns (var or None, coefficient/constant)."""
        token = self._next()
        if token.kind == "number":
            if "." in token.text:
                raise ParseError("subscripts must be integers", self.source, token.pos)
            value = int(token.text)
            if self._accept("*"):
                var_token = self._next()
                if var_token.kind != "name":
                    raise ParseError(
                        "expected a loop variable after '*'", self.source, var_token.pos
                    )
                return var_token.text, value
            return None, value
        if token.kind == "name":
            if self._accept("*"):
                num_token = self._next()
                if num_token.kind != "number" or "." in num_token.text:
                    raise ParseError(
                        "expected an integer after '*'", self.source, num_token.pos
                    )
                return token.text, int(num_token.text)
            return token.text, 1
        raise ParseError(f"unexpected token {token.text!r} in subscript", self.source, token.pos)


def parse_statement(source: str) -> Statement:
    """Parse ``"LHS = RHS"`` into a :class:`~repro.ir.statement.Statement`."""
    return _Parser(source).parse_statement()


def parse_expr(source: str) -> Expr:
    """Parse an expression (no assignment)."""
    return _Parser(source).parse_expr_entry()
