"""Expression trees and array subscripts.

Subscripts come in two shapes:

* :class:`AffineIndex` — a linear function of the enclosing loop variables,
  ``sum(coeff[v] * v) + const``.  These are the compile-time-analyzable
  references of the paper's Table 1.
* :class:`IndirectIndex` — a subscript that reads another array
  (``X(Y(i))``), common in the irregular applications (Radix, Barnes, FMM).
  These are *not* statically analyzable; the inspector-executor resolves
  them at "runtime" (Section 4.5).

Expressions are binary trees over :class:`Ref` and :class:`Const` with the
four arithmetic operators; parenthesization survives parsing through the
tree shape itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple, Union

from repro.errors import DependenceError

OPERATORS = ("+", "-", "*", "/")
#: Operator precedence used by the parser and the nested-set builder.
PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


@dataclass(frozen=True)
class AffineIndex:
    """``sum(coeffs[var] * var) + const`` over loop variables."""

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(var: str, coeff: int = 1, const: int = 0) -> "AffineIndex":
        return AffineIndex(((var, coeff),), const)

    @staticmethod
    def constant(value: int) -> "AffineIndex":
        return AffineIndex((), value)

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def evaluate(self, binding: Mapping[str, int]) -> int:
        """Concrete index under a loop-variable ``binding``."""
        total = self.const
        for var, coeff in self.coeffs:
            try:
                total += coeff * binding[var]
            except KeyError:
                raise DependenceError(f"unbound loop variable {var!r}") from None
        return total

    @property
    def is_analyzable(self) -> bool:
        return True

    def variables(self) -> Tuple[str, ...]:
        return tuple(var for var, _ in self.coeffs)

    def __str__(self) -> str:
        parts = []
        for var, coeff in self.coeffs:
            if coeff == 1:
                parts.append(var)
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts).replace("+-", "-")


@dataclass(frozen=True)
class IndirectIndex:
    """A subscript read through an index array: ``array(inner)``."""

    array: str
    inner: "AffineIndex"

    def evaluate(self, binding: Mapping[str, int]) -> int:
        raise DependenceError(
            f"indirect subscript {self} needs runtime index data; "
            "resolve through Program.resolve_index or the inspector"
        )

    @property
    def is_analyzable(self) -> bool:
        return False

    def variables(self) -> Tuple[str, ...]:
        return self.inner.variables()

    def __str__(self) -> str:
        return f"{self.array}({self.inner})"


Index = Union[AffineIndex, IndirectIndex]


class Expr:
    """Base class of expression nodes."""

    def refs(self) -> Iterator["Ref"]:
        """All array references in the subtree, left to right."""
        raise NotImplementedError

    def operator_counts(self) -> Dict[str, int]:
        """Count of each binary operator in the subtree."""
        counts: Dict[str, int] = {}
        for node in self.walk():
            if isinstance(node, BinOp):
                counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the subtree."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def refs(self) -> Iterator["Ref"]:
        return iter(())

    def walk(self) -> Iterator[Expr]:
        yield self

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference ``array(index0, index1, ...)``.

    Multi-dimensional references carry one index per dimension; the program's
    array declaration linearizes them row-major when instances are resolved.
    """

    array: str
    indices: Tuple[Index, ...]

    def refs(self) -> Iterator["Ref"]:
        yield self

    def walk(self) -> Iterator[Expr]:
        yield self

    @property
    def is_analyzable(self) -> bool:
        return all(index.is_analyzable for index in self.indices)

    def variables(self) -> Tuple[str, ...]:
        out = []
        for index in self.indices:
            out.extend(index.variables())
        return tuple(out)

    def __str__(self) -> str:
        if not self.indices:
            return self.array  # scalar
        inner = ",".join(str(i) for i in self.indices)
        return f"{self.array}({inner})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}")

    def refs(self) -> Iterator[Ref]:
        yield from self.left.refs()
        yield from self.right.refs()

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        def wrap(child: Expr) -> str:
            if isinstance(child, BinOp) and PRECEDENCE[child.op] < PRECEDENCE[self.op]:
                return f"({child})"
            return str(child)

        return f"{wrap(self.left)} {self.op} {wrap(self.right)}"
