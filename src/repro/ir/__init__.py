"""Compiler IR: expressions, statements, loop nests, dependences.

The paper's compiler is an LLVM source-to-source pass over loop-dominated C
programs; our substitute is a small explicit IR.  Statements are parsed from
strings like ``"A(i) = B(i) + C(i) * (D(i) + E(i))"``; subscripts are affine
expressions of loop variables, or indirect through an index array
(``X(Y(i))``) for the irregular workloads.
"""

from repro.ir.expr import (
    AffineIndex,
    BinOp,
    Const,
    Expr,
    IndirectIndex,
    Ref,
)
from repro.ir.parser import parse_expr, parse_statement
from repro.ir.statement import Access, Statement, StatementInstance
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import ArrayDecl, Program
from repro.ir.nested_sets import LeafOperand, OperandSet, build_operand_tree
from repro.ir.dependence import (
    Dependence,
    DependenceKind,
    analyzable_fraction,
    instance_dependences,
)
from repro.ir.inspector import InspectorExecutor

__all__ = [
    "AffineIndex",
    "BinOp",
    "Const",
    "Expr",
    "IndirectIndex",
    "Ref",
    "parse_expr",
    "parse_statement",
    "Access",
    "Statement",
    "StatementInstance",
    "Loop",
    "LoopNest",
    "ArrayDecl",
    "Program",
    "LeafOperand",
    "OperandSet",
    "build_operand_tree",
    "Dependence",
    "DependenceKind",
    "analyzable_fraction",
    "instance_dependences",
    "InspectorExecutor",
]
