"""Inspector–executor support for may-dependences (paper Section 4.5).

Irregular applications access arrays through index arrays (``X(Y(i))``)
whose contents are unknown at compile time.  The paper inserts an
*inspector* over the first iterations of the outer timing loop: it runs the
access pattern once, recording the concrete elements each instance touches;
the *executor* (the remaining timing iterations, where subcomputation
scheduling is actually applied) consumes that information.

Our workloads hand the Program its index-array contents up front (they play
the role of runtime values), so the inspector's job is to (1) verify data is
available, (2) materialize the concrete access sets, and (3) expose the
may-dependence edges those accesses induce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import DependenceError, WorkloadError
from repro.ir.dependence import Dependence, instance_dependences
from repro.ir.expr import IndirectIndex
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.statement import StatementInstance


@dataclass
class InspectionResult:
    """What the inspector learned about one nest."""

    nest_name: str
    instances_inspected: int
    indirect_reference_count: int
    touched_elements: Dict[str, Set[int]] = field(default_factory=dict)
    dependences: List[Dependence] = field(default_factory=list)

    @property
    def has_may_dependences(self) -> bool:
        return self.indirect_reference_count > 0


class InspectorExecutor:
    """Runs the inspection phase for a program's irregular nests."""

    def __init__(self, program: Program, inspect_iterations: int = 4):
        self.program = program
        self.inspect_iterations = inspect_iterations
        self._results: Dict[str, InspectionResult] = {}

    def needs_inspection(self, nest: LoopNest) -> bool:
        """True when the nest contains indirect references."""
        return any(not s.is_analyzable for s in nest.body)

    def index_arrays_of(self, nest: LoopNest) -> Set[str]:
        """Names of index arrays the nest reads through."""
        found: Set[str] = set()
        for statement in nest.body:
            for ref in statement.refs():
                for index in ref.indices:
                    if isinstance(index, IndirectIndex):
                        found.add(index.array)
        return found

    def inspect(self, nest: LoopNest) -> InspectionResult:
        """Run the inspector over the leading iterations of ``nest``.

        Raises :class:`~repro.errors.WorkloadError` when an index array has
        no runtime data — the situation the inspector exists to prevent.
        """
        for index_array in self.index_arrays_of(nest):
            if index_array not in self.program.index_data:
                raise WorkloadError(
                    f"inspector: index array {index_array!r} has no runtime data"
                )
        budget = self.inspect_iterations * nest.body_size
        inspected: List[StatementInstance] = []
        indirect_refs = 0
        touched: Dict[str, Set[int]] = {}
        for inst in self.program.nest_instances(nest):
            if len(inspected) >= budget:
                break
            inspected.append(inst)
            for ref in (inst.statement.lhs, *inst.statement.input_refs()):
                if not ref.is_analyzable:
                    indirect_refs += 1
            for access in inst.accesses():
                touched.setdefault(access.array, set()).add(access.index)
        result = InspectionResult(
            nest_name=nest.name,
            instances_inspected=len(inspected),
            indirect_reference_count=indirect_refs,
            touched_elements=touched,
            dependences=instance_dependences(inspected),
        )
        self._results[nest.name] = result
        return result

    def inspect_all(self) -> Dict[str, InspectionResult]:
        """Inspect every nest that needs it; returns results per nest name."""
        for nest in self.program.nests:
            if self.needs_inspection(nest):
                self.inspect(nest)
        return dict(self._results)

    def result_for(self, nest_name: str) -> InspectionResult:
        try:
            return self._results[nest_name]
        except KeyError:
            raise DependenceError(
                f"nest {nest_name!r} has not been inspected"
            ) from None
