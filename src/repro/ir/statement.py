"""Statements, concrete accesses, and statement instances.

A *statement* is the static program text (``A(i) = B(i) + C(i)``); a
*statement instance* is its execution in one loop iteration (the paper's
terminology, Section 3 footnote 2).  Instances carry fully-resolved
:class:`Access` objects — (array, flat element index) pairs — which is what
the partitioner's ``GetNode`` and the simulator operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.ir.expr import Expr, Ref


@dataclass(frozen=True, slots=True)
class Access:
    """A concrete element access: ``array[index]``."""

    array: str
    index: int

    def key(self) -> Tuple[str, int]:
        return (self.array, self.index)

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True, slots=True)
class Statement:
    """A static assignment statement ``lhs = rhs``."""

    lhs: Ref
    rhs: Expr
    label: str = ""

    def refs(self) -> Iterator[Ref]:
        """LHS first, then RHS references left-to-right."""
        yield self.lhs
        yield from self.rhs.refs()

    def input_refs(self) -> Tuple[Ref, ...]:
        return tuple(self.rhs.refs())

    @property
    def is_analyzable(self) -> bool:
        """True when every subscript is an affine function of loop vars."""
        return all(ref.is_analyzable for ref in self.refs())

    def operator_counts(self) -> Dict[str, int]:
        return self.rhs.operator_counts()

    def operation_count(self) -> int:
        return sum(self.operator_counts().values())

    def variables(self) -> Tuple[str, ...]:
        seen = []
        for ref in self.refs():
            for var in ref.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def __str__(self) -> str:
        text = f"{self.lhs} = {self.rhs}"
        return f"{self.label}: {text}" if self.label else text


@dataclass(frozen=True, slots=True)
class StatementInstance:
    """One execution of a statement under a concrete loop binding.

    ``seq`` is the global execution ordinal of the instance within its
    program (window grouping operates on consecutive ``seq`` values);
    ``reads``/``write`` are the resolved accesses; ``read_of`` maps each RHS
    Ref occurrence position to its access, so the operand tree can attach
    locations to structurally-identical references.
    """

    statement: Statement
    binding: Tuple[Tuple[str, int], ...]
    seq: int
    reads: Tuple[Access, ...]
    write: Access
    nest_name: str = ""
    iteration: Tuple[int, ...] = ()
    body_index: int = 0  # position of the static statement in its loop body

    @property
    def static_key(self) -> Tuple[str, int]:
        """Identity of the static statement this instance executes."""
        return (self.nest_name, self.body_index)

    def binding_map(self) -> Dict[str, int]:
        return dict(self.binding)

    def accesses(self) -> Tuple[Access, ...]:
        """All accesses, reads first then the write."""
        return self.reads + (self.write,)

    def read_for_position(self, position: int) -> Access:
        """Access of the ``position``-th RHS reference (left-to-right)."""
        return self.reads[position]

    def __str__(self) -> str:
        bind = ",".join(f"{var}={val}" for var, val in self.binding)
        return f"{self.statement}  @[{bind}]"
