"""Data dependence analysis over statement instances.

The scheduler needs flow / anti / output dependences between nearby
statement instances to insert synchronizations (Section 4.5) and to keep
parallel subcomputations correct.  Because windows operate on concrete
instances, we analyze dependences *exactly* at instance granularity with a
single forward scan (last-writer / readers-since-write maps) instead of a
symbolic subscript test — this is the instance-level equivalent of
Maydan-style exact analysis for the affine references, and it consumes
inspector output for the indirect ones.

Static may-dependence detection (:func:`may_depend`) is what triggers the
inspector–executor path for irregular nests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.ir.program import Program
from repro.ir.statement import Access, StatementInstance


class DependenceKind(enum.Enum):
    FLOW = "flow"      # read-after-write
    ANTI = "anti"      # write-after-read
    OUTPUT = "output"  # write-after-write

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Dependence:
    """A dependence from instance ``src_seq`` to later instance ``dst_seq``."""

    src_seq: int
    dst_seq: int
    kind: DependenceKind
    access: Access

    def __str__(self) -> str:
        return f"{self.kind} {self.access} : {self.src_seq} -> {self.dst_seq}"


def instance_dependences(
    instances: Sequence[StatementInstance],
) -> List[Dependence]:
    """All pairwise dependences among ``instances`` (in execution order).

    One forward scan; self-dependences within an instance (e.g.
    ``X(i) = X(i) + ...``) are reported as a FLOW edge from the instance to
    itself only when the same element is both read and written — callers use
    this to serialize reductions.
    """
    deps: List[Dependence] = []
    last_writer: Dict[Tuple[str, int], int] = {}
    readers_since_write: Dict[Tuple[str, int], List[int]] = {}

    for inst in instances:
        for read in inst.reads:
            key = read.key()
            writer = last_writer.get(key)
            if writer is not None:
                deps.append(Dependence(writer, inst.seq, DependenceKind.FLOW, read))
            readers_since_write.setdefault(key, []).append(inst.seq)
        wkey = inst.write.key()
        for reader in readers_since_write.get(wkey, ()):  # includes self-read
            if reader != inst.seq:
                deps.append(
                    Dependence(reader, inst.seq, DependenceKind.ANTI, inst.write)
                )
        writer = last_writer.get(wkey)
        if writer is not None:
            deps.append(
                Dependence(writer, inst.seq, DependenceKind.OUTPUT, inst.write)
            )
        last_writer[wkey] = inst.seq
        readers_since_write[wkey] = []
    return deps


def dependence_sources(
    instances: Sequence[StatementInstance],
) -> Dict[int, Set[int]]:
    """Map of instance seq -> seqs of earlier instances it depends on."""
    sources: Dict[int, Set[int]] = {inst.seq: set() for inst in instances}
    for dep in instance_dependences(instances):
        if dep.src_seq != dep.dst_seq:
            sources[dep.dst_seq].add(dep.src_seq)
    return sources


def may_depend(program: Program) -> bool:
    """True when any nest contains an indirect reference (a may-dependence).

    Exact subscript values are then unknown at compile time; the paper
    handles this with the inspector-executor paradigm (Section 4.5).
    """
    for nest in program.nests:
        for statement in nest.body:
            if not statement.is_analyzable:
                return True
    return False


def analyzable_fraction(program: Program, max_instances: int = 20000) -> float:
    """Fraction of dynamic data references that are statically analyzable.

    This is the quantity of the paper's Table 1.  Weighted by dynamic
    execution: each instance contributes one reference per LHS/RHS ref, and
    a reference is analyzable when all its subscripts are affine in the loop
    variables.  Sampling caps the scan at ``max_instances`` instances, which
    is exact for our workloads (statement mix is iteration-invariant).
    """
    analyzable = 0
    total = 0
    count = 0
    for nest in program.nests:
        for inst in program.nest_instances(nest):
            refs = [inst.statement.lhs, *inst.statement.input_refs()]
            for ref in refs:
                total += 1
                if ref.is_analyzable:
                    analyzable += 1
            count += 1
            if count >= max_instances:
                break
        if count >= max_instances:
            break
    return analyzable / total if total else 1.0
