"""Vectorized affine access extraction (the closed-form view of a nest).

The scalar pipeline resolves every subscript one statement instance at a
time (:meth:`repro.ir.program.Program.resolve_ref`).  This module computes
the same resolution *in closed form* over the whole iteration space:

* an :class:`AccessColumn` per static reference — the flat element index of
  that reference at every iteration of the nest, as one ``int64`` array;
* a :class:`NestAccessTable` bundling the columns of every body statement
  (reads in RHS order, then the write), which is the substrate for both the
  vectorized partitioner tables (:mod:`repro.core.vectorized`) and the
  analytic locality model (:mod:`repro.core.locality`).

Semantics match the scalar resolver bit for bit:

* affine subscripts evaluate ``sum(coeff * var) + const`` on the iteration
  grid;
* multi-dimensional references linearize row-major with per-dimension
  clamping (:meth:`repro.ir.program.ArrayDecl.linearize`'s halo model);
* indirect subscripts gather through the program's runtime index data with
  the same ``data[inner % len(data)]`` rule;
* scalar references (no indices) resolve to element 0.

The equivalence is enforced in check mode (`check_access_table`) and by the
property tests in ``tests/check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.ir.expr import AffineIndex, IndirectIndex, Ref
from repro.ir.loop import LoopNest
from repro.ir.program import Program


@dataclass(frozen=True)
class AccessColumn:
    """One static reference's resolved element index per iteration.

    ``array`` names the referenced array; ``indices[k]`` is the flat element
    index at the nest's ``k``-th iteration (lexicographic order, matching
    :meth:`LoopNest.iterations`).  ``affine`` is False when any subscript is
    indirect (resolved through runtime index data rather than closed form).
    """

    array: str
    indices: np.ndarray
    affine: bool


@dataclass(frozen=True)
class NestAccessTable:
    """All resolved access columns of one nest.

    ``reads[s][r]`` is statement ``s``'s ``r``-th RHS reference column (the
    order of ``Statement.input_refs``, which is also the order of
    ``StatementInstance.reads``); ``writes[s]`` is its LHS column.
    ``iterations`` is the trip count; instance ``i`` of the nest stream is
    iteration ``i // body_size``, body statement ``i % body_size``.
    """

    nest_name: str
    iterations: int
    body_size: int
    reads: Tuple[Tuple[AccessColumn, ...], ...]
    writes: Tuple[AccessColumn, ...]

    def columns(self) -> List[AccessColumn]:
        """Every column in canonical order: per statement, reads then write."""
        out: List[AccessColumn] = []
        for s in range(self.body_size):
            out.extend(self.reads[s])
            out.append(self.writes[s])
        return out


def iteration_grid(nest: LoopNest) -> Dict[str, np.ndarray]:
    """Loop variable -> its value at every iteration (lexicographic order).

    The closed form of :meth:`LoopNest.iterations`: for loops with trip
    counts ``t_0 .. t_n`` (outermost first), variable ``k`` repeats each of
    its values ``prod(t_{k+1:})`` times, tiled ``prod(t_{:k})`` times.
    """
    trips = [loop.trip_count for loop in nest.loops]
    total = 1
    for t in trips:
        total *= t
    grid: Dict[str, np.ndarray] = {}
    repeat = total
    tile = 1
    for loop, trip in zip(nest.loops, trips):
        repeat //= max(trip, 1)
        values = np.arange(loop.start, loop.stop, loop.step, dtype=np.int64)
        grid[loop.var] = np.tile(np.repeat(values, repeat), tile)
        tile *= max(trip, 1)
    return grid


def _evaluate_affine(
    index: AffineIndex, grid: Dict[str, np.ndarray], iterations: int
) -> np.ndarray:
    """``sum(coeff * var) + const`` over the whole grid."""
    total = np.full(iterations, index.const, dtype=np.int64)
    for var, coeff in index.coeffs:
        values = grid.get(var)
        if values is None:
            raise WorkloadError(f"unbound loop variable {var!r}")
        total += coeff * values
    return total


def _evaluate_index(
    program: Program,
    index,
    grid: Dict[str, np.ndarray],
    iterations: int,
) -> Tuple[np.ndarray, bool]:
    """One subscript's value per iteration; returns (values, is_affine)."""
    if isinstance(index, AffineIndex):
        return _evaluate_affine(index, grid, iterations), True
    if isinstance(index, IndirectIndex):
        data = program.index_data.get(index.array)
        if data is None:
            raise WorkloadError(
                f"no runtime data for index array {index.array!r}; "
                "call set_index_data or run the inspector first"
            )
        if not data:
            raise WorkloadError(f"index array {index.array!r} is empty")
        inner = _evaluate_affine(index.inner, grid, iterations)
        table = np.asarray(data, dtype=np.int64)
        return table[inner % len(table)], False
    raise WorkloadError(f"unknown index kind {type(index).__name__}")


def resolve_column(
    program: Program,
    ref: Ref,
    grid: Dict[str, np.ndarray],
    iterations: int,
) -> AccessColumn:
    """Resolve one static reference over the whole iteration grid."""
    decl = program.arrays.get(ref.array)
    if decl is None:
        raise WorkloadError(f"undeclared array {ref.array!r}")
    if not ref.indices:  # scalar
        return AccessColumn(ref.array, np.zeros(iterations, dtype=np.int64), True)
    if len(ref.indices) != len(decl.dims):
        raise WorkloadError(
            f"array {decl.name!r} has {len(decl.dims)} dims, "
            f"got {len(ref.indices)} subscripts"
        )
    flat = np.zeros(iterations, dtype=np.int64)
    affine = True
    for dim, index in zip(decl.dims, ref.indices):
        values, index_affine = _evaluate_index(program, index, grid, iterations)
        affine = affine and index_affine
        # Row-major with the same per-dimension halo clamp as linearize().
        flat = flat * dim + np.clip(values, 0, dim - 1)
    return AccessColumn(ref.array, flat, affine)


def access_table(program: Program, nest: LoopNest) -> NestAccessTable:
    """The full :class:`NestAccessTable` of ``nest`` (closed-form resolve)."""
    grid = iteration_grid(nest)
    iterations = nest.trip_count
    reads: List[Tuple[AccessColumn, ...]] = []
    writes: List[AccessColumn] = []
    for statement in nest.body:
        reads.append(
            tuple(
                resolve_column(program, ref, grid, iterations)
                for ref in statement.input_refs()
            )
        )
        writes.append(resolve_column(program, statement.lhs, grid, iterations))
    return NestAccessTable(
        nest_name=nest.name,
        iterations=iterations,
        body_size=nest.body_size,
        reads=tuple(reads),
        writes=tuple(writes),
    )
