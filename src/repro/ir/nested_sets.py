"""Level-based nested operand sets (paper Section 4.2).

``variable_parsing`` (Algorithm 1, line 5) classifies the data accessed by a
statement into nested sets whose nesting reflects computation priority:
parenthesized groups and higher-precedence chains must be computed before
the surrounding lower-precedence operation, so they form inner sets.  The
MST is built innermost set first; each finished inner set is treated as a
single component at the next level (Kruskal's union-find carries over).

For ``x = a * (b + c) + d * (e + f + g)`` the paper lists the flattened form
``(a, (b, c), d, (e, f, g))``.  We build the slightly more structured
``((a, (b, c)), (d, (e, f, g)))``: every set then corresponds to an
associative chain of one precedence class, so *any* join order inside a set
is a semantically valid partial reduction, which makes generated code
correct by construction (subtraction and division are handled by marking
members negated/inverted).  The paper's flat variant is available as
``flatten_products=True`` for reproducing its worked example literally.

Constants contribute an operation wherever their sibling lands but occupy no
node on the network, so they are folded into the set's operation count
rather than becoming members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.ir.expr import BinOp, Const, Expr, Ref


@dataclass(frozen=True)
class LeafOperand:
    """A data operand: the ``position``-th RHS reference of the statement.

    ``negated``/``inverted`` record whether the member entered its chain via
    ``-`` or ``/`` (cost: the paper charges division 10x an add/multiply).
    """

    position: int
    ref: Ref
    negated: bool = False
    inverted: bool = False

    @property
    def member_count(self) -> int:
        return 1

    def leaves(self) -> Tuple["LeafOperand", ...]:
        return (self,)

    def __str__(self) -> str:
        prefix = "-" if self.negated else ("1/" if self.inverted else "")
        return f"{prefix}{self.ref}"


@dataclass(frozen=True)
class OperandSet:
    """An associative chain of one precedence class.

    ``op_kind`` is ``'+'`` (covering +/-) or ``'*'`` (covering */ /).
    ``extra_ops`` counts operations against constants folded into the set.
    """

    op_kind: str
    members: Tuple[Union["OperandSet", LeafOperand], ...]
    negated: bool = False
    inverted: bool = False
    extra_ops: int = 0

    @property
    def member_count(self) -> int:
        return len(self.members)

    def leaves(self) -> Tuple[LeafOperand, ...]:
        out: List[LeafOperand] = []
        for member in self.members:
            out.extend(member.leaves())
        return tuple(out)

    def operation_count(self) -> int:
        """Binary ops needed to reduce this set (including nested sets)."""
        count = max(len(self.members) - 1, 0) + self.extra_ops
        for member in self.members:
            if isinstance(member, OperandSet):
                count += member.operation_count()
        return count

    def innermost_first(self) -> List["OperandSet"]:
        """All sets, deepest first — the MST construction order."""
        ordered: List[OperandSet] = []
        for member in self.members:
            if isinstance(member, OperandSet):
                ordered.extend(member.innermost_first())
        ordered.append(self)
        return ordered

    def __str__(self) -> str:
        inner = ", ".join(str(member) for member in self.members)
        return f"({inner})"


def _class_of(op: str) -> str:
    return "+" if op in ("+", "-") else "*"


def _build(expr: Expr, counter: List[int], flatten_products: bool):
    """Recursive builder; returns LeafOperand | OperandSet | None (constant)."""
    if isinstance(expr, Const):
        return None
    if isinstance(expr, Ref):
        leaf = LeafOperand(counter[0], expr)
        counter[0] += 1
        return leaf
    if not isinstance(expr, BinOp):
        raise TypeError(f"unexpected expression node {type(expr).__name__}")

    op_class = _class_of(expr.op)
    members: List[Union[OperandSet, LeafOperand]] = []
    extra_ops = 0

    def absorb(node: Expr, mark: str) -> None:
        """Flatten ``node`` into this chain; mark '' | 'neg' | 'inv'."""
        nonlocal extra_ops
        if isinstance(node, BinOp) and _class_of(node.op) == op_class:
            # Same precedence class: splice its operands into this chain.
            absorb(node.left, "")
            right_mark = ""
            if node.op == "-":
                right_mark = "neg"
            elif node.op == "/":
                right_mark = "inv"
            # A mark on the whole spliced chain composes with the child mark,
            # but for movement/cost purposes only the op identity matters.
            absorb(node.right, right_mark or mark)
            return
        built = _build(node, counter, flatten_products)
        if built is None:
            extra_ops += 1  # an op against a constant, no network node
            return
        if mark == "neg":
            built = _with_flags(built, negated=True)
        elif mark == "inv":
            built = _with_flags(built, inverted=True)
        members.append(built)

    absorb(expr, "")

    if flatten_products and op_class == "+":
        # Paper-literal mode: splice each product chain's members directly
        # into the surrounding sum, as in the (a, (b, c), d, (e, f, g))
        # worked example.
        spliced: List[Union[OperandSet, LeafOperand]] = []
        for member in members:
            if isinstance(member, OperandSet) and member.op_kind == "*":
                spliced.extend(member.members)
                extra_ops += member.extra_ops
            else:
                spliced.append(member)
        members = spliced

    if not members:
        return None
    if len(members) == 1 and extra_ops == 0:
        return members[0]
    return OperandSet(op_class, tuple(members), extra_ops=extra_ops)


def _with_flags(node, negated: bool = False, inverted: bool = False):
    if isinstance(node, LeafOperand):
        return LeafOperand(node.position, node.ref, negated or node.negated, inverted or node.inverted)
    return OperandSet(
        node.op_kind,
        node.members,
        negated or node.negated,
        inverted or node.inverted,
        node.extra_ops,
    )


def build_operand_tree(
    expr: Expr, flatten_products: bool = False
) -> Optional[OperandSet]:
    """Build the nested operand sets of a statement's RHS.

    Returns None for an RHS with no array references (pure constant), and a
    single-member set for a one-reference RHS (a plain copy/scale) so callers
    always receive an :class:`OperandSet` when any data moves.
    """
    counter = [0]
    built = _build(expr, counter, flatten_products)
    if built is None:
        return None
    if isinstance(built, LeafOperand):
        return OperandSet("+", (built,))
    return built
