"""Whole programs: array declarations, runtime index data, loop nests.

The :class:`Program` is the compilation unit.  It owns array shapes (for
row-major linearization of multi-dimensional references), the runtime
contents of index arrays (needed to resolve indirect subscripts — in a real
run the inspector gathers these, Section 4.5), and the loop nests to
optimize.  It produces the stream of resolved
:class:`~repro.ir.statement.StatementInstance` objects that the partitioner
and the simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.ir.expr import AffineIndex, IndirectIndex, Ref
from repro.ir.loop import LoopNest
from repro.ir.statement import Access, StatementInstance


@dataclass(frozen=True)
class ArrayDecl:
    """An array with a (possibly multi-dimensional) shape.

    ``bank_phase`` optionally pins the L2 bank of the array's first block
    (NDP-friendly allocation via the paper's OS page-coloring support);
    co-phased arrays keep same-index operands on nearby banks.
    """

    name: str
    dims: Tuple[int, ...]
    element_size: int = 8
    bank_phase: Optional[int] = None

    @property
    def flat_length(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim
        return max(total, 1)

    def linearize(self, indices: Sequence[int]) -> int:
        """Row-major flat index with bounds clamping per dimension.

        Subscripts like ``A(i-1)`` walk one step outside the iteration space
        at the boundary; real codes guard these with halo cells.  We clamp to
        the valid range, which models a halo without complicating workload
        definitions.
        """
        if len(indices) != len(self.dims):
            raise WorkloadError(
                f"array {self.name!r} has {len(self.dims)} dims, "
                f"got {len(indices)} subscripts"
            )
        flat = 0
        for dim, index in zip(self.dims, indices):
            flat = flat * dim + min(max(index, 0), dim - 1)
        return flat


class Program:
    """A named collection of array declarations and loop nests."""

    #: Instance streams longer than this are not memoized (memory bound for
    #: pathological nests; every workload in the suite fits comfortably).
    _INSTANCE_CACHE_LIMIT = 1 << 17

    def __init__(self, name: str = "program"):
        self.name = name
        self.arrays: Dict[str, ArrayDecl] = {}
        self.index_data: Dict[str, List[int]] = {}
        self.nests: List[LoopNest] = []
        # (nest name, seq base) -> fully-resolved instance stream.  The
        # partitioner walks the same stream many times (profiling, predictor
        # training, the gate's candidate plans, every window-size trial, the
        # final schedule); instances are immutable, so resolving subscripts
        # once and replaying the tuple is observationally identical.
        self._instance_cache: Dict[Tuple[str, int], Tuple[StatementInstance, ...]] = {}

    # -- construction -------------------------------------------------------

    def declare(
        self,
        name: str,
        *dims: int,
        element_size: int = 8,
        bank_phase: Optional[int] = None,
    ) -> ArrayDecl:
        """Declare an array; no dims declares a scalar (length-1 array)."""
        if name in self.arrays:
            raise WorkloadError(f"array {name!r} declared twice in {self.name!r}")
        decl = ArrayDecl(name, tuple(dims) if dims else (1,), element_size, bank_phase)
        self.arrays[name] = decl
        return decl

    def set_index_data(self, name: str, values: Sequence[int]) -> None:
        """Provide runtime contents for an index array used indirectly."""
        if name not in self.arrays:
            raise WorkloadError(f"index array {name!r} is not declared")
        self.index_data[name] = list(values)
        # Indirect subscripts resolve through index data, so any cached
        # instance stream may now be stale.
        self._instance_cache.clear()

    def add_nest(self, nest: LoopNest) -> None:
        self._check_declared(nest)
        self.nests.append(nest)

    def _check_declared(self, nest: LoopNest) -> None:
        for statement in nest.body:
            for ref in statement.refs():
                if ref.array not in self.arrays:
                    raise WorkloadError(
                        f"statement {statement} references undeclared array "
                        f"{ref.array!r}"
                    )
                for index in ref.indices:
                    if isinstance(index, IndirectIndex) and index.array not in self.arrays:
                        raise WorkloadError(
                            f"indirect subscript uses undeclared index array "
                            f"{index.array!r}"
                        )

    # -- resolution -----------------------------------------------------------

    def resolve_index(self, index, binding: Mapping[str, int]) -> int:
        """Evaluate one subscript (affine directly; indirect via index data)."""
        if isinstance(index, AffineIndex):
            return index.evaluate(binding)
        if isinstance(index, IndirectIndex):
            data = self.index_data.get(index.array)
            if data is None:
                raise WorkloadError(
                    f"no runtime data for index array {index.array!r}; "
                    "call set_index_data or run the inspector first"
                )
            inner = index.inner.evaluate(binding)
            if not data:
                raise WorkloadError(f"index array {index.array!r} is empty")
            return data[inner % len(data)]
        raise WorkloadError(f"unknown index kind {type(index).__name__}")

    def resolve_ref(self, ref: Ref, binding: Mapping[str, int]) -> Access:
        """Resolve a reference to a concrete (array, flat index) access."""
        decl = self.arrays.get(ref.array)
        if decl is None:
            raise WorkloadError(f"undeclared array {ref.array!r}")
        if not ref.indices:  # scalar
            return Access(ref.array, 0)
        values = [self.resolve_index(index, binding) for index in ref.indices]
        return Access(ref.array, decl.linearize(values))

    # -- instance streams ------------------------------------------------------

    def nest_instances(self, nest: LoopNest, seq_base: int = 0) -> Iterator[StatementInstance]:
        """All statement instances of ``nest`` in execution order.

        Fully-consumed streams are memoized per (nest, seq base) — replays
        iterate the cached tuple instead of re-resolving every subscript.
        The cache is cleared whenever :meth:`set_index_data` changes what
        indirect references resolve to.
        """
        key = (nest.name, seq_base)
        cached = self._instance_cache.get(key)
        if cached is not None:
            return iter(cached)
        return self._generate_instances(nest, seq_base, key)

    def _generate_instances(
        self, nest: LoopNest, seq_base: int, key: Tuple[str, int]
    ) -> Iterator[StatementInstance]:
        collected: List[StatementInstance] = []
        seq = seq_base
        for binding in nest.iterations():
            binding_map = dict(binding)
            iteration = tuple(value for _, value in binding)
            for body_index, statement in enumerate(nest.body):
                reads = tuple(
                    self.resolve_ref(ref, binding_map) for ref in statement.input_refs()
                )
                write = self.resolve_ref(statement.lhs, binding_map)
                instance = StatementInstance(
                    statement=statement,
                    binding=binding,
                    seq=seq,
                    reads=reads,
                    write=write,
                    nest_name=nest.name,
                    iteration=iteration,
                    body_index=body_index,
                )
                collected.append(instance)
                yield instance
                seq += 1
        # Only a stream iterated to exhaustion is known-complete (partial
        # consumers — samples, inspection budgets — abandon the generator).
        if len(collected) <= self._INSTANCE_CACHE_LIMIT:
            self._instance_cache[key] = tuple(collected)

    def seq_base_of(self, nest: LoopNest) -> int:
        """Global seq of the first instance of ``nest`` in program order."""
        seq_base = 0
        for candidate in self.nests:
            if candidate is nest or candidate.name == nest.name:
                return seq_base
            seq_base += candidate.instance_count
        raise WorkloadError(f"nest {nest.name!r} is not part of program {self.name!r}")

    def instances(self) -> Iterator[StatementInstance]:
        """All instances of all nests, in program order."""
        seq_base = 0
        for nest in self.nests:
            yield from self.nest_instances(nest, seq_base)
            seq_base += nest.instance_count

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self):
        """Drop the memoized instance streams: they are pure derived state,
        and shipping them to worker processes would dwarf the program itself."""
        state = self.__dict__.copy()
        state["_instance_cache"] = {}
        return state

    # -- integration -------------------------------------------------------------

    def declare_on(self, machine) -> None:
        """Declare every array on a machine's data layout (idempotent-safe)."""
        for decl in self.arrays.values():
            if not machine.layout.has_array(decl.name):
                machine.declare_array(
                    decl.name, decl.flat_length, decl.element_size, decl.bank_phase
                )

    def declare_in(self, session) -> None:
        """Declare every array in a compilation session's machine layout."""
        self.declare_on(session.machine)

    def total_instances(self) -> int:
        return sum(nest.instance_count for nest in self.nests)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, arrays={len(self.arrays)}, "
            f"nests={len(self.nests)}, instances={self.total_instances()})"
        )
