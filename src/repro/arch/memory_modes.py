"""KNL memory modes: flat / cache / hybrid MCDRAM (paper Section 6.1).

* ``FLAT`` — MCDRAM and DDR4 are both addressable; the toolchain decides
  per-array placement (the paper uses a VTune-style profile; we rank arrays
  by access count and pack the hottest into MCDRAM — see
  :meth:`McdramModel.place_flat`).
* ``CACHE`` — MCDRAM is a direct-mapped memory-side cache in front of DDR4.
* ``HYBRID`` — half the MCDRAM capacity is cache, half is flat memory
  (the paper uses a 50/50 split; so do we).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.mem.dram import DDR4_PARAMS, MCDRAM_PARAMS, DramParams


class MemoryMode(enum.Enum):
    """The three KNL memory modes; values match Fig 22's X/Y/Z labels."""

    FLAT = "X"
    CACHE = "Y"
    HYBRID = "Z"

    @property
    def label(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.name


@dataclass
class McdramModel:
    """Behavioural model of the MCDRAM under a given memory mode.

    ``mcdram_capacity_bytes`` defaults to 16GB (KNL).  In flat/hybrid modes
    :meth:`place_flat` fills the flat portion with the hottest arrays; in
    cache/hybrid modes the memory-side cache is modelled as a direct-mapped
    tag array over block numbers.
    """

    mode: MemoryMode = MemoryMode.FLAT
    mcdram_capacity_bytes: int = 16 * (1 << 30)
    mcdram: DramParams = MCDRAM_PARAMS
    ddr: DramParams = DDR4_PARAMS
    line_size: int = 64
    _flat_arrays: Set[str] = field(default_factory=set)
    _tags: Dict[int, int] = field(default_factory=dict)
    #: Bumped whenever the flat-MCDRAM placement changes; consumers that
    #: cache anything derived from :meth:`in_flat_mcdram` (the machine's
    #: MC-node maps) compare epochs to invalidate.
    placement_epoch: int = 0

    @property
    def flat_capacity(self) -> int:
        """Bytes of MCDRAM exposed as flat memory."""
        if self.mode is MemoryMode.FLAT:
            return self.mcdram_capacity_bytes
        if self.mode is MemoryMode.HYBRID:
            return self.mcdram_capacity_bytes // 2
        return 0

    @property
    def cache_capacity(self) -> int:
        """Bytes of MCDRAM acting as memory-side cache."""
        return self.mcdram_capacity_bytes - self.flat_capacity

    def place_flat(self, array_bytes: Dict[str, int], hotness: Dict[str, float]) -> Set[str]:
        """Choose which arrays live in flat MCDRAM.

        Greedy by ``hotness`` (profile access counts) until the flat capacity
        is exhausted — the three-step VTune procedure of Section 6.1 reduced
        to its decision.  Returns (and remembers) the chosen array names.
        """
        self._flat_arrays = set()
        self.placement_epoch += 1
        budget = self.flat_capacity
        ranked = sorted(array_bytes, key=lambda a: (-hotness.get(a, 0.0), a))
        for name in ranked:
            if array_bytes[name] <= budget:
                self._flat_arrays.add(name)
                budget -= array_bytes[name]
        return set(self._flat_arrays)

    def in_flat_mcdram(self, array_name: str) -> bool:
        return array_name in self._flat_arrays

    def cache_lookup(self, block: int) -> bool:
        """Direct-mapped memory-side cache access; True on MCDRAM-cache hit."""
        if self.cache_capacity == 0:
            return False
        sets = self.cache_capacity // self.line_size
        index = block % sets
        hit = self._tags.get(index) == block
        self._tags[index] = block
        return hit

    def access_cycles(self, array_name: str, block: int) -> float:
        """Memory latency for one access to ``array_name``'s ``block``.

        Flat-resident arrays pay MCDRAM latency; otherwise the cache portion
        is consulted (hit: MCDRAM; miss: MCDRAM tag check + DDR fill).
        """
        if self.in_flat_mcdram(array_name):
            return self.mcdram.access_cycles
        if self.cache_capacity and self.cache_lookup(block):
            return self.mcdram.access_cycles
        if self.cache_capacity:
            return self.mcdram.access_cycles * 0.25 + self.ddr.access_cycles
        return self.ddr.access_cycles

    def access_energy_pj(self, array_name: str) -> float:
        """Per-access energy for the technology actually serving the array."""
        if self.in_flat_mcdram(array_name):
            return self.mcdram.energy_pj_per_access
        return self.ddr.energy_pj_per_access

    def reset(self) -> None:
        self._tags.clear()
