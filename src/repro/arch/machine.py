"""The manycore machine template (paper Section 2 + Section 6.1).

A :class:`Machine` bundles the mesh, the physical address mapping, the data
layout of program arrays, the cache geometry, the memory controllers, and
the active cluster/memory modes, and answers the two location questions the
partitioner asks:

* :meth:`home_node` — which mesh node's L2 bank is the SNUCA home of an
  array element (``GetNode`` when the predictor says "on chip").
* :meth:`mc_node` — which controller node serves the element on an L2 miss
  (``GetNode`` when the predictor says "miss"), which depends on the
  cluster mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import check
from repro.arch.cluster_modes import ClusterMode
from repro.arch.memory_modes import McdramModel, MemoryMode
from repro.cache.sram import CacheConfig
from repro.errors import ConfigurationError, FaultError
from repro.faults.plan import FaultPlan
from repro.mem.address import AddressMapping
from repro.mem.layout import DataLayout
from repro.noc.routing import Router
from repro.noc.topology import Coord, Mesh2D


@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of a machine instance."""

    mesh_cols: int = 6
    mesh_rows: int = 6
    l2_bank_count: int = 32
    mc_channel_count: int = 4
    l1_capacity: int = 32 * 1024
    l1_associativity: int = 8
    l2_bank_capacity: int = 1 << 20  # 1MB per tile, as on KNL
    l2_associativity: int = 16
    line_size: int = 64
    cluster_mode: ClusterMode = ClusterMode.QUADRANT
    memory_mode: MemoryMode = MemoryMode.FLAT
    mcdram_capacity_bytes: int = 16 * (1 << 30)

    def __post_init__(self):
        if self.l2_bank_count > self.mesh_cols * self.mesh_rows:
            raise ConfigurationError("more L2 banks than mesh nodes")
        if self.mc_channel_count != 4:
            raise ConfigurationError(
                "the template attaches MCs to the 4 corners; channel count must be 4"
            )


class Machine:
    """A configured manycore chip: geometry + mapping + modes.

    The machine owns a :class:`~repro.mem.layout.DataLayout`; workloads
    declare their arrays through :meth:`declare_array` and the partitioner /
    simulator then resolve element locations through the machine.
    """

    def __init__(self, config: MachineConfig = MachineConfig()):
        self.config = config
        self.mesh = Mesh2D(config.mesh_cols, config.mesh_rows)
        if check.enabled():
            # Check mode: whatever form distance_fn() took for this mesh
            # size (eager table or closed form), it must match the
            # Floyd-Warshall oracle.
            from repro.check.invariants import check_mesh_distance_fn

            check_mesh_distance_fn(self.mesh)
        self.mapping = AddressMapping.default(
            bank_count=config.l2_bank_count, channel_count=config.mc_channel_count
        )
        self.layout = DataLayout(self.mapping)
        self.l1_config = CacheConfig(
            config.l1_capacity, config.l1_associativity, config.line_size
        )
        self.l2_config = CacheConfig(
            config.l2_bank_capacity, config.l2_associativity, config.line_size
        )
        # L2 banks are placed on the first bank_count nodes in id order; on
        # the KNL preset (6x6 mesh, 32 banks) the 4 bankless nodes are the
        # top row's interior, mirroring KNL tiles without active banks.
        self.bank_to_node: List[int] = list(range(config.l2_bank_count))
        # DDR memory controllers at the corners (template, Figure 1); the
        # channel index orders them deterministically.
        self.mc_nodes: List[int] = list(self.mesh.corner_ids())
        # MCDRAM EDCs at the midpoints of the four mesh edges.
        self.edc_nodes: List[int] = self._edge_midpoints()
        self.mcdram = McdramModel(
            mode=config.memory_mode,
            mcdram_capacity_bytes=config.mcdram_capacity_bytes,
            line_size=config.line_size,
        )
        self._access_profile: Dict[str, float] = {}
        # -- fault / degradation state -------------------------------------
        # ``faults`` is the applied FaultPlan (None = pristine machine);
        # ``router`` computes (detour) routes and is shared by the NoC
        # accounting and the simulator.  ``_dead_nodes`` holds every tile
        # the plan ever kills (static or mid-run): placement and bank
        # homing avoid them all, so only schedules compiled *without* the
        # plan can ever need the simulator's relocation path.
        self.faults: Optional[FaultPlan] = None
        self.router = Router(self.mesh)
        self._dead_nodes: frozenset = frozenset()
        self._channel_degrade: Dict[int, float] = {}
        # -- location-map caches -------------------------------------------
        # Per-array home-node and MC-node maps (index order, plain int
        # lists for fast scalar lookup plus NumPy twins for vector math).
        # Home maps depend only on the immutable layout + cluster mode; MC
        # maps also depend on the MCDRAM flat placement and are invalidated
        # whenever ``mcdram.placement_epoch`` moves (record_profile or a
        # direct place_flat call).
        self._home_lists: Dict[str, List[int]] = {}
        self._home_arrays: Dict[str, np.ndarray] = {}
        self._mc_lists: Dict[str, List[int]] = {}
        self._mc_arrays: Dict[str, np.ndarray] = {}
        self._mc_epoch: int = self.mcdram.placement_epoch
        self._quad_by_node: Optional[np.ndarray] = None
        self._quad_remap: Optional[np.ndarray] = None
        self._nearest_edc: Optional[np.ndarray] = None
        self._corner_by_quadrant: Optional[np.ndarray] = None

    # -- array declaration & profile ---------------------------------------

    def declare_array(
        self,
        name: str,
        length: int,
        element_size: int = 8,
        bank_phase: Optional[int] = None,
    ) -> None:
        """Register a program array with the machine's data layout."""
        self.layout.declare(name, length, element_size, bank_phase)

    def record_profile(self, access_counts: Dict[str, float]) -> None:
        """Feed per-array access counts (the VTune step) and re-place MCDRAM."""
        self._access_profile = dict(access_counts)
        array_bytes = {s.name: s.byte_size for s in self.layout.arrays()}
        self.mcdram.place_flat(array_bytes, self._access_profile)

    # -- fault injection & graceful degradation -------------------------------

    def apply_faults(self, plan: FaultPlan) -> None:
        """Degrade this machine according to ``plan`` (DESIGN.md section 9).

        Validates the plan against the mesh, re-homes L2 banks off dead
        tiles (nearest healthy tile, deterministic ties by node id), wires
        the static link/node faults into the fault-aware router, and
        records per-channel memory latency multipliers.  Placement helpers
        (:meth:`alive_nodes`) exclude every tile the plan ever kills, so a
        schedule compiled on the degraded machine places nothing on
        offline nodes.  Mid-run faults (``at_unit > 0``) are activated by
        the simulator, which also relocates stranded subcomputations.

        Applying an **empty** plan is a no-op: the machine stays
        bit-identical to a pristine one.
        """
        if self.faults is not None:
            raise FaultError("a fault plan is already applied to this machine")
        self._validate_plan(plan)
        if plan.is_empty:
            return
        self.faults = plan
        self._dead_nodes = plan.all_dead_nodes()
        self._channel_degrade = plan.channel_factors()
        self.router.set_faults(plan.static_dead_links(), plan.static_dead_nodes())
        self._rehome_banks()
        if check.enabled():
            # Check mode: no L2 bank may be homed on a tile the plan ever
            # kills (set_faults audited the detour routes already).
            from repro.check.invariants import require

            for bank, node in enumerate(self.bank_to_node):
                require(
                    node not in self._dead_nodes,
                    f"bank {bank} re-homed onto dead tile {node}",
                )

    def _validate_plan(self, plan: FaultPlan) -> None:
        mesh = self.mesh
        for fault in plan.nodes:
            if not 0 <= fault.node < mesh.node_count:
                raise FaultError(f"fault plan kills unknown tile {fault.node}")
        for fault in plan.links:
            for end in (fault.src, fault.dst):
                if not 0 <= end < mesh.node_count:
                    raise FaultError(f"fault plan kills unknown link endpoint {end}")
            if mesh.distance(fault.src, fault.dst) != 1:
                raise FaultError(
                    f"fault plan kills {fault.src}->{fault.dst}, "
                    "which is not a mesh link"
                )
        for degrade in plan.channels:
            if not 0 <= degrade.channel < self.config.mc_channel_count:
                raise FaultError(
                    f"fault plan degrades unknown channel {degrade.channel}"
                )
            if degrade.latency_factor < 1.0:
                raise FaultError(
                    f"channel {degrade.channel} latency factor "
                    f"{degrade.latency_factor} must be >= 1.0"
                )
        dead = plan.all_dead_nodes()
        protected = set(self.mc_nodes) | set(self.edc_nodes)
        hit = sorted(dead & protected)
        if hit:
            raise FaultError(
                f"fault plan kills controller tiles {hit} (corner MCs and "
                "edge EDCs must stay online; degrade their channels instead)"
            )
        # The *fully* degraded machine (every fault active) must stay
        # connected, else some surviving tile could never be reached.
        probe = Router(mesh, plan.all_dead_links(), dead)
        probe.check_connected()

    def _rehome_banks(self) -> None:
        """Move L2 banks off dead tiles onto the nearest healthy ones."""
        alive = self.alive_nodes()
        if not alive:
            raise FaultError("fault plan kills every tile")
        distance = self.mesh.distance
        rehomed = []
        for bank, node in enumerate(self.bank_to_node):
            if node in self._dead_nodes:
                node = min(alive, key=lambda n: (distance(self.bank_to_node[bank], n), n))
            rehomed.append(node)
        self.bank_to_node = rehomed
        # Every cached location map embedded the old bank homes.
        self._home_lists.clear()
        self._home_arrays.clear()
        self._mc_lists.clear()
        self._mc_arrays.clear()
        self._quad_remap = None

    def alive_nodes(self) -> List[int]:
        """Tiles never killed by the applied plan (all tiles when pristine)."""
        dead = self._dead_nodes
        if not dead:
            return list(range(self.node_count))
        return [n for n in range(self.node_count) if n not in dead]

    def is_node_alive(self, node: int) -> bool:
        return node not in self._dead_nodes

    @property
    def dead_nodes(self) -> frozenset:
        """Every tile the applied plan kills at any point of the run."""
        return self._dead_nodes

    # -- geometry ------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self.mesh.node_count

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance between two node ids."""
        return self.mesh.distance(a, b)

    def node_of_bank(self, bank: int) -> int:
        return self.bank_to_node[bank % len(self.bank_to_node)]

    # -- data location (GetNode substrate) ------------------------------------

    def home_node(self, name: str, index: int, owner_hint: Optional[int] = None) -> int:
        """Mesh node whose L2 bank is the SNUCA home of ``name[index]``.

        In SNC-4 mode the page is homed inside its owner's quadrant: the
        owner is ``owner_hint`` when given, else the default block
        distribution's owner of the element.  In the other modes the home is
        the global SNUCA bank of the physical address.
        """
        if owner_hint is not None and self.config.cluster_mode is ClusterMode.SNC4:
            return self._home_node_slow(name, index, owner_hint)
        homes = self._home_lists.get(name)
        if homes is None:
            homes = self._build_home_map(name)
        if 0 <= index < len(homes):
            return homes[index]
        return self._home_node_slow(name, index, owner_hint)

    def _home_node_slow(
        self, name: str, index: int, owner_hint: Optional[int] = None
    ) -> int:
        """Uncached home-node resolution (hinted SNC-4 and error paths)."""
        bank = self.layout.l2_bank_of(name, index)
        node = self.node_of_bank(bank)
        if self.config.cluster_mode is ClusterMode.SNC4:
            owner = owner_hint if owner_hint is not None else self.default_owner(name, index)
            node = self._remap_into_quadrant(node, self.mesh.quadrant_of(owner))
        return node

    def home_node_map(self, name: str) -> np.ndarray:
        """Vectorized no-hint home node of every element of ``name``."""
        if name not in self._home_arrays:
            self._build_home_map(name)
        return self._home_arrays[name]

    def mc_node(self, name: str, index: int, requester: Optional[int] = None) -> int:
        """Controller node that serves an L2 miss on ``name[index]``.

        Flat-MCDRAM-resident arrays are served by the nearest EDC to the home
        bank; otherwise the DDR controller chosen by the cluster mode:
        all-to-all hashes over all 4 corners, quadrant/SNC-4 use the corner
        of the home bank's quadrant.
        """
        if requester is not None and self.config.cluster_mode is ClusterMode.SNC4:
            return self._mc_node_slow(name, index, requester)
        if self._mc_epoch != self.mcdram.placement_epoch:
            self._mc_lists.clear()
            self._mc_arrays.clear()
            self._mc_epoch = self.mcdram.placement_epoch
        mcs = self._mc_lists.get(name)
        if mcs is None:
            mcs = self._build_mc_map(name)
        if 0 <= index < len(mcs):
            return mcs[index]
        return self._mc_node_slow(name, index, requester)

    def mc_node_map(self, name: str) -> np.ndarray:
        """Vectorized no-hint MC node of every element of ``name``.

        The NumPy twin of :meth:`mc_node`'s cached list (same epoch
        invalidation against the MCDRAM flat placement).
        """
        if self._mc_epoch != self.mcdram.placement_epoch:
            self._mc_lists.clear()
            self._mc_arrays.clear()
            self._mc_epoch = self.mcdram.placement_epoch
        if name not in self._mc_arrays:
            self._build_mc_map(name)
        return self._mc_arrays[name]

    def _mc_node_slow(
        self, name: str, index: int, requester: Optional[int] = None
    ) -> int:
        """Uncached MC-node resolution (hinted SNC-4 and error paths)."""
        home = (
            self._home_node_slow(name, index, requester)
            if requester is not None and self.config.cluster_mode is ClusterMode.SNC4
            else self.home_node(name, index)
        )
        if self.mcdram.in_flat_mcdram(name):
            return min(self.edc_nodes, key=lambda e: (self.distance(home, e), e))
        if self.config.cluster_mode is ClusterMode.ALL_TO_ALL:
            channel = self.layout.channel_of(name, index)
            return self.mc_nodes[channel % len(self.mc_nodes)]
        quadrant = self.mesh.quadrant_of(home)
        return self._corner_of_quadrant(quadrant)

    # -- map construction ------------------------------------------------------

    def _build_home_map(self, name: str) -> List[int]:
        banks = self.layout.bank_map(name)
        bank_to_node = np.asarray(self.bank_to_node, dtype=np.int64)
        nodes = bank_to_node[banks % len(self.bank_to_node)]
        if self.config.cluster_mode is ClusterMode.SNC4:
            length = self.layout.spec(name).length
            owners = np.minimum(
                np.arange(length, dtype=np.int64) * self.node_count // max(length, 1),
                self.node_count - 1,
            )
            quads = self._quad_by_node_table()[owners]
            nodes = self._quad_remap_table()[nodes, quads]
        self._home_arrays[name] = nodes
        homes = nodes.tolist()
        self._home_lists[name] = homes
        return homes

    def _build_mc_map(self, name: str) -> List[int]:
        homes = self.home_node_map(name)
        if self.mcdram.in_flat_mcdram(name):
            mcs = self._nearest_edc_table()[homes]
        elif self.config.cluster_mode is ClusterMode.ALL_TO_ALL:
            channels = self.layout.channel_map(name)
            mc_nodes = np.asarray(self.mc_nodes, dtype=np.int64)
            mcs = mc_nodes[channels % len(self.mc_nodes)]
        else:
            quads = self._quad_by_node_table()[homes]
            mcs = self._corner_by_quadrant_table()[quads]
        self._mc_arrays[name] = mcs
        result = mcs.tolist()
        self._mc_lists[name] = result
        return result

    def _quad_by_node_table(self) -> np.ndarray:
        if self._quad_by_node is None:
            self._quad_by_node = np.asarray(
                [self.mesh.quadrant_of(n) for n in range(self.node_count)],
                dtype=np.int64,
            )
        return self._quad_by_node

    def _quad_remap_table(self) -> np.ndarray:
        if self._quad_remap is None:
            self._quad_remap = np.asarray(
                [
                    [self._remap_into_quadrant(node, q) for q in range(4)]
                    for node in range(self.node_count)
                ],
                dtype=np.int64,
            )
        return self._quad_remap

    def _nearest_edc_table(self) -> np.ndarray:
        if self._nearest_edc is None:
            self._nearest_edc = np.asarray(
                [
                    min(self.edc_nodes, key=lambda e: (self.distance(h, e), e))
                    for h in range(self.node_count)
                ],
                dtype=np.int64,
            )
        return self._nearest_edc

    def _corner_by_quadrant_table(self) -> np.ndarray:
        if self._corner_by_quadrant is None:
            self._corner_by_quadrant = np.asarray(
                [self._corner_of_quadrant(q) for q in range(4)], dtype=np.int64
            )
        return self._corner_by_quadrant

    def memory_access_cycles(self, name: str, index: int) -> float:
        """DRAM-side latency of a miss on ``name[index]`` (mode dependent).

        A degraded memory channel (fault plan) multiplies the healthy
        latency by its configured factor.
        """
        block = self.layout.block_of(name, index)
        cycles = self.mcdram.access_cycles(name, block)
        if self._channel_degrade:
            factor = self._channel_degrade.get(self.layout.channel_of(name, index))
            if factor is not None:
                cycles *= factor
        return cycles

    def memory_access_energy_pj(self, name: str) -> float:
        return self.mcdram.access_energy_pj(name)

    def default_owner(self, name: str, index: int) -> int:
        """Node owning the element under a block distribution of the array.

        Used as the SNC-4 first-touch owner and by baselines.
        """
        length = self.layout.spec(name).length
        return min(index * self.node_count // max(length, 1), self.node_count - 1)

    # -- helpers --------------------------------------------------------------

    def _edge_midpoints(self) -> List[int]:
        mesh = self.mesh
        mid_x = mesh.cols // 2
        mid_y = mesh.rows // 2
        coords = [
            Coord(mid_x, 0),
            Coord(0, mid_y),
            Coord(mesh.cols - 1, mid_y),
            Coord(mid_x, mesh.rows - 1),
        ]
        return sorted({mesh.id_of(c) for c in coords})

    def _corner_of_quadrant(self, quadrant: int) -> int:
        """The corner MC inside ``quadrant`` (corners are one per quadrant)."""
        for mc in self.mc_nodes:
            if self.mesh.quadrant_of(mc) == quadrant:
                return mc
        # Degenerate 1xN meshes may have fewer distinct corners; fall back.
        return self.mc_nodes[quadrant % len(self.mc_nodes)]

    def _remap_into_quadrant(self, node: int, quadrant: int) -> int:
        """Project ``node`` onto the same relative position inside ``quadrant``."""
        half_x = max(self.mesh.cols // 2, 1)
        half_y = max(self.mesh.rows // 2, 1)
        c = self.mesh.coord_of(node)
        qx, qy = quadrant % 2, quadrant // 2
        new = Coord(
            (c.x % half_x) + qx * half_x,
            (c.y % half_y) + qy * half_y,
        )
        if not self.mesh.contains(new):  # odd dimensions edge case
            new = Coord(min(new.x, self.mesh.cols - 1), min(new.y, self.mesh.rows - 1))
        node_id = self.mesh.id_of(new)
        if node_id in self._dead_nodes:
            # SNC-4 projection landed on an offline tile; home on the
            # nearest healthy tile instead (deterministic ties by id).
            distance = self.mesh.distance
            node_id = min(
                self.alive_nodes(), key=lambda n: (distance(node_id, n), n)
            )
        return node_id

    def __repr__(self) -> str:
        return (
            f"Machine({self.mesh.cols}x{self.mesh.rows}, "
            f"{self.config.cluster_mode.name}, {self.config.memory_mode.name})"
        )
