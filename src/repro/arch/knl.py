"""Machine presets.

:func:`knl_machine` mirrors the paper's evaluation platform: Intel Knights
Landing — 36 tiles on a 6x6 mesh, 1MB L2 bank per tile, 32KB L1 per core,
MCDRAM + DDR4 (Section 6.1).  We model one core per tile (the partitioner
reasons about tiles/nodes; the second core per tile does not change any
distance).  :func:`small_machine` is a 4x4 mesh used by tests and examples
where exhaustive checking should stay cheap.

:func:`mesh_machine` generalizes the template to an arbitrary rectangular
``cols x rows`` mesh (6x6 through 16x16 and beyond): the L2 bank count
snaps to the largest power of two that fits the node count (the
cache-line interleaving hashes bank bits, so the count must be a power of
two), which leaves the remaining tiles bankless — the same
heterogeneous-tile shape KNL itself has (compute tiles without active
banks).  Memory controllers stay at the four corners and MCDRAM EDCs at
the edge midpoints, both derived from the mesh, never from a constant.
"""

from __future__ import annotations

from repro.arch.cluster_modes import ClusterMode
from repro.arch.machine import Machine, MachineConfig
from repro.arch.memory_modes import MemoryMode
from repro.errors import ConfigurationError


def knl_machine(
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
) -> Machine:
    """A KNL-like 6x6-tile machine (the paper's default is quadrant+flat)."""
    return Machine(
        MachineConfig(
            mesh_cols=6,
            mesh_rows=6,
            l2_bank_count=32,
            l1_capacity=32 * 1024,
            l2_bank_capacity=1 << 20,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
        )
    )


def largest_pow2_at_most(n: int) -> int:
    """The largest power of two ``<= n`` (``n >= 1``)."""
    return 1 << (n.bit_length() - 1)


def mesh_machine(
    cols: int,
    rows: int,
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    l1_capacity: int = 8 * 1024,
    l2_bank_count: int = 0,
) -> Machine:
    """The KNL template scaled to an arbitrary ``cols x rows`` mesh.

    ``l2_bank_count`` defaults to the largest power of two that fits the
    node count (0 = auto); passing an explicit count lets callers model
    more (or fewer) bankless tiles.  The 8KB L1 matches
    :func:`repro.experiments.common.paper_machine`'s scaling argument so
    mesh-sweep results stay comparable with the 6x6 evaluation numbers.
    """
    if cols < 2 or rows < 2:
        raise ConfigurationError(
            f"mesh_machine needs at least a 2x2 mesh (4 distinct MC "
            f"corners), got {cols}x{rows}"
        )
    banks = l2_bank_count or largest_pow2_at_most(cols * rows)
    return Machine(
        MachineConfig(
            mesh_cols=cols,
            mesh_rows=rows,
            l2_bank_count=banks,
            l1_capacity=l1_capacity,
            l1_associativity=8,
            l2_bank_capacity=1 << 20,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
        )
    )


def small_machine(
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    l1_capacity: int = 4 * 1024,
) -> Machine:
    """A 4x4-mesh machine with 16 banks for tests and quick examples."""
    return Machine(
        MachineConfig(
            mesh_cols=4,
            mesh_rows=4,
            l2_bank_count=16,
            l1_capacity=l1_capacity,
            l1_associativity=4,
            l2_bank_capacity=64 * 1024,
            l2_associativity=8,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
            mcdram_capacity_bytes=1 << 26,
        )
    )
