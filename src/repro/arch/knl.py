"""Machine presets.

:func:`knl_machine` mirrors the paper's evaluation platform: Intel Knights
Landing — 36 tiles on a 6x6 mesh, 1MB L2 bank per tile, 32KB L1 per core,
MCDRAM + DDR4 (Section 6.1).  We model one core per tile (the partitioner
reasons about tiles/nodes; the second core per tile does not change any
distance).  :func:`small_machine` is a 4x4 mesh used by tests and examples
where exhaustive checking should stay cheap.
"""

from __future__ import annotations

from repro.arch.cluster_modes import ClusterMode
from repro.arch.machine import Machine, MachineConfig
from repro.arch.memory_modes import MemoryMode


def knl_machine(
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
) -> Machine:
    """A KNL-like 6x6-tile machine (the paper's default is quadrant+flat)."""
    return Machine(
        MachineConfig(
            mesh_cols=6,
            mesh_rows=6,
            l2_bank_count=32,
            l1_capacity=32 * 1024,
            l2_bank_capacity=1 << 20,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
        )
    )


def small_machine(
    cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    memory_mode: MemoryMode = MemoryMode.FLAT,
    l1_capacity: int = 4 * 1024,
) -> Machine:
    """A 4x4-mesh machine with 16 banks for tests and quick examples."""
    return Machine(
        MachineConfig(
            mesh_cols=4,
            mesh_rows=4,
            l2_bank_count=16,
            l1_capacity=l1_capacity,
            l1_associativity=4,
            l2_bank_capacity=64 * 1024,
            l2_associativity=8,
            cluster_mode=cluster_mode,
            memory_mode=memory_mode,
            mcdram_capacity_bytes=1 << 26,
        )
    )
