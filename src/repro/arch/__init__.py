"""Architecture package: the manycore machine template and KNL presets.

The paper's template (Section 2): an ``M x N`` mesh, a core + private L1 +
L2 bank per node, memory controllers at the corners.  The mesh shape is a
free parameter — :func:`repro.arch.knl.mesh_machine` builds any
rectangular ``cols x rows >= 2 x 2`` instance.  KNL specifics
(Section 6.1): the paper evaluates the 6x6 (36-tile) preset, three
cluster modes (all-to-all / quadrant / SNC-4) and three memory modes
(flat / cache / hybrid with MCDRAM + DDR4).
"""

from repro.arch.cluster_modes import ClusterMode
from repro.arch.memory_modes import MemoryMode, McdramModel
from repro.arch.machine import Machine, MachineConfig
from repro.arch.knl import knl_machine, mesh_machine, small_machine

__all__ = [
    "ClusterMode",
    "MemoryMode",
    "McdramModel",
    "Machine",
    "MachineConfig",
    "knl_machine",
    "mesh_machine",
    "small_machine",
]
