"""Architecture package: the manycore machine template and KNL presets.

The paper's template (Section 2): an ``M x N`` mesh, a core + private L1 +
L2 bank per node, memory controllers at the corners.  KNL specifics
(Section 6.1): 36 tiles, three cluster modes (all-to-all / quadrant / SNC-4)
and three memory modes (flat / cache / hybrid with MCDRAM + DDR4).
"""

from repro.arch.cluster_modes import ClusterMode
from repro.arch.memory_modes import MemoryMode, McdramModel
from repro.arch.machine import Machine, MachineConfig
from repro.arch.knl import knl_machine, small_machine

__all__ = [
    "ClusterMode",
    "MemoryMode",
    "McdramModel",
    "Machine",
    "MachineConfig",
    "knl_machine",
    "small_machine",
]
