"""KNL cluster-of-operation modes (paper Section 6.1).

The modes differ in the relative placement of (1) the tile missing in L2,
(2) the tag directory / home bank owning the address, and (3) the memory
that supplies the block:

* ``ALL_TO_ALL`` — addresses uniformly hashed over all memory; an L2 miss
  may travel to any controller, so off-chip accesses cross long distances.
* ``QUADRANT`` — the home bank and the serving controller sit in the same
  mesh quadrant, shortening the bank->MC leg.
* ``SNC4`` — requester, home bank, and controller are all in the same
  quadrant (the mesh behaves like 4 NUMA sub-domains).
"""

from __future__ import annotations

import enum


class ClusterMode(enum.Enum):
    """The three KNL clustering modes; values match Fig 22's A/B/C labels."""

    ALL_TO_ALL = "A"
    QUADRANT = "B"
    SNC4 = "C"

    @property
    def label(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.name
