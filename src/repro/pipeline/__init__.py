"""``repro.pipeline`` — the pass-pipeline compile flow.

The package turns the paper's §4 sequence into explicit, registered,
independently timeable passes over a single :class:`CompilationSession`
context:

* :mod:`repro.pipeline.session` — :class:`CompilationSession` (machine,
  config, faults, check mode, pipeline shape, timings, caches) and
  :func:`session_for`;
* :mod:`repro.pipeline.passes` — the :data:`PASS_REGISTRY` of named
  passes and :data:`DEFAULT_PASS_ORDER`;
* :mod:`repro.pipeline.manager` — the :class:`PassManager` driver;
* :mod:`repro.pipeline.batch` — :func:`compile_many`, the shared
  ``--jobs`` pool helper :func:`run_pool`, and the persistent
  :class:`WorkerPool` the compile service (:mod:`repro.serve`) shards
  requests across.

:func:`compile_program` is the one-call front-end: session in, partition
out, bit-identical to the pre-pipeline ``NdpPartitioner.partition`` under
the default order.
"""

from __future__ import annotations

from repro.core.partitioner import PartitionResult
from repro.ir.program import Program
from repro.pipeline.batch import WorkerCrash, WorkerPool, compile_many, run_pool
from repro.pipeline.manager import PassManager
from repro.pipeline.passes import (
    DEFAULT_PASS_ORDER,
    PASS_REGISTRY,
    Artifacts,
    Pass,
    PassInfo,
)
from repro.pipeline.session import CompilationSession, SessionCaches, session_for

__all__ = [
    "Artifacts",
    "CompilationSession",
    "DEFAULT_PASS_ORDER",
    "PASS_REGISTRY",
    "Pass",
    "PassInfo",
    "PassManager",
    "SessionCaches",
    "WorkerCrash",
    "WorkerPool",
    "compile_many",
    "compile_program",
    "run_pool",
    "session_for",
]


def compile_program(program: Program, session, initial=None) -> PartitionResult:
    """Compile ``program`` under ``session``; returns the partition.

    Runs the session's pass order through a :class:`PassManager` inside
    the session's check scope.  ``initial`` seeds artifacts (the
    partitioner facade injects its predictor through it).
    """
    with session.checking():
        artifacts = PassManager(session).run(program, initial=initial)
    return artifacts.require("partition", "compile_program")
