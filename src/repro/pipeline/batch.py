"""Batch compilation: ``compile_many`` and the shared worker pool helpers.

``run_pool`` is the one process-pool idiom the repo uses for every
``--jobs`` fan-out (the experiment prewarm, the batch compile below):
serial when ``jobs <= 1`` (bit-identical to the historical in-process
loops), a ``ProcessPoolExecutor`` map otherwise, results always in task
order.

``WorkerPool`` is the *persistent* sibling of ``run_pool`` for services
that live longer than one batch (the ``repro.serve`` daemon): the same
worker-function-over-payloads contract, but the forked workers stay
alive between calls, and a worker killed mid-task is detected
(``BrokenExecutor``) and the pool respawned so the caller can retry.

``compile_many`` is the batch front-end of the pass pipeline: each
program compiles against an independent :meth:`CompilationSession.fork`
(fresh machine, fault plan re-applied, empty caches), so batch members
cannot observe each other — the same program compiles to the same
schedule whether it is batched first, last, or alone.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.core.partitioner import PartitionResult
from repro.ir.program import Program

_T = TypeVar("_T")
_R = TypeVar("_R")


def run_pool(
    fn: Callable[[_T], _R], tasks: Sequence[_T], jobs: int = 1
) -> List[_R]:
    """``[fn(t) for t in tasks]``, fanned over ``jobs`` worker processes.

    ``jobs <= 1`` runs in-process (no pickling, no pool startup); results
    come back in task order either way, so callers are order-independent.
    ``fn`` must be a module-level function when ``jobs > 1`` (pickling).
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, tasks))


class WorkerPool:
    """A persistent process pool mapping one worker function over payloads.

    The long-lived counterpart of :func:`run_pool`, built for the
    compile service: workers are forked once (eagerly, at construction —
    forking before the caller starts serving threads keeps ``fork()``
    clean) and reused across calls, so repeated requests do not pay pool
    startup.  ``jobs <= 0`` runs every call inline in the calling thread
    (no processes at all — the deterministic mode tests default to).

    A worker killed mid-task surfaces as :class:`WorkerCrash`; call
    :meth:`respawn` and resubmit — the task itself is never lost because
    the payload lives with the caller, not the pool.
    """

    def __init__(self, fn: Callable[[_T], _R], jobs: int = 1):
        self.fn = fn
        self.jobs = max(0, jobs)
        self.respawns = 0
        self._lock = threading.Lock()
        self._executor = None
        if self.jobs > 0:
            self._executor = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        # Force the workers into existence now (ProcessPoolExecutor forks
        # lazily on first submit, which would otherwise happen on a
        # request-handler thread).
        list(executor.map(_worker_pid, range(self.jobs)))
        return executor

    def call(self, payload: _T) -> _R:
        """Run ``fn(payload)`` on a pool worker (or inline when jobs<=0).

        Raises :class:`WorkerCrash` when the worker died mid-task (the
        pool is broken afterwards; :meth:`respawn` before retrying).
        """
        if self._executor is None:
            return self.fn(payload)
        with self._lock:
            executor = self._executor
        try:
            return executor.submit(self.fn, payload).result()
        except BrokenExecutor as exc:
            raise WorkerCrash(str(exc) or "worker process died") from exc

    def respawn(self) -> None:
        """Replace a broken executor with a freshly forked one."""
        if self.jobs <= 0:
            return
        with self._lock:
            old = self._executor
            self._executor = self._spawn()
            self.respawns += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the workers (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


class WorkerCrash(RuntimeError):
    """A pool worker died mid-task (see :meth:`WorkerPool.call`)."""


def _worker_pid(_: int) -> int:
    """Warmup task: forces a pool worker to exist and reports its pid."""
    import os

    return os.getpid()


def _compile_one(payload) -> PartitionResult:
    """Worker: compile one program on an isolated session fork."""
    session, program = payload
    from repro.pipeline.manager import PassManager

    fork = session.fork()
    with fork.checking():
        artifacts = PassManager(fork).run(program)
    return artifacts.require("partition", "compile_many")


def compile_many(
    programs: Sequence[Program], session, jobs: int = 1
) -> List[PartitionResult]:
    """Compile every program under one session context; results in order.

    Each member runs on ``session.fork()`` — the session argument supplies
    the *context* (machine geometry, partition config, fault plan, check
    mode, pipeline shape), not shared mutable state — so ``jobs=1`` and
    ``jobs=N`` produce identical results.  The caller's session machine is
    never touched.
    """
    payloads = [(session, program) for program in programs]
    return run_pool(_compile_one, payloads, jobs)
