"""Batch compilation: ``compile_many`` and the shared worker pool helper.

``run_pool`` is the one process-pool idiom the repo uses for every
``--jobs`` fan-out (the experiment prewarm, the batch compile below):
serial when ``jobs <= 1`` (bit-identical to the historical in-process
loops), a ``ProcessPoolExecutor`` map otherwise, results always in task
order.

``compile_many`` is the batch front-end of the pass pipeline: each
program compiles against an independent :meth:`CompilationSession.fork`
(fresh machine, fault plan re-applied, empty caches), so batch members
cannot observe each other — the same program compiles to the same
schedule whether it is batched first, last, or alone.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.core.partitioner import PartitionResult
from repro.ir.program import Program

_T = TypeVar("_T")
_R = TypeVar("_R")


def run_pool(
    fn: Callable[[_T], _R], tasks: Sequence[_T], jobs: int = 1
) -> List[_R]:
    """``[fn(t) for t in tasks]``, fanned over ``jobs`` worker processes.

    ``jobs <= 1`` runs in-process (no pickling, no pool startup); results
    come back in task order either way, so callers are order-independent.
    ``fn`` must be a module-level function when ``jobs > 1`` (pickling).
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, tasks))


def _compile_one(payload) -> PartitionResult:
    """Worker: compile one program on an isolated session fork."""
    session, program = payload
    from repro.pipeline.manager import PassManager

    fork = session.fork()
    with fork.checking():
        artifacts = PassManager(fork).run(program)
    return artifacts.require("partition", "compile_many")


def compile_many(
    programs: Sequence[Program], session, jobs: int = 1
) -> List[PartitionResult]:
    """Compile every program under one session context; results in order.

    Each member runs on ``session.fork()`` — the session argument supplies
    the *context* (machine geometry, partition config, fault plan, check
    mode, pipeline shape), not shared mutable state — so ``jobs=1`` and
    ``jobs=N`` produce identical results.  The caller's session machine is
    never touched.
    """
    payloads = [(session, program) for program in programs]
    return run_pool(_compile_one, payloads, jobs)
