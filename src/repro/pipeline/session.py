"""The :class:`CompilationSession`: one object owning a compile's context.

Before this layer existed, every cross-cutting concern — the machine and
its data layout, the window configuration, an optional fault plan, the
tracer, check mode, and the per-nest split caches — was threaded through
the partitioner, window search, scheduler, balancer, and codegen as loose
keyword arguments.  The session bundles all of it:

* **construction state** — machine (and through it the layout), the
  :class:`~repro.core.partitioner.PartitionConfig`, an optional
  :class:`~repro.faults.FaultPlan`, and the check-mode flag;
* **pipeline shape** — the pass order and the set of skipped passes
  (see :mod:`repro.pipeline.passes` for the registry);
* **run state** — per-pass wall-clock timings and the cross-pass caches
  (today: the per-nest statement-split caches shared by the gate, the
  window-size search, and the final scheduling pass).

One session corresponds to one compile context.  ``fork()`` derives an
independent sibling (fresh machine built from the same
:class:`~repro.arch.machine.MachineConfig`, fault plan re-applied, empty
caches) — the unit of isolation for :func:`repro.pipeline.compile_many`
and for worker processes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.arch.machine import Machine
from repro.core.partitioner import PartitionConfig
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.obs.tracer import get_tracer


#: Sentinel distinguishing "inherit the plan" from an explicit ``None``.
_INHERIT = object()


class SessionCaches:
    """Mutable caches owned by one session, scoped to one compile run.

    ``split_caches`` maps nest name -> (instance seq -> StatementSplit);
    one cache per nest is shared by the empirical gate's candidate-plan
    passes, the window-size search, and the final scheduling (a
    window-opening statement's split depends only on its operands, so the
    MST work is done once per instance instead of once per pass).
    """

    def __init__(self) -> None:
        self.split_caches: Dict[str, Dict] = {}
        #: nest name -> NestTables (or None when the nest/predictor is
        #: unsupported and the scalar path must be used).
        self.nest_tables: Dict[str, object] = {}
        #: (nest name, flatten_products) -> SplitTemplates.
        self.split_templates: Dict[tuple, object] = {}

    def split_cache_for(self, nest_name: str) -> Dict:
        """The (lazily created) split cache of one nest."""
        return self.split_caches.setdefault(nest_name, {})

    def clear(self) -> None:
        """Drop all cached state (called at the start of each compile)."""
        self.split_caches.clear()
        self.nest_tables.clear()
        self.split_templates.clear()


@dataclass
class CompilationSession:
    """Everything one compile needs, in one place.

    The pass pipeline (:mod:`repro.pipeline.passes`) reads its inputs from
    here and records its per-pass timings here; core modules receive the
    session instead of loose ``machine=``/``config=``/``faults=`` keyword
    plumbing.
    """

    machine: Machine
    config: PartitionConfig = field(default_factory=PartitionConfig)
    faults: Optional[FaultPlan] = None
    check: bool = False
    #: Pass names to execute, in order.  ``None`` means the registry's
    #: default order (:data:`repro.pipeline.passes.DEFAULT_PASS_ORDER`).
    pass_order: Optional[Tuple[str, ...]] = None
    #: Pass names to skip (validated against the order at run time).
    skip_passes: FrozenSet[str] = frozenset()
    #: Per-pass wall-clock seconds, accumulated by the PassManager (and,
    #: for inline passes such as ``sync_minimize``, by the scheduler).
    timings: Dict[str, float] = field(default_factory=dict)
    caches: SessionCaches = field(default_factory=SessionCaches)
    _faults_applied: bool = field(default=False, repr=False)

    # -- derived context ---------------------------------------------------

    @property
    def layout(self):
        """The machine's data layout (arrays -> banks/channels/homes)."""
        return self.machine.layout

    @property
    def tracer(self):
        """The active tracer (the session never outlives a tracing scope)."""
        return get_tracer()

    @property
    def window(self):
        """The window configuration (shorthand for ``config.window``)."""
        return self.config.window

    def pass_enabled(self, name: str) -> bool:
        """False when ``name`` is skipped for this session."""
        return name not in self.skip_passes

    # -- lifecycle ---------------------------------------------------------

    def apply_faults(self) -> None:
        """Degrade the machine per the fault plan (once per session)."""
        if self.faults is None or self.faults.is_empty or self._faults_applied:
            return
        self.machine.apply_faults(self.faults)
        self._faults_applied = True

    def fork(self, *, faults=_INHERIT) -> "CompilationSession":
        """An independent sibling session: fresh machine, empty caches.

        The new machine is rebuilt from this machine's
        :class:`~repro.arch.machine.MachineConfig` and the fault plan
        (inherited unless overridden) is applied to it immediately, so the
        fork is ready to compile.  Used by :func:`repro.pipeline.compile_many`
        to isolate batch members and worker processes from each other.
        """
        plan = self.faults if faults is _INHERIT else faults
        fork = CompilationSession(
            machine=Machine(self.machine.config),
            config=self.config,
            faults=plan,
            check=self.check,
            pass_order=self.pass_order,
            skip_passes=self.skip_passes,
        )
        fork.apply_faults()
        return fork

    @contextmanager
    def checking(self):
        """Scoped check mode: active when the session (or env) asks for it."""
        from repro import check

        with check.checking(self.check or check.enabled()):
            yield

    # -- timing ------------------------------------------------------------

    def add_pass_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall time against pass ``name``."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    @contextmanager
    def timed_pass(self, name: str):
        """Time a block and charge it to pass ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_pass_seconds(name, time.perf_counter() - started)

    def pass_seconds(self) -> Dict[str, float]:
        """Per-pass wall seconds, rounded for serialization."""
        return {name: round(seconds, 6) for name, seconds in self.timings.items()}

    # -- serialization -----------------------------------------------------

    def to_json(self) -> Dict:
        """The session's identity for ``report.json`` (schema v3).

        Captures what shaped the compile — machine geometry, the headline
        partitioning knobs, fault fingerprint, check mode, and the pipeline
        shape — without the bulky runtime state (caches, schedules).
        """
        from repro.pipeline.passes import resolve_order

        config = self.machine.config
        window = self.config.window
        return {
            "machine": {
                "mesh_cols": config.mesh_cols,
                "mesh_rows": config.mesh_rows,
                "l1_capacity": config.l1_capacity,
                "l2_bank_count": config.l2_bank_count,
                "cluster_mode": config.cluster_mode.name.lower(),
                "memory_mode": config.memory_mode.name.lower(),
            },
            "config": {
                "adaptive_window": self.config.adaptive_window,
                "fixed_window_size": self.config.fixed_window_size,
                "use_predictor": self.config.use_predictor,
                "gate_sample_instances": self.config.gate_sample_instances,
                "max_window_size": window.max_window_size,
                "reuse_aware": window.reuse_aware,
                "split_bias": window.split_bias,
            },
            "faults_fingerprint": (
                None
                if self.faults is None or self.faults.is_empty
                else self.faults.fingerprint()
            ),
            "check": bool(self.check),
            "pass_order": list(resolve_order(self.pass_order)),
            "skipped_passes": sorted(self.skip_passes),
        }


def session_for(
    machine: Machine,
    config: Optional[PartitionConfig] = None,
    faults: Optional[FaultPlan] = None,
    check: bool = False,
    skip_passes=(),
    pass_order: Optional[Tuple[str, ...]] = None,
) -> CompilationSession:
    """Build a session, validating the pipeline shape eagerly.

    Unknown pass names (in ``skip_passes`` or ``pass_order``) raise
    :class:`~repro.errors.ConfigurationError` here, at construction, so CLI
    front-ends can exit 2 with a clear message before any work happens.
    """
    from repro.pipeline.passes import PASS_REGISTRY, resolve_order

    skip = frozenset(skip_passes)
    unknown = sorted(name for name in skip if name not in PASS_REGISTRY)
    if unknown:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise ConfigurationError(
            f"unknown pass name(s): {', '.join(unknown)}; registered passes: {known}"
        )
    resolve_order(pass_order)  # raises ConfigurationError on unknown names
    session = CompilationSession(
        machine=machine,
        config=config or PartitionConfig(),
        faults=None if faults is not None and faults.is_empty else faults,
        check=check,
        pass_order=pass_order,
        skip_passes=skip,
    )
    session.apply_faults()
    return session
