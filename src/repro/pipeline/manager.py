"""The :class:`PassManager`: runs the registered passes over a program.

The manager owns the outer ``compile`` trace span, walks the session's
pass order, times every pass into ``session.timings`` (report.json's
``pipeline.pass_seconds``), emits one deterministic ``pipeline.pass``
trace point per pass, and honors the skip set.  With the default order
and no skips the artifact flow is bit-identical to the historical
``NdpPartitioner.partition`` monolith.

Timing semantics: ``schedule``'s seconds are the wall time of the whole
scheduling pass, *including* the inline ``balance``/``sync_minimize``
work done in its hot loop; ``sync_minimize`` additionally reports its own
slice (accumulated per window by the scheduler), so the inline cost is
visible without perturbing the totals.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.program import Program
from repro.pipeline.passes import PASS_REGISTRY, Artifacts, resolve_order


class PassManager:
    """Runs a session's pass pipeline over one program."""

    def __init__(self, session, order: Optional[Tuple[str, ...]] = None):
        self.session = session
        self.order = resolve_order(
            order if order is not None else session.pass_order
        )

    def run(self, program: Program, initial: Optional[dict] = None) -> Artifacts:
        """Execute the pipeline; returns the artifact dict.

        The session's cross-pass caches are cleared first (one compile =
        one cache scope), and the fault plan is applied if it has not been
        yet, so a bare hand-built session still compiles correctly.
        ``initial`` seeds extra artifacts before the first pass — the
        :class:`~repro.core.partitioner.NdpPartitioner` facade uses it to
        inject a caller-replaced predictor (the ideal-analysis oracle).
        """
        session = self.session
        session.caches.clear()
        session.apply_faults()
        tracer = session.tracer
        compile_span = tracer.span(
            "compile", program=program.name, nests=len(program.nests)
        )
        artifacts = Artifacts(program=program)
        if initial:
            artifacts.update(initial)
        for index, name in enumerate(self.order):
            enabled = session.pass_enabled(name)
            tracer.point(
                "pipeline.pass", pass_name=name, index=index, skipped=not enabled
            )
            if not enabled:
                continue
            with session.timed_pass(name):
                PASS_REGISTRY[name].run(session, artifacts)
        partition = artifacts.get("partition")
        if partition is not None:
            compile_span.add(
                movement=partition.movement, statements=partition.statement_count
            )
        compile_span.end()
        return artifacts
