"""The registered compiler passes (the paper's §4 flow, made explicit).

Every stage of the compile flow is a named :class:`Pass` in
:data:`PASS_REGISTRY`.  The default order reproduces the historical
``NdpPartitioner.partition`` behaviour bit-for-bit; the win is that the
stages are now independently timeable, skippable
(``repro.cli report --skip-pass balance``), reorderable, and extensible
without touching the core modules.

========  ==============  ==========================  =====================
pass      paper section   what it does                module
========  ==============  ==========================  =====================
profile   §6.1            array access profiling      core.profiling
predict   §4.1            L2 hit/miss predictor       cache.predictor
inspect   §4.5            inspector for irregular     ir.inspector
split     §4.2            MST split planning          core.profiling
schedule  §4.3–4.4        gate + window scheduling    core.window
balance   §4.5 (inline)   load balancing (10% rule)   core.balancer
sync      §4.5 (inline)   sync minimization           core.syncgraph
codegen   §4.5, Fig 8     per-node code (on demand)   core.codegen
========  ==============  ==========================  =====================

``balance`` and ``sync_minimize`` are *inline* passes: their work happens
inside the window scheduler's hot loop, so their ``run`` methods are
no-ops and skipping them flips a flag the scheduler consults
(:meth:`CompilationSession.pass_enabled`).  ``codegen`` is registered but
not part of the default order — rendering per-node listings for every
unit is paid only when asked for.

Artifacts flow between passes in an :class:`Artifacts` dict; a pass that
needs an upstream product uses :meth:`Artifacts.require`, which raises a
clear :class:`~repro.errors.ConfigurationError` naming the producing pass
when the order was rearranged incompatibly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import check
from repro.check import invariants
from repro.core.locator import DataLocator
from repro.core.partitioner import (
    PartitionResult,
    profile_access_counts,
    train_predictor,
)
from repro.core.profiling import build_split_plan, profile_statements
from repro.core.window import WindowScheduler, WindowSizeSearch
from repro.errors import ConfigurationError, SchedulingError
from repro.ir.dependence import may_depend
from repro.ir.inspector import InspectorExecutor
from repro.ir.program import Program


class Artifacts(dict):
    """The typed artifact dict flowing between passes.

    Keys and producers:

    ==================  ==========  =====================================
    key                 producer    type
    ==================  ==========  =====================================
    program             (manager)   ir.program.Program
    access_counts       profile     {array: dynamic access count}
    predictor           predict     HitMissPredictor-compatible or None
    predictor_accuracy  predict     float or None
    inspected           inspect     bool (irregular nests resolved?)
    fallback_nodes      split       {seq: default execution node}
    profiles            split       {(nest, body): StatementProfile}
    split_plan          split       {(nest, body): split?}
    partition           schedule    core.partitioner.PartitionResult
    generated_code      codegen     core.codegen.GeneratedCode
    backend             (caller)    str backend name ('sim'/'runtime')
    backend_options     (caller)    {kwarg: value} for get_backend
    execution           execute     exec.backend.ExecutionResult
    ==================  ==========  =====================================
    """

    def require(self, key: str, needed_by: str):
        """The artifact under ``key``, or a clear wrong-order error."""
        if key not in self:
            producer = _PRODUCERS.get(key, "<unknown>")
            raise ConfigurationError(
                f"pass {needed_by!r} needs artifact {key!r}, which pass "
                f"{producer!r} produces — it is missing from this run "
                "(skipped or ordered after the consumer)"
            )
        return self[key]


_PRODUCERS = {
    "access_counts": "profile",
    "predictor": "predict",
    "predictor_accuracy": "predict",
    "inspected": "inspect",
    "fallback_nodes": "split",
    "profiles": "split",
    "split_plan": "split",
    "partition": "schedule",
    "generated_code": "codegen",
    "execution": "execute",
}


@dataclass(frozen=True)
class PassInfo:
    """Registry metadata of one pass (what ``--list-passes`` shows)."""

    name: str
    paper_section: str
    module: str
    #: Inline passes run inside the schedule pass's hot loop; their
    #: position in the order is informational and skipping them flips a
    #: scheduler flag instead of dropping a ``run`` call.
    inline: bool = False
    #: Whether the pass is part of the default order.
    default: bool = True


class Pass:
    """Protocol of a registered pass: ``info`` metadata plus ``run``."""

    info: PassInfo

    def run(self, session, artifacts: Artifacts) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Pass] = {}


def register_pass(cls):
    """Class decorator: instantiate and register a pass by its name."""
    instance = cls()
    PASS_REGISTRY[instance.info.name] = instance
    return cls


def resolve_order(order: Optional[Tuple[str, ...]]) -> Tuple[str, ...]:
    """``order`` validated against the registry (None = default order)."""
    if order is None:
        return DEFAULT_PASS_ORDER
    unknown = sorted(set(order) - set(PASS_REGISTRY))
    if unknown:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise ConfigurationError(
            f"unknown pass name(s): {', '.join(unknown)}; registered passes: {known}"
        )
    if len(set(order)) != len(order):
        raise ConfigurationError(f"pass order lists a pass twice: {order}")
    return tuple(order)


@register_pass
class ProfilePass(Pass):
    """§6.1's profiling step: declare arrays, record access counts."""

    info = PassInfo("profile", "§6.1", "repro.core.profiling")

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        program.declare_in(session)
        tracer = session.tracer
        with tracer.span("compile.profile_arrays"):
            counts = profile_access_counts(
                program, session.config.profile_instances
            )
            session.machine.record_profile(counts)
        artifacts["access_counts"] = counts


@register_pass
class PredictPass(Pass):
    """§4.1's miss prediction: train the L2 hit/miss predictor."""

    info = PassInfo("predict", "§4.1", "repro.cache.predictor")

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        if "predictor" not in artifacts:
            # Session-first API: build the predictor the config asks for.
            # (The NdpPartitioner facade seeds this artifact instead, so
            # post-construction predictor injection — the ideal-analysis
            # oracle — keeps working.)
            from repro.cache.predictor import HitMissPredictor

            artifacts["predictor"] = (
                HitMissPredictor() if session.config.use_predictor else None
            )
        predictor = artifacts["predictor"]
        accuracy = None
        if predictor is not None:
            tracer = session.tracer
            with tracer.span("compile.train_predictor") as train_span:
                accuracy = train_predictor(
                    session.machine,
                    program,
                    predictor,
                    session.config.predictor_training_instances,
                )
                train_span.add(accuracy=round(accuracy, 6))
        artifacts["predictor_accuracy"] = accuracy


@register_pass
class AnalyticPredictPass(Pass):
    """§4.1 alternative: closed-form analytic miss prediction.

    Replaces the trace-trained predictor with
    :class:`repro.core.locality.AnalyticMissPredictor` (DESIGN.md §12):
    same artifact keys, no cache simulation.  Not in the default order —
    select it with ``--predictor analytic`` (which swaps it in for
    ``predict``) or an explicit pass order.  Unlike ``predict``, a seeded
    ``predictor`` artifact is *overwritten*: asking for the analytic pass
    means the analytic model, not whatever the facade constructed.

    In check mode the pass also trains the default trace predictor and
    runs the differential oracle
    (:func:`repro.check.invariants.check_predictor_agreement`) over the
    training address stream.
    """

    info = PassInfo(
        "predict_analytic", "§4.1", "repro.core.locality", default=False
    )

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        if not session.config.use_predictor:
            artifacts["predictor"] = None
            artifacts["predictor_accuracy"] = None
            return
        from repro.core.locality import AnalyticMissPredictor

        tracer = session.tracer
        with tracer.span("compile.analytic_predict") as span:
            predictor = AnalyticMissPredictor(session.machine, program)
            model = predictor.model
            span.add(
                regions=len(model.region_verdicts),
                hit_region_fraction=round(model.hit_region_fraction, 6),
                modeled_hit_fraction=round(model.modeled_hit_fraction(), 6),
                skipped_nests=len(model.skipped_nests),
            )
        artifacts["predictor"] = predictor
        # The trace pass reports its training accuracy here; the analytic
        # model is not trained, so it reports its modeled hit fraction.
        artifacts["predictor_accuracy"] = None
        if check.enabled():
            self._differential_oracle(session, program, predictor)

    @staticmethod
    def _differential_oracle(session, program, predictor) -> None:
        """Train the trace oracle and bound the verdict disagreement."""
        from repro.cache.predictor import HitMissPredictor
        from repro.core.partitioner import train_predictor

        machine = session.machine
        trace = HitMissPredictor()
        budget = session.config.predictor_training_instances
        train_predictor(machine, program, trace, budget)
        addresses = []
        layout = machine.layout
        for seen, instance in enumerate(program.instances()):
            if seen >= budget or len(addresses) >= 2000:
                break
            for access in instance.accesses():
                addresses.append(layout.pa_of(access.array, access.index))
        invariants.check_predictor_agreement(predictor, trace, addresses)


def predictor_pass_order(predictor: str) -> Optional[Tuple[str, ...]]:
    """The pass order selecting ``predictor`` ('trace' or 'analytic').

    'trace' (the default pipeline) returns ``None`` — callers pass it
    straight through as "use the default order"; 'analytic' returns the
    default order with ``predict`` swapped for ``predict_analytic``.
    """
    if predictor == "trace":
        return None
    if predictor == "analytic":
        return tuple(
            "predict_analytic" if name == "predict" else name
            for name in DEFAULT_PASS_ORDER
        )
    raise ConfigurationError(
        f"unknown predictor {predictor!r}; choose 'trace' or 'analytic'"
    )


@register_pass
class InspectPass(Pass):
    """§4.5's inspector: resolve indirect accesses of irregular nests."""

    info = PassInfo("inspect", "§4.5", "repro.ir.inspector")

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        inspected = False
        if may_depend(program):
            with session.tracer.span("compile.inspect"):
                InspectorExecutor(program).inspect_all()
            inspected = True
        artifacts["inspected"] = inspected


@register_pass
class SplitPass(Pass):
    """§4.2's MST split planning: profile statements, decide who splits."""

    info = PassInfo("split", "§4.2", "repro.core.profiling")

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        machine = session.machine
        config = session.config
        predictor = artifacts.get("predictor")
        tracer = session.tracer
        # The default placement's iteration->node assignment: unsplit
        # statements run exactly where the default would run them, so "do
        # not split" always degenerates to the baseline (the paper's scheme
        # optimizes *on top of* the locality-optimized default, Section 6.1).
        from repro.baselines.default_placement import DefaultPlacement

        fallback_nodes = DefaultPlacement(machine).assignment(program)
        if config.split_plan_override is None:
            with tracer.span("compile.split_plan"):
                locator_for_profiling = DataLocator(machine, predictor)
                profiles = profile_statements(
                    machine,
                    program,
                    locator_for_profiling,
                    fallback_nodes,
                    sample_per_nest=config.profile_instances,
                    session=session,
                )
                split_plan = build_split_plan(profiles, config.window.split_bias)
                if tracer.enabled:
                    for key in sorted(profiles):
                        profile = profiles[key]
                        tracer.point(
                            "compile.statement_profile",
                            nest=key[0],
                            body_index=key[1],
                            instances=profile.instances,
                            star_movement=round(profile.star_movement, 6),
                            mst_weight=round(profile.mst_weight, 6),
                            serial_chain=profile.serial_chain,
                            split=split_plan[key],
                        )
        else:
            profiles = {}
            split_plan = dict(config.split_plan_override)
        artifacts["fallback_nodes"] = fallback_nodes
        artifacts["profiles"] = profiles
        artifacts["split_plan"] = split_plan


@register_pass
class SchedulePass(Pass):
    """§4.3–4.4: the per-nest empirical gate, window search, scheduling."""

    info = PassInfo("schedule", "§4.3–4.4", "repro.core.window")

    def run(self, session, artifacts: Artifacts) -> None:
        program: Program = artifacts.require("program", self.info.name)
        machine = session.machine
        config = session.config
        tracer = session.tracer
        predictor = artifacts.get("predictor")
        locator = DataLocator(machine, predictor)
        # Graceful degradation when upstream passes were skipped: no
        # fallback assignment (run the default placement now — schedule
        # cannot work without it) and an empty split plan (all-star).
        if "fallback_nodes" in artifacts:
            fallback_nodes = artifacts["fallback_nodes"]
        else:
            from repro.baselines.default_placement import DefaultPlacement

            fallback_nodes = DefaultPlacement(machine).assignment(program)
        split_plan = artifacts.get("split_plan", {})
        profiles = artifacts.get("profiles", {})

        nest_schedules: Dict = {}
        window_sizes: Dict[str, int] = {}
        movement_by_size: Dict[str, Dict[int, int]] = {}
        variant_by_nest: Dict[str, str] = {}
        chosen_plan: Dict = {}
        uid_counter = itertools.count()
        for nest in program.nests:
            if nest.name in nest_schedules:
                raise SchedulingError(f"duplicate nest name {nest.name!r}")
            nest_span = tracer.span(
                "compile.nest", nest=nest.name, statements=nest.body_size
            )
            # One split cache per nest, shared by the gate's candidate-plan
            # passes, the window-size search, and the final scheduling: a
            # statement's empty-map split depends only on its operands, so
            # the MST work is done once per instance instead of once per
            # pass (see WindowScheduler._split_of for the exact conditions).
            split_cache = session.caches.split_cache_for(nest.name)
            # Vectorized fast path (repro.core.vectorized): per-nest location
            # tables + split templates, shared by the gate, the size search,
            # and the final scheduling.  ensure() replays the whole nest's
            # page translations in canonical first-touch order up front —
            # the same frames the lazy scalar touches would assign.
            from repro.core.vectorized import templates_for

            templates = templates_for(
                session, program, nest, locator, config.window.flatten_products
            )
            if templates is not None:
                templates.tables.ensure(nest.instance_count)
            reuse = None
            if config.split_plan_override is not None:
                keys = [(nest.name, b) for b in range(nest.body_size)]
                plan = {k: bool(split_plan.get(k, False)) for k in keys}
                variant = "override"
            else:
                plan, variant, reuse = self._choose_nest_plan(
                    session, program, nest, locator, fallback_nodes,
                    split_plan, profiles, split_cache, uid_counter, predictor,
                    templates,
                )
            chosen_plan.update(plan)
            variant_by_nest[nest.name] = variant
            if reuse is not None:
                # The winning gate measure already scheduled the whole nest
                # with the shared uid counter under conditions that make it
                # bit-equal to the search below (see _choose_nest_plan);
                # redoing the search/schedule would only repeat the work.
                schedule, size, by_size = reuse
                nest_schedules[nest.name] = schedule
                window_sizes[nest.name] = size
                movement_by_size[nest.name] = by_size
            elif config.adaptive_window and any(plan.values()):
                outcome = WindowSizeSearch(
                    machine,
                    locator,
                    config.window,
                    uid_counter=uid_counter,
                    fallback_nodes=fallback_nodes,
                    split_plan=plan,
                    split_cache=split_cache,
                    session=session,
                    templates=templates,
                ).search(program, nest)
                nest_schedules[nest.name] = outcome.best_schedule
                window_sizes[nest.name] = outcome.best_size
                movement_by_size[nest.name] = outcome.movement_by_size
            else:
                # All-star nests (== the default execution) and fixed-window
                # configurations skip the size search.
                size = 1 if config.adaptive_window else config.fixed_window_size
                scheduler = WindowScheduler(
                    machine,
                    locator,
                    config.window,
                    uid_counter=uid_counter,
                    fallback_nodes=fallback_nodes,
                    split_plan=plan,
                    split_cache=split_cache,
                    session=session,
                    templates=templates,
                )
                schedule = scheduler.schedule_nest(program, nest, size)
                nest_schedules[nest.name] = schedule
                window_sizes[nest.name] = size
                movement_by_size[nest.name] = {size: schedule.movement}
            final = nest_schedules[nest.name]
            nest_span.add(
                variant=variant,
                window_size=window_sizes[nest.name],
                movement=final.movement,
                syncs=final.sync_count,
                syncs_unminimized=final.sync_count_unminimized,
                reused_gate_schedule=reuse is not None,
            )
            nest_span.end()
        result = PartitionResult(
            program_name=program.name,
            nest_schedules=nest_schedules,
            window_sizes=window_sizes,
            movement_by_size=movement_by_size,
            predictor_accuracy=artifacts.get("predictor_accuracy"),
            variant_by_nest=variant_by_nest,
            split_plan=chosen_plan,
        )
        if check.enabled():
            # Check mode: the finished compile must account consistently
            # (aggregates re-sum from their decompositions), its schedule
            # must be a well-formed dependence DAG, and on a degraded
            # machine nothing may be placed on a tile the plan ever kills.
            invariants.check_partition_accounting(result)
            units = result.units()
            invariants.check_units_wellformed(units)
            invariants.check_unit_nodes_alive(units, machine.dead_nodes)
        artifacts["partition"] = result

    def _choose_nest_plan(
        self,
        session,
        program: Program,
        nest,
        locator: DataLocator,
        fallback_nodes: Dict[int, int],
        profile_plan: Dict,
        profiles: Dict,
        split_cache: Dict,
        uid_counter,
        predictor,
        templates=None,
    ):
        """Pick the nest's split plan empirically (the gate).

        Candidate plans — all-star (identical to the default execution), the
        profile-derived per-statement plan, and all-split (every statement
        except serial-chain reductions) — are each scheduled over the nest
        and *simulated*.  A splitting plan is accepted only when it improves
        execution time AND does not regress data movement beyond the
        configured tolerance (movement is the paper's first-class metric);
        among accepted plans the fastest wins.  The all-star plan is always
        a candidate, so a partitioned build never regresses a nest below
        the baseline.
        """
        config = session.config
        keys = [(nest.name, b) for b in range(nest.body_size)]
        star = {key: False for key in keys}
        from_profile = {key: bool(profile_plan.get(key, False)) for key in keys}
        all_split = {
            key: not (key in profiles and profiles[key].serial_chain)
            for key in keys
        }
        tracer = session.tracer
        if config.window.always_split:
            tracer.point("gate.skip", nest=nest.name, reason="always_split")
            return all_split, "split", None
        candidates = []
        if any(from_profile.values()):
            candidates.append(("profile", from_profile))
        if any(all_split.values()) and all_split != from_profile:
            candidates.append(("split", all_split))
        if not candidates or config.gate_sample_instances < 0:
            variant = "profile" if any(from_profile.values()) else "star"
            tracer.point(
                "gate.skip",
                nest=nest.name,
                reason="no_candidates" if not candidates else "gate_disabled",
                variant=variant,
            )
            return from_profile, variant, None

        star_cycles, star_movement, star_reuse = self._gate_measure(
            session, program, nest, locator, fallback_nodes, star,
            split_cache, uid_counter, templates,
        )
        tracer.point(
            "gate.candidate",
            nest=nest.name,
            variant="star",
            cycles=star_cycles,
            movement=star_movement,
        )
        best_plan = star
        best_variant = "star"
        best_cycles = star_cycles
        best_reuse = star_reuse
        tolerance = config.gate_movement_tolerance
        for variant, plan in candidates:
            cycles, movement, reuse = self._gate_measure(
                session, program, nest, locator, fallback_nodes, plan,
                split_cache, uid_counter, templates,
            )
            accepted = (
                cycles < best_cycles
                and movement <= tolerance * max(star_movement, 1)
            )
            tracer.point(
                "gate.candidate",
                nest=nest.name,
                variant=variant,
                cycles=cycles,
                movement=movement,
                accepted=accepted,
            )
            if accepted:
                best_cycles = cycles
                best_plan = plan
                best_variant = variant
                best_reuse = reuse
        # The winning measure's full-nest schedule can stand in for the
        # final scheduling pass only when that pass would redo bit-equal
        # work: the gate covered the whole nest, the final pass is the
        # adaptive one, the size search would see the same sample, and the
        # predictor is pure (a stateful oracle's answers depend on the
        # query stream, so skipped queries would change later answers).
        if best_reuse is not None:
            count = nest.instance_count
            sample = config.gate_sample_instances
            limit = sample if sample > 0 else count
            gate_eff = min(count, min(limit, 768))
            cfg_sample = config.window.search_sample_instances
            final_eff = min(count, cfg_sample) if cfg_sample else count
            pure = getattr(predictor, "pure_predict", True)
            reusable = (
                config.adaptive_window
                and pure
                and limit >= count
                and (not any(best_plan.values()) or gate_eff == final_eff)
            )
            if not reusable:
                best_reuse = None
        tracer.point(
            "gate.verdict",
            nest=nest.name,
            variant=best_variant,
            cycles=best_cycles,
            schedule_reused=best_reuse is not None,
        )
        return best_plan, best_variant, best_reuse

    def _gate_measure(
        self,
        session,
        program: Program,
        nest,
        locator: DataLocator,
        fallback_nodes: Dict[int, int],
        plan: Dict,
        split_cache: Dict,
        uid_counter,
        templates=None,
    ):
        """(cycles, movement, reuse) of one candidate plan over the sample.

        ``reuse`` is ``(NestSchedule, size, movement_by_size)`` when the
        measure scheduled the whole nest (gate sample covers it), else
        ``None``; the caller decides whether the final pass may adopt it.
        """
        from repro.sim.engine import SimConfig, Simulator

        machine = session.machine
        config = session.config
        scheduler = WindowScheduler(
            machine,
            locator,
            config.window,
            uid_counter=uid_counter,
            fallback_nodes=fallback_nodes,
            split_plan=plan,
            split_cache=split_cache,
            session=session,
            templates=templates,
        )
        size = 1
        by_size = None
        sample = config.gate_sample_instances
        limit = sample if sample > 0 else nest.instance_count
        if any(plan.values()):
            outcome = WindowSizeSearch(
                machine,
                locator,
                config.window,
                fallback_nodes=fallback_nodes,
                split_plan=plan,
                split_cache=split_cache,
                session=session,
                templates=templates,
            ).search_sample(program, nest, min(limit, 768))
            size = outcome.best_size
            by_size = outcome.movement_by_size
        if limit >= nest.instance_count:
            # Whole-nest measure: identical to schedule_nest's windowing.
            schedule = scheduler.schedule_nest(program, nest, size)
            units = [
                sub
                for window in schedule.windows
                for statement_schedule in window.schedules
                for sub in statement_schedule.subcomputations
            ]
            if by_size is None:
                by_size = {size: schedule.movement}
            reuse = (schedule, size, by_size)
        else:
            units = []
            buffer = []
            seen = 0
            for instance in program.nest_instances(nest, program.seq_base_of(nest)):
                buffer.append(instance)
                seen += 1
                if len(buffer) == size:
                    window = scheduler.schedule_window(buffer)
                    for statement_schedule in window.schedules:
                        units.extend(statement_schedule.subcomputations)
                    buffer = []
                if seen >= limit:
                    break
            if buffer:
                window = scheduler.schedule_window(buffer)
                for statement_schedule in window.schedules:
                    units.extend(statement_schedule.subcomputations)
            reuse = None
        machine.mcdram.reset()
        metrics = Simulator(machine, SimConfig()).run(units)
        return metrics.total_cycles, metrics.data_movement, reuse


@register_pass
class BalancePass(Pass):
    """§4.5's load balancing — inline in the scheduler's placement loop.

    Skipping this pass makes the scheduler take the minimum-movement
    candidate unconditionally (no 10% veto): the scheduler constructs its
    :class:`repro.core.balancer.LoadBalancer` with ``enabled=False``.
    """

    info = PassInfo("balance", "§4.5", "repro.core.balancer", inline=True)

    def run(self, session, artifacts: Artifacts) -> None:
        """No-op: the work happens inside the schedule pass's hot loop."""


@register_pass
class SyncMinimizePass(Pass):
    """§4.5's synchronization minimization — inline per window.

    Skipping this pass leaves every window's sync graph unminimized
    (``sync_count == sync_count_unminimized``); the accumulated wall time
    of the per-window ``minimize()`` calls is charged to this pass.
    """

    info = PassInfo("sync_minimize", "§4.5", "repro.core.syncgraph", inline=True)

    def run(self, session, artifacts: Artifacts) -> None:
        """No-op: the work happens per window in the schedule pass."""


@register_pass
class CodegenPass(Pass):
    """§4.5 / Figure 8: per-node code generation (on demand)."""

    info = PassInfo(
        "codegen", "§4.5, Fig 8", "repro.core.codegen", default=False
    )

    def run(self, session, artifacts: Artifacts) -> None:
        from repro.core.codegen import generate_for_partition

        partition = artifacts.require("partition", self.info.name)
        artifacts["generated_code"] = generate_for_partition(partition)


@register_pass
class ExecutePass(Pass):
    """Run the compiled schedule through an execution backend.

    Registered but not in the default order — compiling does not imply
    executing.  The backend choice rides in as artifacts seeded by the
    caller (``backend`` name, optional ``backend_options`` kwargs for
    :func:`repro.exec.backend.get_backend`); absent, the simulator runs
    with defaults, matching the historical compile-then-simulate flow.
    """

    info = PassInfo("execute", "§5", "repro.exec", default=False)

    def run(self, session, artifacts: Artifacts) -> None:
        from repro.exec.backend import get_backend

        partition = artifacts.require("partition", self.info.name)
        name = artifacts.get("backend", "sim")
        options = artifacts.get("backend_options", {})
        backend = get_backend(name, **options)
        machine = session.machine
        with session.tracer.span("execute.backend", backend=name) as span:
            machine.mcdram.reset()
            result = backend.run(machine, partition.units())
            span.add(
                data_movement=result.data_movement,
                sync_count=result.sync_count,
                units=result.unit_count,
            )
        artifacts["execution"] = result


#: The registry's default order: every non-inline default pass in the
#: paper's sequence, with the inline passes listed where the paper puts
#: their work (after windowing).
DEFAULT_PASS_ORDER: Tuple[str, ...] = tuple(
    p.info.name for p in PASS_REGISTRY.values() if p.info.default
)
