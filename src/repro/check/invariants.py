"""Runtime assertion hooks for check mode (``--check`` / ``REPRO_CHECK=1``).

Each function here states one invariant of the optimized pipeline and
raises :class:`~repro.errors.CheckError` with a concrete counterexample
when it breaks.  Hook sites in the partitioner, scheduler, balancer,
router, layout, and simulator call these behind an
``repro.check.enabled()`` guard, so the pristine pipeline pays one
boolean test per site and check mode pays the (bounded) verification
cost.  No checker mutates pipeline state: enabling checks never changes
a computed number.

The invariant -> module map lives in DESIGN.md section 10.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.check.oracles import (
    INF,
    floyd_warshall,
    naive_bank_of_va,
    naive_channel_of_va,
    oracle_split_weight,
    reference_transitive_closure,
    reference_transitive_reduction,
    walk_is_valid_route,
)
from repro.errors import CheckError

LinkId = Tuple[int, int]

#: Sync graphs beyond this many arcs skip the O(V*E) reference reduction
#: (windows are <= 8 statements, so real graphs are far below this).
MAX_REFERENCE_REDUCTION_ARCS = 512

#: Meshes beyond this many nodes skip the O(n^3) Floyd-Warshall audit.
MAX_FLOYD_WARSHALL_NODES = 144


def require(condition: bool, message: str) -> None:
    """Raise :class:`CheckError` with ``message`` unless ``condition``."""
    if not condition:
        raise CheckError(message)


# -- simulator conservation invariants -------------------------------------

def check_heatmap_conservation(metrics) -> None:
    """Per-link flits sum exactly to DataMovement; so do per-seq totals.

    Every data flit-hop the simulator charges traverses exactly one
    directed link and belongs to exactly one statement instance, so both
    decompositions must re-sum to the headline metric bit-for-bit.
    """
    link_total = sum(metrics.link_flits.values())
    require(
        link_total == metrics.data_movement,
        f"heatmap conservation broken: per-link flits sum to {link_total} "
        f"but data_movement is {metrics.data_movement}",
    )
    seq_total = sum(metrics.movement_by_seq.values())
    require(
        seq_total == metrics.data_movement,
        f"per-statement conservation broken: movement_by_seq sums to "
        f"{seq_total} but data_movement is {metrics.data_movement}",
    )


def check_units_wellformed(units: Sequence) -> None:
    """A schedule is a DAG of uniquely-named units with resolvable inputs.

    Checks (1) uid uniqueness, (2) every consumed child result names a
    unit in the schedule, and (3) the dataflow arcs admit a topological
    order (no cycle), which is what 'every schedule respects the
    dependence graph' means before memory arcs are added (the simulator's
    last-writer scan adds those and re-verifies completion).
    """
    by_uid = {}
    for unit in units:
        require(
            unit.uid not in by_uid,
            f"duplicate subcomputation uid {unit.uid} in schedule",
        )
        by_uid[unit.uid] = unit
    indegree = {uid: 0 for uid in by_uid}
    successors: Dict[int, list] = {uid: [] for uid in by_uid}
    for unit in units:
        for result in unit.sub_results:
            require(
                result.producer_uid in by_uid,
                f"unit {unit.uid} consumes unknown producer "
                f"{result.producer_uid}",
            )
            require(
                result.producer_uid != unit.uid,
                f"unit {unit.uid} consumes its own result",
            )
            indegree[unit.uid] += 1
            successors[result.producer_uid].append(unit.uid)
    ready = [uid for uid, degree in indegree.items() if degree == 0]
    seen = 0
    while ready:
        uid = ready.pop()
        seen += 1
        for successor in successors[uid]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    require(
        seen == len(by_uid),
        f"schedule dataflow has a cycle: only {seen} of {len(by_uid)} "
        "units are topologically orderable",
    )


def check_unit_nodes_alive(units: Sequence, dead_nodes: Iterable[int]) -> None:
    """No unit of a fault-aware schedule is placed on an offline tile."""
    dead = frozenset(dead_nodes)
    if not dead:
        return
    for unit in units:
        require(
            unit.node not in dead,
            f"unit {unit.uid} scheduled on offline tile {unit.node}",
        )


# -- balancer arbitration ---------------------------------------------------

def check_balancer_choice(
    balancer, candidates: Sequence[int], cost: float, chosen: int
) -> None:
    """The balancer's verdict follows its own 10% rule.

    The chosen node either passes the would-unbalance test (stays within
    ``threshold`` of the next most-loaded node) or — when every candidate
    is vetoed — is the least-loaded candidate (deterministic ties by id).
    """
    require(
        chosen in candidates,
        f"balancer chose node {chosen} not among candidates {list(candidates)}",
    )
    if not balancer.would_unbalance(chosen, cost):
        return
    fallback = min(candidates, key=lambda n: (balancer.load[n], n))
    require(
        chosen == fallback,
        f"balancer chose vetoed node {chosen} (load {balancer.load[chosen]}) "
        f"over least-loaded candidate {fallback} "
        f"(load {balancer.load[fallback]})",
    )


def check_split_weight(split, distance) -> None:
    """The splitter's reported MST weight equals the exhaustive minimum.

    Harness-level only (the exhaustive oracle is exponential in operand-set
    size): the property tests in ``tests/check/`` run it over randomized
    statements; it is never hooked into the runtime pipeline.
    """
    expected = oracle_split_weight(split, distance)
    require(
        split.mst_weight == expected,
        f"splitter MST weight {split.mst_weight} differs from the "
        f"exhaustive minimum {expected} (seq {split.instance.seq})",
    )


# -- memoization bit-equality -----------------------------------------------

def check_nest_tables(tables, sample: int = 8) -> None:
    """Vectorized nest tables equal the scalar locator answers.

    Samples up to ``sample`` covered rows per column (spread across the
    covered range) and recomputes block, on-chip verdict, primary node,
    and store node through the scalar ``layout``/``predictor``/``machine``
    call chain.  Safe to replay: tables only exist for pure predictors,
    and every sampled page is already translated, so the duplicate
    queries cannot perturb frame assignment.
    """
    machine = tables.machine
    layout = machine.layout
    predictor = tables.predictor
    body = tables.body_size
    full_rows, rem = divmod(tables.covered, body)
    for s in range(body):
        rows = full_rows + (1 if s < rem else 0)
        if rows == 0:
            continue
        step = max(1, rows // sample)
        picks = list(range(0, rows, step))[:sample] + [rows - 1]
        for r, column in enumerate(tables.access.reads[s]):
            for it in picks:
                index = int(column.indices[it])
                block = layout.block_of(column.array, index)
                require(
                    tables.read_block[s][r][it] == block,
                    f"nest table divergence ({tables.nest.name} s={s} r={r} "
                    f"it={it}): block {tables.read_block[s][r][it]} != "
                    f"scalar {block}",
                )
                if predictor is not None:
                    on_chip = predictor.predict(layout.pa_of(column.array, index))
                else:
                    on_chip = True
                require(
                    bool(tables.read_on_chip[s][r][it]) == on_chip,
                    f"nest table divergence ({tables.nest.name} s={s} r={r} "
                    f"it={it}): on_chip {tables.read_on_chip[s][r][it]} != "
                    f"scalar {on_chip}",
                )
                expected = (
                    machine.home_node(column.array, index)
                    if on_chip
                    else machine.mc_node(column.array, index)
                )
                require(
                    tables.read_primary[s][r][it] == expected,
                    f"nest table divergence ({tables.nest.name} s={s} r={r} "
                    f"it={it}): primary {tables.read_primary[s][r][it]} != "
                    f"scalar {expected}",
                )
        write = tables.access.writes[s]
        for it in picks:
            index = int(write.indices[it])
            block = layout.block_of(write.array, index)
            home = machine.home_node(write.array, index)
            require(
                tables.write_block[s][it] == block
                and tables.store_node[s][it] == home,
                f"nest table divergence ({tables.nest.name} s={s} write "
                f"it={it}): (block, store) "
                f"({tables.write_block[s][it]}, {tables.store_node[s][it]}) "
                f"!= scalar ({block}, {home})",
            )


def check_access_table(table, program, nest, sample: int = 8) -> None:
    """Closed-form access columns equal the scalar instance stream.

    Samples up to ``sample`` iterations (spread across the nest, endpoints
    included) and replays them through ``program.nest_instances`` — the
    scalar resolver the whole pipeline trusts — comparing every read and
    write element index against the vectorized column.
    """
    if table.iterations == 0:
        return
    step = max(1, table.iterations // sample)
    picks = sorted(set(list(range(0, table.iterations, step))[:sample]
                       + [table.iterations - 1]))
    wanted = {it: {} for it in picks}
    stream = program.nest_instances(nest)
    for i, instance in enumerate(stream):
        it, s = divmod(i, table.body_size)
        if it > picks[-1]:
            break
        if it in wanted:
            wanted[it][s] = instance
    for it in picks:
        for s, instance in wanted[it].items():
            for r, access in enumerate(instance.reads):
                column = table.reads[s][r]
                require(
                    column.array == access.array
                    and int(column.indices[it]) == access.index,
                    f"access table divergence ({table.nest_name} s={s} r={r} "
                    f"it={it}): column has {column.array}"
                    f"[{int(column.indices[it])}], scalar resolved "
                    f"{access.array}[{access.index}]",
                )
            write = table.writes[s]
            require(
                write.array == instance.write.array
                and int(write.indices[it]) == instance.write.index,
                f"access table divergence ({table.nest_name} s={s} write "
                f"it={it}): column has {write.array}"
                f"[{int(write.indices[it])}], scalar resolved "
                f"{instance.write.array}[{instance.write.index}]",
            )


#: Minimum analytic-vs-trace verdict agreement the differential oracle
#: tolerates (DESIGN.md section 12 measures 0.82-1.00 on the paper
#: workloads; the floor is deliberately loose — the models legitimately
#: diverge on cross-nest reuse and trained-sample boundaries).
MIN_PREDICTOR_AGREEMENT = 0.5

#: Below this many compared addresses, agreement is noise: skip the floor.
MIN_PREDICTOR_SAMPLE = 64


def check_predictor_agreement(
    analytic, trace, addresses: Sequence[int],
    floor: float = MIN_PREDICTOR_AGREEMENT,
) -> float:
    """The analytic predictor agrees with the trace oracle on ``addresses``.

    Both predictors are queried read-only (``predict`` never trains), so
    the check cannot perturb either model.  Returns the agreement fraction;
    raises when it falls below ``floor`` on a meaningful sample.
    """
    total = len(addresses)
    if total == 0:
        return 1.0
    agree = sum(
        1 for a in addresses if analytic.predict(a) == trace.predict(a)
    )
    fraction = agree / total
    require(
        total < MIN_PREDICTOR_SAMPLE or fraction >= floor,
        f"analytic predictor diverged from the trace oracle: agreement "
        f"{fraction:.3f} over {total} addresses is below the documented "
        f"floor {floor} (DESIGN.md section 12)",
    )
    return fraction


def check_split_cache_hit(cached, recomputed) -> None:
    """A split served from the cache is bit-equal to a fresh recompute."""
    require(
        cached.mst_edges == recomputed.mst_edges,
        f"split cache divergence at seq {cached.instance.seq}: cached MST "
        f"edges {cached.mst_edges} != recomputed {recomputed.mst_edges}",
    )
    require(
        cached.merges == recomputed.merges
        and cached.leaves == recomputed.leaves
        and cached.sets == recomputed.sets
        and cached.store_node == recomputed.store_node,
        f"split cache divergence at seq {cached.instance.seq}: cached "
        "structure differs from recompute",
    )


def check_route_cache_entry(mesh, links, src: int, dst: int, dead_links) -> None:
    """A (possibly cached) route is a live walk of the expected length."""
    require(
        walk_is_valid_route(links, src, dst, mesh, dead_links),
        f"route {src}->{dst} is not a contiguous live-link walk: {links}",
    )


# -- router vs Floyd-Warshall ------------------------------------------------

def check_router_distances(router) -> None:
    """Every live-pair route length equals the true shortest distance.

    Floyd–Warshall over the surviving graph is the all-pairs reference;
    the router's (cached, detoured) ``hops`` must match it exactly, and
    every returned route must be a contiguous walk over live links.
    """
    mesh = router.mesh
    if mesh.node_count > MAX_FLOYD_WARSHALL_NODES:
        return
    reference = floyd_warshall(mesh, router.dead_links, router.dead_nodes)
    alive = [n for n in range(mesh.node_count) if router.alive(n)]
    for src in alive:
        row = reference[src]
        for dst in alive:
            expected = row[dst]
            if expected == INF:
                # Disconnection is a validation concern (FaultError), not a
                # shortest-path one; route_links would raise on this pair.
                continue
            links = router.route_links(src, dst)
            require(
                len(links) == int(expected),
                f"route {src}->{dst} uses {len(links)} links but the "
                f"shortest surviving path is {int(expected)}",
            )
            require(
                router.hops(src, dst) == int(expected),
                f"router.hops({src}, {dst}) = {router.hops(src, dst)} but "
                f"Floyd-Warshall says {int(expected)}",
            )
            check_route_cache_entry(mesh, links, src, dst, router.dead_links)


# -- mesh geometry (sparse distances, hierarchical placement) ---------------

def check_mesh_distance_fn(mesh, sample: int = 0) -> None:
    """``distance_fn()`` agrees with the Floyd-Warshall oracle everywhere.

    The sparse/closed-form callable of a large mesh and the table lookup
    of a small one must both return the healthy-mesh shortest distance.
    ``sample > 0`` bounds the audit to the first ``sample`` node ids
    (big meshes); 0 audits every pair up to the Floyd-Warshall cap.
    """
    if sample <= 0 and mesh.node_count > MAX_FLOYD_WARSHALL_NODES:
        return
    limit = mesh.node_count if sample <= 0 else min(sample, mesh.node_count)
    fn = mesh.distance_fn()
    reference = floyd_warshall(mesh)
    for src in range(limit):
        row = reference[src]
        for dst in range(limit):
            require(
                fn(src, dst) == int(row[dst]),
                f"distance_fn({src}, {dst}) = {fn(src, dst)} but "
                f"Floyd-Warshall says {int(row[dst])}",
            )


def check_preferences_cover_alive(
    preferences: Sequence[Sequence[int]], alive: Iterable[int]
) -> None:
    """Every chunk preference list is a permutation of the alive nodes.

    The hierarchical search must neither drop, duplicate, nor invent a
    candidate node — :meth:`DefaultPlacement._assign_chunks`'s load-cap
    fallback scans the whole list, so a missing node silently shrinks
    the machine and an offline one resurrects a dead tile.
    """
    expected = sorted(alive)
    expected_set = set(expected)
    for index, ranked in enumerate(preferences):
        if sorted(ranked) == expected:
            continue
        missing = sorted(expected_set - set(ranked))[:5]
        extra = sorted(set(ranked) - expected_set)[:5]
        duplicated = len(ranked) != len(set(ranked))
        raise CheckError(
            f"chunk {index} preferences are not a permutation of the alive "
            f"nodes: missing {missing}, extra {extra}, "
            f"duplicates={duplicated}"
        )


# -- layout maps vs naive mapper --------------------------------------------

def check_layout_maps(layout, name: str) -> None:
    """Vectorized bank/channel maps equal the scalar per-address mapper.

    Pure virtual-address arithmetic on both sides (the naive mapper never
    touches the page allocator), so this hook cannot perturb frame
    assignment order — check mode stays bit-identical.
    """
    length = layout.spec(name).length
    banks = layout._bank_lists.get(name)
    if banks is not None:
        for index in range(length):
            expected = naive_bank_of_va(layout, name, index)
            require(
                banks[index] == expected,
                f"bank map divergence: {name}[{index}] vectorized bank "
                f"{banks[index]} != naive {expected}",
            )
    channels = layout._channel_lists.get(name)
    if channels is not None:
        for index in range(length):
            expected = naive_channel_of_va(layout, name, index)
            require(
                channels[index] == expected,
                f"channel map divergence: {name}[{index}] vectorized channel "
                f"{channels[index]} != naive {expected}",
            )


# -- sync graph minimization -------------------------------------------------

def check_syncgraph_minimized(
    arcs_before: Sequence[Tuple[int, int]],
    arcs_after: Sequence[Tuple[int, int]],
) -> None:
    """Minimization produced exactly the unique transitive reduction.

    Two-sided: reachability is preserved (no ordering lost) and every
    surviving arc is irredundant (the count matches the reference, so no
    removable arc was kept either).
    """
    if len(arcs_before) > MAX_REFERENCE_REDUCTION_ARCS:
        return
    before = set(arcs_before)
    after = set(arcs_after)
    closure_before = reference_transitive_closure(before)
    closure_after = reference_transitive_closure(after)
    require(
        closure_before == closure_after,
        "sync-graph minimization changed reachability: "
        f"lost {sorted(closure_before - closure_after)[:5]}, "
        f"gained {sorted(closure_after - closure_before)[:5]}",
    )
    reference = reference_transitive_reduction(before)
    require(
        after == reference,
        "sync-graph minimization is not the transitive reduction: "
        f"kept-but-redundant {sorted(after - reference)[:5]}, "
        f"dropped-but-needed {sorted(reference - after)[:5]}",
    )


# -- partition accounting -----------------------------------------------------

def check_partition_accounting(partition) -> None:
    """A partition's aggregate counters re-sum from their decompositions."""
    per_statement = partition.per_statement_movement()
    require(
        sum(per_statement) == partition.movement,
        f"partition movement {partition.movement} != per-statement sum "
        f"{sum(per_statement)}",
    )
    require(
        len(per_statement) == partition.statement_count,
        f"partition statement_count {partition.statement_count} != "
        f"{len(per_statement)} per-statement entries",
    )
    for name, schedule in partition.nest_schedules.items():
        window_sum = sum(w.movement for w in schedule.windows)
        require(
            window_sum == schedule.movement,
            f"nest {name!r} movement {schedule.movement} != per-window sum "
            f"{window_sum}",
        )


def check_balanced_loads(
    balancer, threshold: Optional[float] = None, slack_cost: float = 0.0
) -> None:
    """Final per-node loads respect the balance rule up to one assignment.

    Every accepted placement either kept its node within ``threshold`` of
    the next most-loaded node or fell back to the then-least-loaded node,
    so the finished load vector can exceed perfect balance by at most the
    largest single subcomputation cost (``slack_cost``).
    """
    limit = threshold if threshold is not None else balancer.threshold
    busy = [load for load in balancer.load if load > 0]
    if len(busy) < 2:
        return
    ordered = sorted(busy, reverse=True)
    heaviest, runner_up = ordered[0], ordered[1]
    require(
        heaviest <= (1.0 + limit) * runner_up + slack_cost,
        f"load balance broken: heaviest node carries {heaviest:.1f} vs "
        f"runner-up {runner_up:.1f} (threshold {limit:.0%}, "
        f"slack {slack_cost:.1f})",
    )
