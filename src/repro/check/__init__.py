"""Differential-oracle & invariant-checking subsystem (DESIGN.md section 10).

The optimized pipeline is a chain of clever paths — Kruskal splitting,
route caches, vectorized layout maps, sync-graph minimization, schedule
reuse — whose correctness this package proves against *obviously correct
but slow* references:

* :mod:`repro.check.oracles` — brute-force reference implementations
  (exhaustive spanning-tree search, Floyd–Warshall all-pairs distances,
  a naive per-address bank/channel mapper, reference transitive
  closure/reduction) used by the property harness in ``tests/check/``;
* :mod:`repro.check.invariants` — runtime assertion hooks threaded
  through the partitioner, scheduler, balancer, router, layout, and
  simulator, active only in *check mode*.

Check mode is off by default and costs one ``enabled()`` call per hook
site; enabling it must never change any computed number — it only adds
assertions (verified bit-for-bit by ``tests/check/test_runtime.py``).

Enable with the CLI flag (``repro ... --check``), the environment
(``REPRO_CHECK=1``), or the API::

    from repro import check
    with check.checking():
        ...             # every hook site now validates its invariant

Violations raise :class:`repro.errors.CheckError`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import CheckError

__all__ = ["CheckError", "checking", "disable", "enable", "enabled", "env_enabled"]

_TRUTHY = ("1", "true", "yes", "on")


def env_enabled() -> bool:
    """True when the ``REPRO_CHECK`` environment variable asks for checks."""
    return os.environ.get("REPRO_CHECK", "").strip().lower() in _TRUTHY


_enabled = env_enabled()


def enabled() -> bool:
    """True when check mode is active (hook sites consult this)."""
    return _enabled


def enable() -> None:
    """Turn check mode on for the rest of the process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn check mode off."""
    global _enabled
    _enabled = False


@contextmanager
def checking(on: bool = True):
    """Scoped check mode: restore the previous state on exit."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous
