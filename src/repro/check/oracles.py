"""Brute-force reference implementations (obviously correct, slow).

Each oracle recomputes, from first principles, a quantity an optimized
path produces through cleverness — exhaustive search where the optimized
code runs Kruskal, Floyd–Warshall where it consults a route cache,
per-address bit arithmetic where it vectorizes, a quadratic closure where
it sweeps bitmasks.  The property harness in ``tests/check/`` runs the
two against each other over randomized inputs; the runtime hooks in
:mod:`repro.check.invariants` call the cheap ones directly.

Oracles never mutate their arguments and never consult the caches they
are checking.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import CheckError
from repro.noc.topology import Mesh2D
from repro.utils.union_find import UnionFind

#: Exhaustive spanning-tree search enumerates C(n*(n-1)/2, n-1) edge
#: subsets; beyond this many vertices the oracle refuses rather than hang.
MAX_EXHAUSTIVE_VERTICES = 7

INF = float("inf")

LinkId = Tuple[int, int]


# -- exhaustive spanning trees (oracle for Kruskal / the MST splitter) -----

def exhaustive_mst_weight(
    count: int, weight: Callable[[int, int], float]
) -> float:
    """Minimum spanning-tree weight over ``count`` items by brute force.

    Items are identified by index ``0..count-1``; ``weight(i, j)`` gives
    the edge weight.  Every (n-1)-subset of the complete edge set is
    tested for spanning-ness, so the result is the true minimum — the
    reference for :func:`repro.core.mst.kruskal` and for the splitter's
    per-operand-set component Kruskal.
    """
    if count < 2:
        return 0.0
    if count > MAX_EXHAUSTIVE_VERTICES:
        raise CheckError(
            f"exhaustive MST limited to {MAX_EXHAUSTIVE_VERTICES} vertices, "
            f"got {count}"
        )
    edges = [
        (weight(i, j), i, j)
        for i in range(count)
        for j in range(i + 1, count)
    ]
    best: Optional[float] = None
    for combo in itertools.combinations(edges, count - 1):
        uf = UnionFind(range(count))
        total = 0.0
        for w, i, j in combo:
            if not uf.union(i, j):
                break  # cycle: not a spanning tree
            total += w
        else:
            if uf.set_count == 1 and (best is None or total < best):
                best = total
    assert best is not None  # the complete graph always has a spanning tree
    return best


def component_distance(
    nodes_a: Sequence[int],
    nodes_b: Sequence[int],
    distance: Callable[[int, int], int],
) -> int:
    """Minimum pairwise distance between two node sets (splitter edge rule)."""
    return min(distance(a, b) for a in nodes_a for b in nodes_b)


def oracle_split_weight(split, distance: Callable[[int, int], int]) -> float:
    """Recompute a :class:`~repro.core.splitter.StatementSplit`'s MST weight.

    Replays the splitter's hierarchy from its recorded structure alone:
    every operand set's members are components (a leaf's vertex, the store
    node, or an already-merged inner set's node union), edge weight between
    components is the minimum pairwise distance (paper Figure 10's edge ③),
    and the set's contribution is the *exhaustive* minimum spanning-tree
    weight over its components.  The sum over all sets must equal
    ``split.mst_weight`` — the spanning-tree minimum is unique even when
    the tree itself is not.
    """
    component_nodes: Dict[int, Tuple[int, ...]] = {
        member: (leaf.vertex,) for member, leaf in split.leaves.items()
    }
    component_nodes[split.store_member] = (split.store_node,)
    total = 0.0
    # ``sets`` is appended children-first, so members always resolve.
    for record in split.sets:
        members = [component_nodes[m] for m in record.member_ids]
        if len(members) >= 2:
            total += exhaustive_mst_weight(
                len(members),
                lambda i, j: component_distance(members[i], members[j], distance),
            )
        component_nodes[record.set_id] = tuple(
            sorted({n for nodes in members for n in nodes})
        )
    return total


# -- Floyd–Warshall (oracle for the XY / fault-aware route cache) ----------

def floyd_warshall(
    mesh: Mesh2D,
    dead_links: Iterable[LinkId] = (),
    dead_nodes: Iterable[int] = (),
) -> List[List[float]]:
    """All-pairs shortest distances over the surviving mesh graph.

    The textbook O(n^3) recurrence over the directed live-link adjacency;
    ``inf`` marks unreachable pairs (and any pair touching a dead node).
    Reference for healthy Manhattan distances, ``Mesh2D.distance_table``,
    and :meth:`repro.noc.routing.Router.hops` under faults.
    """
    n = mesh.node_count
    dead_nodes = frozenset(dead_nodes)
    dead = set(dead_links)
    for node in dead_nodes:
        for neighbor in mesh.neighbors(node):
            dead.add((node, neighbor))
            dead.add((neighbor, node))
    dist = [[INF] * n for _ in range(n)]
    for node in range(n):
        if node not in dead_nodes:
            dist[node][node] = 0.0
        for neighbor in mesh.neighbors(node):
            if (node, neighbor) not in dead:
                dist[node][neighbor] = 1.0
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            ik = dist[i][k]
            if ik == INF:
                continue
            row_i = dist[i]
            for j in range(n):
                through = ik + row_k[j]
                if through < row_i[j]:
                    row_i[j] = through
    return dist


def walk_is_valid_route(
    links: Sequence[LinkId],
    src: int,
    dst: int,
    mesh: Mesh2D,
    dead_links: FrozenSet[LinkId] = frozenset(),
) -> bool:
    """True when ``links`` is a contiguous walk src->dst over live mesh links."""
    at = src
    for a, b in links:
        if a != at or (a, b) in dead_links or mesh.distance(a, b) != 1:
            return False
        at = b
    return at == dst


# -- naive per-address layout mapper (oracle for vectorized DataLayout) ----

def naive_bank_of_va(layout, name: str, index: int) -> int:
    """Home L2 bank of ``name[index]`` by scalar per-address bit arithmetic.

    Walks the virtual address through the bit-field mapping one element at
    a time — the obviously-correct path the vectorized
    :meth:`~repro.mem.layout.DataLayout.bank_map` replaces.
    """
    return layout.mapping.l2.bank_of(layout.va_of(name, index))


def naive_channel_of_va(layout, name: str, index: int) -> int:
    """Memory channel of ``name[index]`` by scalar per-address bit arithmetic."""
    return layout.mapping.memory.channel_of(layout.va_of(name, index))


def naive_bank_of_pa(layout, name: str, index: int) -> int:
    """Home L2 bank through the *physical* address path.

    Translates through the page allocator (allocating frames on demand)
    and extracts the bank from the PA — must agree with the VA-derived
    maps because the allocator is color-preserving.  Test-harness only:
    it can allocate frames, so runtime hooks use the VA variants.
    """
    return layout.mapping.l2.bank_of(layout.pa_of(name, index))


def naive_channel_of_pa(layout, name: str, index: int) -> int:
    """Memory channel through the physical address path (see above)."""
    return layout.mapping.memory.channel_of(layout.pa_of(name, index))


def naive_home_node(machine, name: str, index: int) -> int:
    """Home mesh node of ``name[index]`` from the naive VA bank mapper."""
    bank = naive_bank_of_va(machine.layout, name, index)
    return machine.node_of_bank(bank)


# -- reference transitive closure / reduction (oracle for SyncGraph) -------

def reference_transitive_closure(
    arcs: Iterable[Tuple[int, int]]
) -> Set[Tuple[int, int]]:
    """Every ordered pair (u, v) with a directed path u -> v, by plain DFS."""
    successors: Dict[int, Set[int]] = {}
    nodes: Set[int] = set()
    for a, b in arcs:
        successors.setdefault(a, set()).add(b)
        nodes.update((a, b))
    closure: Set[Tuple[int, int]] = set()
    for start in nodes:
        stack = list(successors.get(start, ()))
        seen: Set[int] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors.get(node, ()))
        closure.update((start, reached) for reached in seen)
    return closure


def reference_transitive_reduction(
    arcs: Iterable[Tuple[int, int]]
) -> Set[Tuple[int, int]]:
    """The unique minimal arc set with the same reachability (DAG input).

    An arc (u, v) is redundant exactly when some other successor w of u
    already reaches v; for a DAG the reduction is unique, so the optimized
    :meth:`repro.core.syncgraph.SyncGraph.minimize` must reproduce it
    *exactly*, not merely equivalently.
    """
    arc_set = set(arcs)
    closure = reference_transitive_closure(arc_set)
    kept: Set[Tuple[int, int]] = set()
    for u, v in arc_set:
        redundant = any(
            w != v and (w, v) in closure
            for (a, w) in arc_set
            if a == u and w != v
        )
        if not redundant:
            kept.add((u, v))
    return kept
