"""Off-chip / on-package memory timing parameters.

KNL has two memory types (paper Section 6.1): conventional DDR4 and
on-package high-bandwidth MCDRAM.  The simulator only needs coarse latency
and energy-per-access constants; bandwidth shows up implicitly through the
NoC serialization term.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramParams:
    """Latency/energy constants of a memory technology."""

    name: str
    access_cycles: float
    energy_pj_per_access: float

    def scaled(self, latency_factor: float) -> "DramParams":
        """A copy with access latency scaled (used in sensitivity sweeps)."""
        return DramParams(
            self.name, self.access_cycles * latency_factor, self.energy_pj_per_access
        )


# Rough KNL-class constants: MCDRAM trades a similar (slightly better) latency
# with much higher bandwidth; we give it a modest latency edge and lower
# per-access energy, which is what the relative comparisons need.
DDR4_PARAMS = DramParams(name="ddr4", access_cycles=180.0, energy_pj_per_access=60.0)
MCDRAM_PARAMS = DramParams(name="mcdram", access_cycles=150.0, energy_pj_per_access=40.0)
