"""Physical address bit-field mappings (paper Figure 2).

Two interleavings are modelled:

* :class:`CacheLineInterleaving` — cacheline-granularity mapping of addresses
  over L2 banks.  With a 64B line and 32 banks, bank id = bits 6..10 of the
  physical address, exactly as Figure 2a draws it.
* :class:`PageInterleaving` — page-granularity mapping over memory channels,
  ranks, and banks.  With 4KB pages, 4 channels, 4 ranks and 8 banks, the
  channel is bits 12..13, rank 14..15, bank 16..18 (Figure 2b).

Both are expressed via :class:`BitField` so non-default geometries (different
bank counts, page sizes) just change field widths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError


def _bits_for(count: int, what: str) -> int:
    """Number of index bits for ``count`` entries; count must be a power of 2."""
    if count < 1 or count & (count - 1):
        raise MappingError(f"{what} count must be a power of two, got {count}")
    return count.bit_length() - 1


@dataclass(frozen=True)
class BitField:
    """A contiguous bit field ``[low, low+width)`` of an address."""

    low: int
    width: int

    @property
    def high(self) -> int:
        """Exclusive upper bit index."""
        return self.low + self.width

    def extract(self, address: int) -> int:
        """Value of this field within ``address``."""
        return (address >> self.low) & ((1 << self.width) - 1)

    def insert(self, address: int, value: int) -> int:
        """Return ``address`` with this field replaced by ``value``."""
        if value >> self.width:
            raise MappingError(
                f"value {value} does not fit in {self.width}-bit field"
            )
        mask = ((1 << self.width) - 1) << self.low
        return (address & ~mask) | (value << self.low)


class CacheLineInterleaving:
    """Cacheline-granularity address-to-L2-bank mapping (Figure 2a).

    The default (``hash_fold=False``) extracts the bank from the bit field
    directly above the line offset, exactly as Figure 2a draws it.  This
    places *consecutive* blocks on *consecutive* banks/nodes — the geometry
    the paper's short MST edges rely on (a statement's operands usually sit
    a few lines apart, hence a few hops apart).  ``hash_fold=True`` instead
    XOR-folds the whole block number into the bank index, modeling
    production NUCA hashes that trade this adjacency for conflict spreading;
    the fold is XOR-linear, so the page allocator can still preserve each
    page's bank contribution during VA->PA translation.  (Arrays' staggered
    base addresses — see :meth:`repro.mem.layout.DataLayout.add_array` —
    keep same-index elements of different arrays off the same bank in both
    modes.)
    """

    def __init__(self, line_size: int = 64, bank_count: int = 32, hash_fold: bool = False):
        self.line_size = line_size
        self.bank_count = bank_count
        self.hash_fold = hash_fold
        line_bits = _bits_for(line_size, "cache line size")
        bank_bits = _bits_for(bank_count, "L2 bank")
        self.offset_field = BitField(0, line_bits)
        self.bank_field = BitField(line_bits, bank_bits)

    def _fold(self, block: int) -> int:
        """XOR-fold an arbitrary-width block number down to bank-index width."""
        width = self.bank_field.width
        mask = (1 << width) - 1
        folded = 0
        while block:
            folded ^= block & mask
            block >>= width
        return folded

    def bank_of(self, address: int) -> int:
        """Home L2 bank index of ``address`` (SNUCA static mapping)."""
        if not self.hash_fold:
            return self.bank_field.extract(address)
        return self._fold(self.block_of(address))

    def page_bank_contribution(self, address: int, page_size: int) -> int:
        """The page-number part of the folded bank index for ``address``.

        Because the fold is XOR-linear, ``bank_of(addr) ==
        page_bank_contribution(addr) ^ bank_of(offset_within_page)``; a page
        allocator that preserves this contribution preserves every line's
        bank.  Without folding the contribution is the bank bits that fall
        above the page offset (zero for the default geometry).
        """
        page_base = (address // page_size) * page_size
        if not self.hash_fold:
            return self.bank_field.extract(page_base)
        return self._fold(self.block_of(page_base))

    def block_of(self, address: int) -> int:
        """Cache block (line) number of ``address``."""
        return address >> self.offset_field.width

    def with_bank(self, address: int, bank: int) -> int:
        """Rewrite the bank bits of ``address`` (used by page coloring)."""
        return self.bank_field.insert(address, bank)


class PageInterleaving:
    """Page-granularity mapping over channels/ranks/banks (Figure 2b)."""

    def __init__(
        self,
        page_size: int = 4096,
        channel_count: int = 4,
        rank_count: int = 4,
        bank_count: int = 8,
    ):
        self.page_size = page_size
        self.channel_count = channel_count
        self.rank_count = rank_count
        self.bank_count = bank_count
        page_bits = _bits_for(page_size, "page size")
        channel_bits = _bits_for(channel_count, "channel")
        rank_bits = _bits_for(rank_count, "rank")
        bank_bits = _bits_for(bank_count, "memory bank")
        self.offset_field = BitField(0, page_bits)
        self.channel_field = BitField(page_bits, channel_bits)
        self.rank_field = BitField(page_bits + channel_bits, rank_bits)
        self.bank_field = BitField(page_bits + channel_bits + rank_bits, bank_bits)

    def channel_of(self, address: int) -> int:
        """Memory channel (controller) index of ``address``."""
        return self.channel_field.extract(address)

    def rank_of(self, address: int) -> int:
        return self.rank_field.extract(address)

    def bank_of(self, address: int) -> int:
        return self.bank_field.extract(address)

    def page_of(self, address: int) -> int:
        """Virtual/physical page number of ``address``."""
        return address >> self.offset_field.width

    def with_channel(self, address: int, channel: int) -> int:
        """Rewrite the channel bits of ``address`` (page coloring)."""
        return self.channel_field.insert(address, channel)


@dataclass(frozen=True)
class AddressMapping:
    """The machine's full physical address mapping: L2 + memory levels."""

    l2: CacheLineInterleaving
    memory: PageInterleaving

    @staticmethod
    def default(bank_count: int = 32, channel_count: int = 4) -> "AddressMapping":
        """The paper's Figure 2 geometry, parameterized by bank/MC counts."""
        return AddressMapping(
            l2=CacheLineInterleaving(line_size=64, bank_count=bank_count),
            memory=PageInterleaving(page_size=4096, channel_count=channel_count),
        )
