"""Memory substrate: physical address mapping, page allocation, data layout.

Implements the paper's Figure 2 address mappings (cacheline-granularity over
L2 banks, page-granularity over memory channels/ranks/banks), the OS page
allocator modified to preserve cache-bank and channel bits during VA->PA
translation (Section 4.1), and the layout of program arrays onto SNUCA home
banks.
"""

from repro.mem.address import (
    AddressMapping,
    BitField,
    CacheLineInterleaving,
    PageInterleaving,
)
from repro.mem.page_alloc import PageAllocator, TranslationEntry
from repro.mem.layout import ArraySpec, DataLayout
from repro.mem.dram import DramParams, MCDRAM_PARAMS, DDR4_PARAMS

__all__ = [
    "AddressMapping",
    "BitField",
    "CacheLineInterleaving",
    "PageInterleaving",
    "PageAllocator",
    "TranslationEntry",
    "ArraySpec",
    "DataLayout",
    "DramParams",
    "MCDRAM_PARAMS",
    "DDR4_PARAMS",
]
