"""OS page allocator with bit-preserving page coloring (paper Section 4.1).

The compiler infers on-chip data location from *virtual* addresses.  For that
to be sound, the VA->PA translation must not disturb the L2 bank bits or the
memory channel bits.  The paper modifies the OS page-coloring allocator to
preserve those bits; this module models that allocator.

The allocator maintains free lists of physical frames indexed by *color*,
where a frame's color is the tuple of (bank bits within the page-relative
part, channel bits) that the mapping derives from its address.  An allocation
request for a virtual page is served from the free list whose color matches
the virtual address, so ``bank(PA) == bank(VA)`` and ``channel(PA) ==
channel(VA)`` for every translated address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import MappingError
from repro.mem.address import AddressMapping


@dataclass(frozen=True)
class TranslationEntry:
    """One page-table entry: virtual page -> physical frame."""

    virtual_page: int
    physical_frame: int
    color: Tuple[int, ...]


class PageAllocator:
    """Color-preserving physical page allocator.

    ``frame_count`` bounds physical memory; frames are handed out in
    ascending order within each color class, which makes allocation
    deterministic.
    """

    def __init__(self, mapping: AddressMapping, frame_count: int = 1 << 20):
        self.mapping = mapping
        self.frame_count = frame_count
        self._page_table: Dict[int, TranslationEntry] = {}
        self._free: Dict[Tuple[int, ...], List[int]] = {}
        self._scan_cursor = 0

    def color_of_page(self, page_number: int) -> Tuple[int, ...]:
        """Color of a page: (channel bits, the page's L2 bank contribution).

        Preserving the channel bits keeps every address on its virtual
        memory controller; preserving the page's (XOR-linear) bank
        contribution keeps every line of the page in its virtual L2 bank.
        Together these are exactly the bits Section 4.1's modified OS
        allocator promises not to disturb.
        """
        page_size = self.mapping.memory.page_size
        address = page_number * page_size
        return (
            self.mapping.memory.channel_of(address),
            self.mapping.l2.page_bank_contribution(address, page_size),
        )

    def translate_page(self, virtual_page: int) -> TranslationEntry:
        """Allocate (or look up) the frame backing ``virtual_page``."""
        entry = self._page_table.get(virtual_page)
        if entry is not None:
            return entry
        color = self.color_of_page(virtual_page)
        frame = self._take_frame(color)
        entry = TranslationEntry(virtual_page, frame, color)
        self._page_table[virtual_page] = entry
        return entry

    def translate(self, virtual_address: int) -> int:
        """VA -> PA, allocating the backing frame on first touch."""
        page_size = self.mapping.memory.page_size
        page, offset = divmod(virtual_address, page_size)
        entry = self.translate_page(page)
        return entry.physical_frame * page_size + offset

    @property
    def mapped_page_count(self) -> int:
        return len(self._page_table)

    def preserves_location_bits(self, virtual_address: int) -> bool:
        """Check the allocator invariant for one address (used in tests)."""
        physical = self.translate(virtual_address)
        same_bank = self.mapping.l2.bank_of(physical) == self.mapping.l2.bank_of(
            virtual_address
        )
        same_channel = self.mapping.memory.channel_of(
            physical
        ) == self.mapping.memory.channel_of(virtual_address)
        return same_bank and same_channel

    def _take_frame(self, color: Tuple[int, ...]) -> int:
        free = self._free.setdefault(color, [])
        if not free:
            self._refill(color)
            free = self._free[color]
        if not free:
            raise MappingError(f"out of physical frames of color {color}")
        return free.pop()

    def _refill(self, color: Tuple[int, ...], batch: int = 256) -> None:
        """Scan forward through physical frames collecting ones of ``color``.

        Frames of other colors encountered during the scan are banked in
        their own free lists so no frame is ever skipped permanently.
        """
        found = 0
        while self._scan_cursor < self.frame_count and found < batch:
            frame = self._scan_cursor
            self._scan_cursor += 1
            frame_color = self.color_of_page(frame)
            self._free.setdefault(frame_color, []).append(frame)
            if frame_color == color:
                found += 1
        # Pop order should be ascending: lists were appended ascending, and
        # we pop from the end, so reverse to keep determinism simple.
        for frames in self._free.values():
            frames.sort(reverse=True)
