"""Layout of program arrays in the virtual address space.

Workloads declare arrays (:class:`ArraySpec`); the layout assigns each a
page-aligned base virtual address, translates element indices through the
color-preserving :class:`~repro.mem.page_alloc.PageAllocator`, and exposes
the SNUCA home L2 bank and memory channel of every element.  This is the
"data location detection" substrate behind ``GetNode`` (Algorithm 1 line 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import check
from repro.errors import MappingError
from repro.mem.address import AddressMapping
from repro.mem.page_alloc import PageAllocator


@dataclass(frozen=True)
class ArraySpec:
    """A program array: name, element count, element size in bytes.

    ``bank_phase`` pins the L2 bank of the array's first block (the paper's
    OS page-coloring support gives allocation control over the bank bits,
    Section 4.1); None picks a default stagger by declaration order.
    Co-phased arrays put same-index elements on the same/nearby banks — the
    NDP-friendly layout that keeps a statement's MST short.
    """

    name: str
    length: int
    element_size: int = 8
    bank_phase: Optional[int] = None

    @property
    def byte_size(self) -> int:
        return self.length * self.element_size


class DataLayout:
    """Assigns arrays to virtual addresses and resolves element locations."""

    def __init__(self, mapping: Optional[AddressMapping] = None):
        self.mapping = mapping or AddressMapping.default()
        self.allocator = PageAllocator(self.mapping)
        self._arrays: Dict[str, ArraySpec] = {}
        self._bases: Dict[str, int] = {}
        self._cursor = 0  # next free virtual byte, page aligned
        # -- fast-path caches ---------------------------------------------
        # Physical addresses are memoized per element (-1 = not yet
        # translated).  A translation is immutable once made (the page
        # allocator's page table only grows), so entries never invalidate;
        # crucially the *first* touch still goes through the allocator in
        # the caller's order, keeping frame assignment bit-identical to the
        # uncached behaviour.
        self._pa_lists: Dict[str, List[int]] = {}
        # Bank/channel are derived from the *virtual* address: the
        # color-preserving allocator guarantees bank(PA) == bank(VA) and
        # channel(PA) == channel(VA), so these maps never touch the
        # allocator and can be vectorized eagerly per array.
        self._bank_maps: Dict[str, np.ndarray] = {}
        self._bank_lists: Dict[str, List[int]] = {}
        self._channel_maps: Dict[str, np.ndarray] = {}
        self._channel_lists: Dict[str, List[int]] = {}

    # -- declaration ------------------------------------------------------

    def add_array(self, spec: ArraySpec) -> int:
        """Register ``spec`` and return its base virtual address.

        Arrays are laid out back to back with a guard page between them, and
        each base is staggered by a few cache lines past its page boundary.
        The stagger mirrors what real allocators do (metadata headers,
        alignment slack) and matters: with 4KB pages and a virtually-indexed
        L1 whose sets x line == page size, perfectly page-aligned arrays
        would alias every array's element i into the same L1 set and thrash.
        """
        if spec.name in self._arrays:
            raise MappingError(f"array {spec.name!r} declared twice")
        page = self.mapping.memory.page_size
        line = self.mapping.l2.line_size
        ordinal = len(self._arrays)
        if spec.bank_phase is not None:
            phase = spec.bank_phase % self.mapping.l2.bank_count
        else:
            phase = (ordinal * 3 + 1) % max(page // line, 1)
        stagger = phase * line
        base = self._cursor + stagger
        self._arrays[spec.name] = spec
        self._bases[spec.name] = base
        span = ((stagger + spec.byte_size + page - 1) // page + 1) * page
        self._cursor += span
        return base

    def declare(
        self,
        name: str,
        length: int,
        element_size: int = 8,
        bank_phase: Optional[int] = None,
    ) -> int:
        """Convenience wrapper around :meth:`add_array`."""
        return self.add_array(ArraySpec(name, length, element_size, bank_phase))

    def has_array(self, name: str) -> bool:
        return name in self._arrays

    def arrays(self) -> List[ArraySpec]:
        return list(self._arrays.values())

    def spec(self, name: str) -> ArraySpec:
        try:
            return self._arrays[name]
        except KeyError:
            raise MappingError(f"unknown array {name!r}") from None

    # -- address resolution -----------------------------------------------

    def va_of(self, name: str, index: int) -> int:
        """Virtual address of ``name[index]``."""
        spec = self.spec(name)
        if not 0 <= index < spec.length:
            raise MappingError(
                f"index {index} out of bounds for {name!r} (length {spec.length})"
            )
        return self._bases[name] + index * spec.element_size

    def pa_of(self, name: str, index: int) -> int:
        """Physical address of ``name[index]`` (allocates frame on demand)."""
        cache = self._pa_lists.get(name)
        if cache is None:
            cache = [-1] * self.spec(name).length
            self._pa_lists[name] = cache
        if 0 <= index < len(cache):
            pa = cache[index]
            if pa < 0:
                pa = self.allocator.translate(self._bases[name] + index * self._arrays[name].element_size)
                cache[index] = pa
            return pa
        # Out-of-bounds / error path: va_of raises the canonical MappingError.
        return self.allocator.translate(self.va_of(name, index))

    def block_of(self, name: str, index: int) -> int:
        """Cache-block (line) number holding ``name[index]``.

        Computed on the physical address; elements in the same block exhibit
        the spatial locality the paper exploits (Figure 12's D(i)/D(i+1)).
        """
        return self.pa_of(name, index) >> self.mapping.l2.offset_field.width

    def l2_bank_of(self, name: str, index: int) -> int:
        """SNUCA home L2 bank of ``name[index]``."""
        banks = self._bank_lists.get(name)
        if banks is None:
            self.bank_map(name)
            banks = self._bank_lists[name]
        if 0 <= index < len(banks):
            return banks[index]
        return self.mapping.l2.bank_of(self.pa_of(name, index))

    def channel_of(self, name: str, index: int) -> int:
        """Memory channel (controller) owning ``name[index]``'s page."""
        channels = self._channel_lists.get(name)
        if channels is None:
            self.channel_map(name)
            channels = self._channel_lists[name]
        if 0 <= index < len(channels):
            return channels[index]
        return self.mapping.memory.channel_of(self.pa_of(name, index))

    def page_of(self, name: str, index: int) -> int:
        """Physical page number of ``name[index]``."""
        return self.pa_of(name, index) >> self.mapping.memory.offset_field.width

    # -- vectorized per-array maps ------------------------------------------

    def _va_vector(self, name: str) -> np.ndarray:
        spec = self.spec(name)
        base = self._bases[name]
        return base + np.arange(spec.length, dtype=np.int64) * spec.element_size

    def va_map(self, name: str) -> np.ndarray:
        """Virtual address of every element of ``name`` (index order).

        The vectorized :meth:`va_of` without bounds checking; the analytic
        locality model derives lines/regions/banks from these in bulk.
        """
        return self._va_vector(name)

    def bank_map(self, name: str) -> np.ndarray:
        """SNUCA home L2 bank of every element of ``name`` (index order).

        Derived from virtual addresses: the color-preserving page allocator
        (Section 4.1) guarantees the bank bits survive VA->PA translation,
        which is what makes this precomputation sound — verified
        element-for-element against the physical-address path in the tests.
        """
        cached = self._bank_maps.get(name)
        if cached is not None:
            return cached
        l2 = self.mapping.l2
        va = self._va_vector(name)
        blocks = va >> np.int64(l2.offset_field.width)
        if not l2.hash_fold:
            banks = blocks & np.int64((1 << l2.bank_field.width) - 1)
        else:
            width = np.int64(l2.bank_field.width)
            mask = np.int64((1 << l2.bank_field.width) - 1)
            banks = np.zeros_like(blocks)
            remaining = blocks.copy()
            while np.any(remaining):
                banks ^= remaining & mask
                remaining >>= width
        self._bank_maps[name] = banks
        self._bank_lists[name] = banks.tolist()
        if check.enabled():
            # Check mode: the fresh vectorized map must agree with the
            # scalar per-address mapper (VA-only on both sides, so this
            # never touches the page allocator).
            from repro.check.invariants import check_layout_maps

            check_layout_maps(self, name)
        return banks

    def channel_map(self, name: str) -> np.ndarray:
        """Memory channel of every element of ``name`` (index order)."""
        cached = self._channel_maps.get(name)
        if cached is not None:
            return cached
        memory = self.mapping.memory
        va = self._va_vector(name)
        channels = (va >> np.int64(memory.channel_field.low)) & np.int64(
            (1 << memory.channel_field.width) - 1
        )
        self._channel_maps[name] = channels
        self._channel_lists[name] = channels.tolist()
        if check.enabled():
            from repro.check.invariants import check_layout_maps

            check_layout_maps(self, name)
        return channels

    def same_block(self, a_name: str, a_index: int, b_name: str, b_index: int) -> bool:
        """True when the two elements share a cache block."""
        return self.block_of(a_name, a_index) == self.block_of(b_name, b_index)

    def total_bytes(self) -> int:
        """Sum of declared array footprints."""
        return sum(spec.byte_size for spec in self._arrays.values())
