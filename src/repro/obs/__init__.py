"""Observability layer: structured tracing, link heatmaps, compile reports.

Three zero-dependency pieces (DESIGN.md Section 8):

- :mod:`repro.obs.tracer` — JSONL span/point tracing of the compile
  pipeline and the simulator.  Off by default; the module-global no-op
  tracer keeps the cost of disabled tracing to one attribute check at
  each instrumentation site.
- :mod:`repro.obs.schema` — the versioned ``report.json`` schema and a
  dependency-free validator (also runnable: ``python -m repro.obs.schema``).
- :mod:`repro.obs.report` — :func:`build_report` runs one app end to end
  and produces a schema-valid report dict; the CLI front-end is
  ``python -m repro.cli report <app>``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    read_events,
    set_tracer,
    strip_wall_times,
    tracing,
)

# repro.obs.report pulls in the whole pipeline (partitioner, simulator,
# baselines), whose modules themselves import repro.obs.tracer — importing
# it at package-init time would be circular.  Only the tracer (a leaf
# module) loads eagerly; report and schema symbols resolve on first access
# (schema stays lazy so ``python -m repro.obs.schema`` runs warning-free).
_LAZY = {
    "build_report": "report",
    "heatmap_of": "report",
    "summary_lines": "report",
    "write_report": "report",
    "REPORT_KIND": "schema",
    "REPORT_SCHEMA_VERSION": "schema",
    "assert_valid": "schema",
    "validate_report": "schema",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.obs.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "REPORT_KIND",
    "REPORT_SCHEMA_VERSION",
    "Tracer",
    "assert_valid",
    "build_report",
    "get_tracer",
    "heatmap_of",
    "read_events",
    "set_tracer",
    "strip_wall_times",
    "summary_lines",
    "tracing",
    "validate_report",
    "write_report",
]
