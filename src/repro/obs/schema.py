"""The versioned, machine-readable ``report.json`` schema.

``repro.cli report <app>`` (and :func:`repro.obs.report.build_report`)
emit one JSON document per application run.  This module is the schema's
single source of truth: the structure below is what consumers (CI checks,
regression dashboards, the golden-file tests) may rely on, and
:func:`validate_report` checks a document against it with no third-party
dependencies.  Bump :data:`REPORT_SCHEMA_VERSION` on any breaking change
and keep the old fields readable for one version.

Schema (version 4)::

    {
      "schema_version": 4,
      "kind": "repro.report",
      "app": "ocean", "scale": 1, "seed": 0,
      "machine": {
        # example values: the paper's 6x6 mesh; any cols/rows >= 2 are
        # valid (repro.arch.knl.mesh_machine) and node_count = cols*rows
        "mesh_cols": 6, "mesh_rows": 6, "node_count": 36,
        "l1_capacity": 8192, "l2_bank_count": 32,
        "cluster_mode": "quadrant", "memory_mode": "flat"
      },
      "plan": {
        "variant_by_nest":  {"<nest>": "star|profile|split|override"},
        "window_sizes":     {"<nest>": 3},
        "split_plan":       [{"nest": "...", "body_index": 0, "split": true}],
        "movement_by_size": {"<nest>": {"1": 512, "2": 498, ...}},
        "predicted_movement": 1234,
        "predictor_accuracy": 0.87            # or null
      },
      "default":   { ...SimMetrics.to_dict()... },
      "optimized": { ...SimMetrics.to_dict()... },
      "deltas": {
        "movement_reduction": 0.31,   # fractional, Fig 13's quantity
        "time_reduction": 0.67,       # Fig 17's quantity
        "l1_improvement": -0.02,      # absolute hit-rate delta, Fig 16
        "energy_reduction": 0.25,     # Fig 24's quantity
        "sync_delta": -120            # optimized - default sync count
      },
      "link_heatmap": {                        # optimized run's NoC load
        "mesh": {"cols": 6, "rows": 6},
        "links": [{"src": 0, "dst": 1, "flits": 42}, ...],
        "total_flit_hops": 1234        # == optimized.data_movement
      },
      "phase_seconds": {"build": ..., "partition": ...,
                        "simulate_default": ..., "simulate_optimized": ...},
      "pipeline": {                    # v3: the compile pipeline's identity
        "pass_order":     ["profile", "predict", "inspect", "split",
                           "schedule", "balance", "sync_minimize"],
        "skipped_passes": [],          # e.g. ["balance"] under --skip-pass
        "pass_seconds":   {"profile": 0.01, "schedule": 1.73, ...},
        "machine": { ...CompilationSession.to_json()["machine"]... },
        "config":  { ...headline PartitionConfig/WindowConfig knobs... },
        "faults_fingerprint": null,    # or the plan's fingerprint string
        "check": false
      },
      "execution": {                   # v4: which backend executed the run
        "backend": "sim"               # the default; nothing else to say —
                                       # default/optimized ARE its numbers
        # runtime backend adds its scheduler observations:
        # "workers": 1, "seed": 0, "tasks_executed": 7680,
        # "observed_movement": 44787,  # flit-hops the runtime itself charged
        # "forecast_movement": 44787,  # the simulator's DataMovement
        # "agreement": 0.0,            # |observed-forecast|/forecast
        # "sync_count": 2485, "sync_violations": 0, "wall_seconds": 0.41
      },
      "trace_file": "/tmp/t.jsonl",    # or null
      "faults": null                   # healthy run; object on degraded runs:
      # {
      #   "plan":        { ...FaultPlan.to_json()... },
      #   "fingerprint": "15ab0fd389c331c0",
      #   "dead_nodes":  [9],                  # every node the plan kills
      #   "dead_links":  [[5, 6], [5, 9]],     # undirected, sorted pairs
      #   "fault_events":      0,              # mid-run activations (optimized)
      #   "relocations":       0,              # units moved off dead tiles
      #   "detour_extra_hops": 16,             # flit-hops beyond Manhattan
      #   "degraded_vs_healthy": {             # optimized run, plan vs no plan
      #     "healthy_movement": 1183, "degraded_movement": 1215,
      #     "healthy_cycles": ...,    "degraded_cycles": ...,
      #     "movement_overhead": 0.027,        # fractional increase
      #     "time_overhead": 0.031
      #   }
      # }
    }

Invariants (checked by :func:`validate_report` beyond field types):

* ``link_heatmap.total_flit_hops`` equals the sum of the per-link flit
  volumes **and** equals ``optimized.data_movement`` — the heatmap is an
  exact decomposition of the paper's headline metric onto mesh links
  (under a fault plan the decomposition includes detour hops, so the
  identity holds on degraded runs too);
* every link's endpoints are valid, distinct, mesh-adjacent node ids;
* when ``faults`` is non-null, its ``dead_nodes``/``dead_links`` ids are
  in range and the ``degraded_vs_healthy`` comparison is numerically
  consistent with its own healthy/degraded operands.

Version history: v1 had no ``faults`` field; v2 added it; v3 added the
``pipeline`` section (pass order, skipped passes, per-pass wall times,
session identity); v4 added the ``execution`` section (which backend
executed the run, and the runtime backend's observed-vs-forecast
movement agreement).  v1 through v3 documents still validate — each
section is required only from the version that introduced it.

Validate from the command line (exit code 0 = valid)::

    python -m repro.obs.schema report.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

REPORT_SCHEMA_VERSION = 4
REPORT_KIND = "repro.report"

#: schema versions validate_report still accepts
#: (v1 = pre-faults, v2 = pre-pipeline, v3 = pre-execution).
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: backend names an ``execution`` section may carry.
EXECUTION_BACKENDS = ("sim", "runtime")

#: field name -> required python type(s), for the flat top-level checks.
_TOP_LEVEL: Dict[str, Any] = {
    "schema_version": int,
    "kind": str,
    "app": str,
    "scale": int,
    "seed": int,
    "machine": dict,
    "plan": dict,
    "default": dict,
    "optimized": dict,
    "deltas": dict,
    "link_heatmap": dict,
    "phase_seconds": dict,
}

_MACHINE_FIELDS = {
    "mesh_cols": int,
    "mesh_rows": int,
    "node_count": int,
    "l1_capacity": int,
    "l2_bank_count": int,
    "cluster_mode": str,
    "memory_mode": str,
}

_PLAN_FIELDS = {
    "variant_by_nest": dict,
    "window_sizes": dict,
    "split_plan": list,
    "movement_by_size": dict,
    "predicted_movement": int,
}

_DELTA_FIELDS = (
    "movement_reduction",
    "time_reduction",
    "l1_improvement",
    "energy_reduction",
    "sync_delta",
)

_METRIC_FIELDS = (
    "total_cycles",
    "data_movement",
    "l1_hit_rate",
    "l2_hit_rate",
    "sync_count",
    "energy_pj",
)

_PHASES = ("build", "partition", "simulate_default", "simulate_optimized")

#: required fields of a non-null top-level ``faults`` object.
_FAULT_FIELDS: Dict[str, Any] = {
    "plan": dict,
    "fingerprint": str,
    "dead_nodes": list,
    "dead_links": list,
    "fault_events": int,
    "relocations": int,
    "detour_extra_hops": int,
    "degraded_vs_healthy": dict,
}

_FAULT_COMPARISON_FIELDS = (
    "healthy_movement",
    "degraded_movement",
    "healthy_cycles",
    "degraded_cycles",
    "movement_overhead",
    "time_overhead",
)

#: required fields of the ``pipeline`` section (v3+).
_PIPELINE_FIELDS: Dict[str, Any] = {
    "pass_order": list,
    "skipped_passes": list,
    "pass_seconds": dict,
    "machine": dict,
    "config": dict,
}

#: required fields of the ``execution`` section (v4+) when the backend
#: is the task runtime; a sim execution carries only the backend name.
_RUNTIME_EXECUTION_FIELDS: Dict[str, Any] = {
    "workers": int,
    "tasks_executed": int,
    "observed_movement": int,
    "forecast_movement": int,
    "sync_count": int,
    "sync_violations": int,
}


def _check_fields(
    obj: Dict[str, Any], spec: Dict[str, Any], where: str, errors: List[str]
) -> None:
    for name, kind in spec.items():
        if name not in obj:
            errors.append(f"{where}: missing field {name!r}")
        elif not isinstance(obj[name], kind) or isinstance(obj[name], bool):
            errors.append(
                f"{where}.{name}: expected {kind.__name__}, "
                f"got {type(obj[name]).__name__}"
            )


def validate_report(report: Any) -> List[str]:
    """Check ``report`` against the schema; returns error strings.

    An empty list means the document is valid.  Checks structure, field
    types, and the cross-field invariants documented in the module
    docstring (heatmap sums, link endpoint sanity, fault-section
    consistency).  Accepts every version in
    :data:`SUPPORTED_SCHEMA_VERSIONS`; the ``faults`` field is required
    (though nullable) only from version 2 on.
    """
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"report: expected a JSON object, got {type(report).__name__}"]
    _check_fields(report, _TOP_LEVEL, "report", errors)
    if errors:
        return errors

    if report["schema_version"] not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            f"report.schema_version: expected one of "
            f"{SUPPORTED_SCHEMA_VERSIONS}, got {report['schema_version']!r}"
        )
    if report["kind"] != REPORT_KIND:
        errors.append(f"report.kind: expected {REPORT_KIND!r}")

    _check_fields(report["machine"], _MACHINE_FIELDS, "machine", errors)
    _check_fields(report["plan"], _PLAN_FIELDS, "plan", errors)

    for entry in report["plan"].get("split_plan", []):
        if not isinstance(entry, dict) or not (
            isinstance(entry.get("nest"), str)
            and isinstance(entry.get("body_index"), int)
            and isinstance(entry.get("split"), bool)
        ):
            errors.append(f"plan.split_plan: malformed entry {entry!r}")

    for side in ("default", "optimized"):
        metrics = report[side]
        for name in _METRIC_FIELDS:
            if name not in metrics:
                errors.append(f"{side}: missing metric {name!r}")
            elif not isinstance(metrics[name], (int, float)):
                errors.append(f"{side}.{name}: expected a number")

    for name in _DELTA_FIELDS:
        if name not in report["deltas"]:
            errors.append(f"deltas: missing field {name!r}")
        elif not isinstance(report["deltas"][name], (int, float)):
            errors.append(f"deltas.{name}: expected a number")

    for name in _PHASES:
        if name not in report["phase_seconds"]:
            errors.append(f"phase_seconds: missing phase {name!r}")
        elif not isinstance(report["phase_seconds"][name], (int, float)):
            errors.append(f"phase_seconds.{name}: expected a number")

    errors.extend(_validate_heatmap(report))

    if report.get("schema_version") != 1:
        if "faults" not in report:
            errors.append("report: missing field 'faults' (nullable from v2)")
        elif report["faults"] is not None:
            errors.extend(_validate_faults(report))

    if report.get("schema_version") not in (1, 2):
        if "pipeline" not in report:
            errors.append("report: missing field 'pipeline' (required from v3)")
        else:
            errors.extend(_validate_pipeline(report["pipeline"]))

    if report.get("schema_version") not in (1, 2, 3):
        if "execution" not in report:
            errors.append(
                "report: missing field 'execution' (required from v4)"
            )
        else:
            errors.extend(_validate_execution(report["execution"]))
    return errors


def _validate_execution(execution: Any) -> List[str]:
    """Structural checks of the v4 ``execution`` section."""
    errors: List[str] = []
    if not isinstance(execution, dict):
        return ["execution: expected an object"]
    backend = execution.get("backend")
    if backend not in EXECUTION_BACKENDS:
        errors.append(
            f"execution.backend: expected one of {EXECUTION_BACKENDS}, "
            f"got {backend!r}"
        )
        return errors
    if backend == "sim":
        # The sim execution *is* the default/optimized metrics; the
        # section only records that the default path produced them.
        return errors
    _check_fields(execution, _RUNTIME_EXECUTION_FIELDS, "execution", errors)
    if errors:
        return errors
    seed = execution.get("seed")
    if seed is not None and not isinstance(seed, int):
        errors.append("execution.seed: expected an int or null")
    for name in ("agreement", "wall_seconds"):
        if name in execution and not isinstance(
            execution[name], (int, float)
        ):
            errors.append(f"execution.{name}: expected a number")
    forecast = execution["forecast_movement"]
    observed = execution["observed_movement"]
    agreement = execution.get("agreement")
    if isinstance(agreement, (int, float)) and forecast > 0:
        expected = abs(observed - forecast) / forecast
        if abs(agreement - expected) > 1e-6:
            errors.append(
                f"execution.agreement {agreement} inconsistent with "
                f"movement operands ({observed} vs {forecast})"
            )
    return errors


def _validate_pipeline(pipeline: Any) -> List[str]:
    """Structural checks of the v3 ``pipeline`` section."""
    errors: List[str] = []
    if not isinstance(pipeline, dict):
        return ["pipeline: expected an object"]
    _check_fields(pipeline, _PIPELINE_FIELDS, "pipeline", errors)
    if errors:
        return errors
    for field in ("pass_order", "skipped_passes"):
        if not all(isinstance(name, str) for name in pipeline[field]):
            errors.append(f"pipeline.{field}: expected a list of pass names")
    order = pipeline["pass_order"]
    if len(set(order)) != len(order):
        errors.append(f"pipeline.pass_order: duplicate pass name in {order}")
    for name, seconds in pipeline["pass_seconds"].items():
        if not isinstance(name, str) or not isinstance(seconds, (int, float)):
            errors.append(
                f"pipeline.pass_seconds: malformed entry {name!r}: {seconds!r}"
            )
    if not isinstance(pipeline.get("check"), bool):
        errors.append("pipeline.check: expected a boolean")
    fingerprint = pipeline.get("faults_fingerprint")
    if fingerprint is not None and not isinstance(fingerprint, str):
        errors.append("pipeline.faults_fingerprint: expected a string or null")
    return errors


def _validate_faults(report: Dict[str, Any]) -> List[str]:
    """Structural + consistency checks of a non-null ``faults`` section."""
    errors: List[str] = []
    faults = report["faults"]
    if not isinstance(faults, dict):
        return ["faults: expected an object or null"]
    _check_fields(faults, _FAULT_FIELDS, "faults", errors)
    if errors:
        return errors

    machine = report["machine"]
    node_count = machine.get("mesh_cols", 0) * machine.get("mesh_rows", 0)
    for node in faults["dead_nodes"]:
        if not isinstance(node, int) or not 0 <= node < node_count:
            errors.append(f"faults.dead_nodes: bad node id {node!r}")
    for link in faults["dead_links"]:
        if (
            not isinstance(link, list)
            or len(link) != 2
            or not all(isinstance(n, int) for n in link)
            or not all(0 <= n < node_count for n in link)
        ):
            errors.append(f"faults.dead_links: malformed link {link!r}")

    comparison = faults["degraded_vs_healthy"]
    for name in _FAULT_COMPARISON_FIELDS:
        if name not in comparison:
            errors.append(f"faults.degraded_vs_healthy: missing {name!r}")
        elif not isinstance(comparison[name], (int, float)):
            errors.append(
                f"faults.degraded_vs_healthy.{name}: expected a number"
            )
    if not errors:
        healthy = comparison["healthy_movement"]
        degraded = comparison["degraded_movement"]
        if healthy > 0:
            expected = (degraded - healthy) / healthy
            if abs(comparison["movement_overhead"] - expected) > 1e-6:
                errors.append(
                    "faults.degraded_vs_healthy: movement_overhead "
                    f"{comparison['movement_overhead']} inconsistent with "
                    f"movement operands ({healthy} -> {degraded})"
                )
        degraded_movement = report["optimized"].get("data_movement")
        if isinstance(degraded_movement, (int, float)) and (
            degraded != degraded_movement
        ):
            errors.append(
                f"faults.degraded_vs_healthy: degraded_movement {degraded} "
                f"!= optimized.data_movement {degraded_movement}"
            )
    return errors


def _validate_heatmap(report: Dict[str, Any]) -> List[str]:
    """The heatmap's structural and accounting invariants."""
    errors: List[str] = []
    heatmap = report["link_heatmap"]
    mesh = heatmap.get("mesh")
    if not isinstance(mesh, dict) or not (
        isinstance(mesh.get("cols"), int) and isinstance(mesh.get("rows"), int)
    ):
        return ["link_heatmap.mesh: expected {cols: int, rows: int}"]
    links = heatmap.get("links")
    if not isinstance(links, list):
        return ["link_heatmap.links: expected a list"]
    node_count = mesh["cols"] * mesh["rows"]
    total = 0
    for link in links:
        if not isinstance(link, dict) or not all(
            isinstance(link.get(k), int) for k in ("src", "dst", "flits")
        ):
            errors.append(f"link_heatmap.links: malformed link {link!r}")
            continue
        src, dst = link["src"], link["dst"]
        if not (0 <= src < node_count and 0 <= dst < node_count) or src == dst:
            errors.append(f"link_heatmap.links: bad endpoints {src}->{dst}")
        else:
            sx, sy = src % mesh["cols"], src // mesh["cols"]
            dx, dy = dst % mesh["cols"], dst // mesh["cols"]
            if abs(sx - dx) + abs(sy - dy) != 1:
                errors.append(
                    f"link_heatmap.links: {src}->{dst} is not a mesh link"
                )
        total += link["flits"]
    declared = heatmap.get("total_flit_hops")
    if not isinstance(declared, int):
        errors.append("link_heatmap.total_flit_hops: expected an int")
    else:
        if declared != total:
            errors.append(
                f"link_heatmap: link volumes sum to {total}, "
                f"declared total is {declared}"
            )
        movement = report["optimized"].get("data_movement")
        if isinstance(movement, (int, float)) and declared != movement:
            errors.append(
                f"link_heatmap: total {declared} != optimized data "
                f"movement {movement} — the heatmap must decompose it"
            )
    return errors


def assert_valid(report: Any) -> None:
    """Raise ``ValueError`` listing every schema violation (if any)."""
    errors = validate_report(report)
    if errors:
        raise ValueError("invalid report.json:\n  " + "\n  ".join(errors))


def main(argv: List[str] = None) -> int:
    """CLI: validate report files; prints errors, exits non-zero on any."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.schema report.json [...]")
        return 2
    status = 0
    for path in paths:
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        errors = validate_report(report)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"{path}: ok (schema v{report['schema_version']})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
