"""Build the machine-readable ``report.json`` for one application run.

:func:`build_report` runs the full default-vs-optimized pipeline for one
app on the evaluation machine and assembles a single JSON document — the
chosen plan per nest, window sizes, movement/time/L1/energy deltas versus
the default placement, the optimized run's per-link NoC heatmap, and
per-phase wall times — validated against :mod:`repro.obs.schema` before
being returned.  This is the introspection companion to the figure suite:
every headline number in EXPERIMENTS.md can be decomposed by reading the
report of the app that produced it.

Typical entry points::

    python -m repro.cli report ocean --trace /tmp/t.jsonl   # CLI
    make report APP=ocean                                   # Makefile

    from repro.obs.report import build_report               # API
    report = build_report("ocean")

The special app name ``"tiny"`` runs the sub-second built-in synthetic
app on the 4x4 test machine (the same one ``make bench-smoke`` uses), so
schema checks and smoke tests do not pay for a full workload.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.machine import Machine
from repro.baselines.default_placement import DefaultPlacement
from repro.core.partitioner import NdpPartitioner, PartitionConfig, PartitionResult
from repro.faults import FaultPlan
from repro.ir.program import Program
from repro.noc.network import LinkStats
from repro.obs.schema import REPORT_KIND, REPORT_SCHEMA_VERSION, assert_valid
from repro.obs.tracer import tracing
from repro.sim.engine import SimConfig, Simulator
from repro.sim.metrics import SimMetrics

#: Name accepted by :func:`build_report` for the built-in synthetic app.
TINY_APP = "tiny"


def _factories(
    app: str, scale: int, seed: int
) -> Tuple[Callable[[], Machine], Callable[[], Program]]:
    """(machine_factory, program_factory) for ``app``.

    Real workloads run on the scaled evaluation machine
    (:func:`repro.experiments.common.paper_machine`); ``"tiny"`` runs the
    perf harness's built-in two-statement app on the small test machine.
    """
    if app == TINY_APP:
        from repro.arch.knl import small_machine
        from repro.benchmarks.perf import tiny_app

        return small_machine, tiny_app
    from repro.experiments.common import paper_machine
    from repro.workloads import build_workload

    return paper_machine, lambda: build_workload(app, scale, seed)


def _machine_info(machine: Machine) -> Dict:
    """The report's ``machine`` object."""
    config = machine.config
    return {
        "mesh_cols": config.mesh_cols,
        "mesh_rows": config.mesh_rows,
        "node_count": machine.mesh.node_count,
        "l1_capacity": config.l1_capacity,
        "l2_bank_count": config.l2_bank_count,
        "cluster_mode": config.cluster_mode.name.lower(),
        "memory_mode": config.memory_mode.name.lower(),
    }


def _plan_info(partition: PartitionResult) -> Dict:
    """The report's ``plan`` object (what the compiler chose and why)."""
    split_plan = [
        {"nest": nest, "body_index": body_index, "split": bool(split)}
        for (nest, body_index), split in sorted(partition.split_plan.items())
    ]
    movement_by_size = {
        nest: {str(size): movement for size, movement in sorted(sizes.items())}
        for nest, sizes in sorted(partition.movement_by_size.items())
    }
    accuracy = partition.predictor_accuracy
    return {
        "variant_by_nest": dict(sorted(partition.variant_by_nest.items())),
        "window_sizes": dict(sorted(partition.window_sizes.items())),
        "split_plan": split_plan,
        "movement_by_size": movement_by_size,
        "predicted_movement": partition.movement,
        "predictor_accuracy": (
            None if accuracy is None else round(accuracy, 6)
        ),
    }


def _deltas(default: SimMetrics, optimized: SimMetrics) -> Dict:
    """Headline default-vs-optimized deltas (the figures' quantities)."""
    def reduction(base: float, new: float) -> float:
        return 0.0 if base <= 0 else (base - new) / base

    return {
        "movement_reduction": reduction(
            default.data_movement, optimized.data_movement
        ),
        "time_reduction": reduction(default.total_cycles, optimized.total_cycles),
        "l1_improvement": optimized.l1_hit_rate() - default.l1_hit_rate(),
        "energy_reduction": reduction(default.energy_pj, optimized.energy_pj),
        "sync_delta": optimized.sync_count - default.sync_count,
    }


def _timed(fn: Callable):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def build_report(
    app: str,
    scale: int = 1,
    seed: int = 0,
    trace_file: Optional[str] = None,
    debug_trace: bool = False,
    partition_config: Optional[PartitionConfig] = None,
    faults: Optional[FaultPlan] = None,
    skip_passes: Tuple[str, ...] = (),
    pass_order: Optional[Tuple[str, ...]] = None,
    backend: str = "sim",
    backend_options: Optional[Dict] = None,
) -> Dict:
    """Run ``app`` end to end and return its schema-valid report dict.

    Args:
        app: a workload name (``repro.cli list``) or ``"tiny"``.
        scale / seed: workload generation parameters (as everywhere else).
        trace_file: when given, the whole run is traced to this JSONL file
            and the path is recorded in the report's ``trace_file`` field.
        debug_trace: also emit per-instance firehose events (large files).
        partition_config: override the default :class:`PartitionConfig`.
        faults: a :class:`~repro.faults.FaultPlan` to apply to every
            machine before placement/partitioning.  A non-empty plan adds
            an extra *healthy* optimized run (phase ``simulate_healthy``)
            and fills the report's ``faults`` section with the plan and
            the degraded-vs-healthy overheads; an empty (or absent) plan
            leaves the pipeline untouched and ``faults`` null.
        skip_passes / pass_order: the pipeline shape (``--skip-pass`` /
            pass reordering); unknown names raise
            :class:`~repro.errors.ConfigurationError` before any work.
            The shape, per-pass wall times, and session identity land in
            the report's ``pipeline`` section (schema v3).
        backend: execution backend for the report's ``execution``
            section (schema v4).  ``"sim"`` (default) records only the
            backend name — the default/optimized metrics *are* the sim
            execution, byte-identical to pre-v4 reports apart from the
            section itself.  ``"runtime"`` additionally executes the
            optimized schedule on the Parla-style task runtime (phase
            ``execute_runtime``) and records the observed-vs-forecast
            movement agreement.
        backend_options: kwargs for
            :func:`repro.exec.backend.get_backend` (``workers``,
            ``seed``); only meaningful with ``backend="runtime"``.

    The returned dict is validated against :mod:`repro.obs.schema` before
    being returned, so downstream consumers never see a malformed report.
    """
    if faults is not None and faults.is_empty:
        faults = None
    if trace_file is not None:
        with tracing(trace_file, debug=debug_trace):
            return _build(
                app, scale, seed, trace_file, partition_config, faults,
                skip_passes, pass_order, backend, backend_options,
            )
    return _build(
        app, scale, seed, None, partition_config, faults, skip_passes,
        pass_order, backend, backend_options,
    )


def _build(
    app: str,
    scale: int,
    seed: int,
    trace_file: Optional[str],
    partition_config: Optional[PartitionConfig],
    faults: Optional[FaultPlan],
    skip_passes: Tuple[str, ...] = (),
    pass_order: Optional[Tuple[str, ...]] = None,
    backend: str = "sim",
    backend_options: Optional[Dict] = None,
) -> Dict:
    from repro.pipeline.session import session_for

    machine_factory, program_factory = _factories(app, scale, seed)
    phases: Dict[str, float] = {}

    program, phases["build"] = _timed(program_factory)

    def make_machine(apply_plan: bool = True) -> Machine:
        machine = machine_factory()
        if apply_plan and faults is not None:
            machine.apply_faults(faults)
        return machine

    def make_session(machine: Machine, plan: Optional[FaultPlan]):
        # The session owns fault application (machines arrive healthy here).
        return session_for(
            machine,
            config=partition_config or PartitionConfig(),
            faults=plan,
            skip_passes=skip_passes,
            pass_order=pass_order,
        )

    # Default placement: its own machine, as in the experiment harness.
    default_machine = make_machine()
    default_program = program_factory()
    placement = DefaultPlacement(default_machine).place(default_program)
    default_metrics, phases["simulate_default"] = _timed(
        lambda: Simulator(default_machine, SimConfig()).run(placement.units)
    )

    session = make_session(make_machine(apply_plan=False), faults)
    optimized_machine = session.machine
    partitioner = NdpPartitioner.from_session(session)
    partition, phases["partition"] = _timed(lambda: partitioner.partition(program))
    optimized_machine.mcdram.reset()
    optimized_metrics, phases["simulate_optimized"] = _timed(
        lambda: Simulator(optimized_machine, SimConfig()).run(partition.units())
    )

    faults_section = None
    if faults is not None:
        # Degraded-vs-healthy baseline: the same optimized pipeline on an
        # unfaulted machine, so the overhead numbers isolate the plan.
        def healthy_run() -> SimMetrics:
            healthy_session = make_session(make_machine(apply_plan=False), None)
            machine = healthy_session.machine
            healthy_partition = NdpPartitioner.from_session(
                healthy_session
            ).partition(program)
            machine.mcdram.reset()
            return Simulator(machine, SimConfig()).run(healthy_partition.units())

        healthy_metrics, phases["simulate_healthy"] = _timed(healthy_run)
        faults_section = _faults_info(faults, optimized_metrics, healthy_metrics)

    # The execution section (schema v4): the sim backend's execution is
    # the optimized metrics themselves, so it records only the backend
    # name; the runtime backend actually executes the schedule on host
    # threads and records what it observed against the sim forecast.
    execution_section: Dict = {"backend": "sim"}
    if backend != "sim":
        from repro.exec.backend import get_backend
        from repro.exec.runtime import movement_agreement

        exec_backend = get_backend(backend, **(backend_options or {}))

        def runtime_run():
            optimized_machine.mcdram.reset()
            return exec_backend.run(optimized_machine, partition.units())

        execution, phases[f"execute_{backend}"] = _timed(runtime_run)
        execution_section = execution.to_json()
        execution_section["forecast_movement"] = optimized_metrics.data_movement
        execution_section["agreement"] = round(
            movement_agreement(
                execution.data_movement, optimized_metrics.data_movement
            ),
            6,
        )

    heatmap = LinkStats.from_link_flits(
        optimized_machine.mesh.cols,
        optimized_machine.mesh.rows,
        optimized_metrics.link_flits,
    )
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "app": app,
        "scale": scale,
        "seed": seed,
        "machine": _machine_info(optimized_machine),
        "plan": _plan_info(partition),
        "default": default_metrics.to_dict(),
        "optimized": optimized_metrics.to_dict(),
        "deltas": _deltas(default_metrics, optimized_metrics),
        "link_heatmap": heatmap.to_json(),
        "phase_seconds": {
            name: round(seconds, 6) for name, seconds in phases.items()
        },
        "pipeline": {
            **session.to_json(),
            "pass_seconds": session.pass_seconds(),
        },
        "execution": execution_section,
        "trace_file": trace_file,
        "faults": faults_section,
    }
    assert_valid(report)
    return report


def _faults_info(
    plan: FaultPlan, degraded: SimMetrics, healthy: SimMetrics
) -> Dict:
    """The report's ``faults`` object (plan + degradation accounting)."""
    def overhead(base: float, new: float) -> float:
        return 0.0 if base <= 0 else (new - base) / base

    dead_links = sorted(
        {tuple(sorted((fault.src, fault.dst))) for fault in plan.links}
    )
    return {
        "plan": plan.to_json(),
        "fingerprint": plan.fingerprint(),
        "dead_nodes": sorted(plan.all_dead_nodes()),
        "dead_links": [list(link) for link in dead_links],
        "fault_events": degraded.fault_events,
        "relocations": degraded.fault_relocations,
        "detour_extra_hops": degraded.detour_extra_hops,
        "degraded_vs_healthy": {
            "healthy_movement": healthy.data_movement,
            "degraded_movement": degraded.data_movement,
            "healthy_cycles": healthy.total_cycles,
            "degraded_cycles": degraded.total_cycles,
            "movement_overhead": overhead(
                healthy.data_movement, degraded.data_movement
            ),
            "time_overhead": overhead(
                healthy.total_cycles, degraded.total_cycles
            ),
        },
    }


def write_report(report: Dict, path: str) -> None:
    """Serialize ``report`` to ``path`` (stable key order, one trailing NL)."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def heatmap_of(report: Dict) -> LinkStats:
    """Rebuild a :class:`LinkStats` from a report's ``link_heatmap``."""
    heatmap = report["link_heatmap"]
    flits = {
        (link["src"], link["dst"]): link["flits"] for link in heatmap["links"]
    }
    return LinkStats.from_link_flits(
        heatmap["mesh"]["cols"], heatmap["mesh"]["rows"], flits
    )


def summary_lines(report: Dict) -> List[str]:
    """Human-readable digest of a report (printed by ``repro.cli report``)."""
    deltas = report["deltas"]
    plan = report["plan"]
    lines = [
        f"app: {report['app']}  (scale={report['scale']} seed={report['seed']})",
        f"movement reduction : {deltas['movement_reduction']:+.1%}",
        f"time reduction     : {deltas['time_reduction']:+.1%}",
        f"L1 improvement     : {deltas['l1_improvement']:+.3f}",
        f"energy reduction   : {deltas['energy_reduction']:+.1%}",
        f"plan variants      : {plan['variant_by_nest']}",
        f"window sizes       : {plan['window_sizes']}",
        "phase seconds      : "
        + "  ".join(
            f"{name}={seconds:.2f}"
            for name, seconds in report["phase_seconds"].items()
        ),
    ]
    execution = report.get("execution")
    if execution is not None and execution.get("backend") != "sim":
        lines.append(
            f"execution          : backend={execution['backend']} "
            f"workers={execution['workers']} "
            f"observed={execution['observed_movement']} "
            f"forecast={execution['forecast_movement']} "
            f"agreement={execution['agreement']:.4f} "
            f"violations={execution['sync_violations']}"
        )
    faults = report.get("faults")
    if faults is not None:
        comparison = faults["degraded_vs_healthy"]
        lines += [
            f"fault plan         : {faults['fingerprint']}  "
            f"dead_nodes={faults['dead_nodes']} "
            f"dead_links={faults['dead_links']}",
            f"degradation        : movement "
            f"{comparison['movement_overhead']:+.1%}  time "
            f"{comparison['time_overhead']:+.1%}  "
            f"detour_hops={faults['detour_extra_hops']}  "
            f"relocations={faults['relocations']}",
        ]
    return lines
