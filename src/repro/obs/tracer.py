"""Structured JSONL tracing for the compile and simulate pipeline.

The pipeline is instrumented with *spans* (begin/end pairs wrapping a
phase: partitioning, predictor training, a nest's gate, one simulation)
and *points* (single events carrying counters: a window-size candidate's
predicted movement, a gate verdict, a simulator epoch snapshot).  Each
event is one JSON object per line:

    {"ev": "B", "name": "compile", "seq": 0, "t": 0.000012, "data": {...}}
    {"ev": "P", "name": "window.candidate", "seq": 7, "t": ..., "data": {"size": 3, "movement": 412}}
    {"ev": "E", "name": "compile", "seq": 31, "t": ..., "dur": 4.2, "data": {...}}

* ``ev``    — "B" (span begin), "E" (span end), "P" (point).
* ``seq``   — a per-tracer monotonic counter; consumers reconstruct span
  nesting from B/E order, so the stream needs no explicit parent ids.
* ``t``     — wall-clock seconds since the tracer was created; ``dur`` is
  the span's wall duration.  These are the *only* nondeterministic fields:
  two runs with the same seed produce identical streams once ``t``/``dur``
  are stripped (regression-tested by ``tests/test_obs_tracer.py``).
* ``data``  — JSON-safe payload (ints, floats, strings, small dicts).

Tracing is **off by default** and free when off: the module-level tracer
is :data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled``
attribute is ``False`` so hot paths can skip payload construction with a
single attribute check.  Enabling tracing never changes simulation or
compilation results — the tracer only *reads* counters (the figure/table
equivalence is regression-tested).

Usage::

    from repro.obs import tracing

    with tracing("/tmp/run.jsonl"):
        NdpPartitioner(machine).partition(program)

or install a tracer explicitly with :func:`set_tracer` / restore with the
value it returns.  Per-instance firehose events (every statement split,
every load-balancer veto) are additionally gated behind ``debug=True``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, IO, Iterator, List, Optional, Union


class _NullSpan:
    """Reusable no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def add(self, **_payload) -> None:
        """Ignore end-payload additions (tracing is off)."""

    def end(self) -> None:
        """No-op explicit close."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default, disabled tracer: every operation is a no-op.

    ``enabled`` and ``debug`` are both ``False`` so instrumentation sites
    can guard payload construction with one attribute read — the cost of
    tracing-off is a single predictable branch per site.
    """

    enabled: bool = False
    debug: bool = False

    def span(self, name: str, **payload) -> _NullSpan:
        """Return a no-op context manager."""
        return _NULL_SPAN

    def point(self, name: str, **payload) -> None:
        """Drop the event."""

    def close(self) -> None:
        """Nothing to flush."""


#: The process-wide disabled tracer (``get_tracer()``'s default).
NULL_TRACER = NullTracer()


class _Span:
    """Context manager emitting a B event on entry and an E event on exit.

    ``add(**payload)`` merges extra fields into the end event's ``data``
    (e.g. a measured accuracy known only once the phase finishes).
    """

    __slots__ = ("_tracer", "name", "_start", "_end_payload")

    def __init__(self, tracer: "Tracer", name: str, payload: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self._start = 0.0
        self._end_payload: Dict[str, Any] = {}
        tracer._emit("B", name, payload)
        self._start = tracer._now()

    def add(self, **payload) -> None:
        """Attach fields to the span's end event."""
        self._end_payload.update(payload)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()

    def end(self) -> None:
        """Emit the span's E event now (for non-``with`` call sites)."""
        tracer = self._tracer
        tracer._emit(
            "E", self.name, self._end_payload, dur=tracer._now() - self._start
        )


class Tracer:
    """Emits structured JSONL events to a text sink.

    Args:
        sink: a writable text file-like object (the tracer does not own
            it unless it was opened by :func:`tracing`).
        debug: also emit per-instance firehose events (statement splits,
            balancer vetoes).  Off by default — debug traces are large.

    Events are written eagerly, one line per event, with sorted keys so a
    byte comparison of two trace files is meaningful.

    Emission is serialized by a lock, so one tracer may be shared by
    concurrent threads (the ``repro.serve`` daemon traces every request
    handler through the process tracer): events never interleave
    mid-line and ``seq`` stays strictly monotonic.  The lock is
    uncontended on the single-threaded compile paths.
    """

    __slots__ = ("enabled", "debug", "_sink", "_seq", "_t0", "_lock")

    def __init__(self, sink: IO[str], debug: bool = False):
        self.enabled = True
        self.debug = debug
        self._sink = sink
        self._seq = 0
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit(
        self,
        ev: str,
        name: str,
        payload: Dict[str, Any],
        dur: Optional[float] = None,
    ) -> None:
        with self._lock:
            event: Dict[str, Any] = {
                "ev": ev,
                "name": name,
                "seq": self._seq,
                "t": round(self._now(), 9),
            }
            if dur is not None:
                event["dur"] = round(dur, 9)
            if payload:
                event["data"] = payload
            self._seq += 1
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")

    def span(self, name: str, **payload) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, payload)

    def point(self, name: str, **payload) -> None:
        """Emit a single instantaneous event."""
        self._emit("P", name, payload)

    def close(self) -> None:
        """Flush the sink (the caller owns closing the file itself)."""
        self._sink.flush()


#: The installed tracer; module state so deeply nested pipeline code can
#: reach it without threading a handle through every constructor.
_CURRENT: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The currently installed tracer (:data:`NULL_TRACER` when off)."""
    return _CURRENT


def set_tracer(tracer: Union[Tracer, NullTracer]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


class tracing:
    """Context manager: trace the enclosed block to ``path`` (JSONL).

    ``path`` may also be an open text sink (e.g. ``io.StringIO``), in which
    case the caller keeps ownership and nothing is closed on exit::

        with tracing("/tmp/compile.jsonl", debug=False) as tracer:
            NdpPartitioner(machine).partition(program)
    """

    def __init__(self, path: Union[str, IO[str]], debug: bool = False):
        self._path = path
        self._debug = debug
        self._fh: Optional[IO[str]] = None
        self._tracer: Optional[Tracer] = None
        self._previous: Union[Tracer, NullTracer, None] = None

    def __enter__(self) -> Tracer:
        if isinstance(self._path, str):
            self._fh = open(self._path, "w")
            sink: IO[str] = self._fh
        else:
            sink = self._path
        self._tracer = Tracer(sink, debug=self._debug)
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> None:
        assert self._tracer is not None and self._previous is not None
        set_tracer(self._previous)
        self._tracer.close()
        if self._fh is not None:
            self._fh.close()


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def strip_wall_times(events: Iterator[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop the nondeterministic ``t``/``dur`` fields from each event.

    What remains is the deterministic event stream: two runs with the same
    seed must agree on it exactly.
    """
    stripped = []
    for event in events:
        clean = {k: v for k, v in event.items() if k not in ("t", "dur")}
        stripped.append(clean)
    return stripped
