"""Shared utilities: union-find, deterministic RNG helpers, small statistics."""

from repro.utils.union_find import UnionFind
from repro.utils.rng import make_rng, derive_rng
from repro.utils.stats import geomean, mean, summarize, Summary

__all__ = [
    "UnionFind",
    "make_rng",
    "derive_rng",
    "geomean",
    "mean",
    "summarize",
    "Summary",
]
