"""Deterministic random number generation helpers.

Library code never touches the global :mod:`random` / :mod:`numpy.random`
state.  Every stochastic component owns a ``numpy.random.Generator`` built
from an explicit seed, and child components derive their generators from the
parent seed plus a stable string tag so results are reproducible regardless
of call order.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a fresh PCG64 generator seeded with ``seed``."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, tag: str) -> int:
    """Derive a stable child seed from ``seed`` and a string ``tag``.

    Uses SHA-256 so the derivation is insensitive to Python's per-process
    hash randomization.
    """
    digest = hashlib.sha256(f"{seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int, tag: str) -> np.random.Generator:
    """Return a generator seeded deterministically from ``(seed, tag)``."""
    return np.random.default_rng(derive_seed(seed, tag))
