"""Small statistics helpers used by experiments and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    data = list(values)
    if not data:
        return 0.0
    return sum(data) / len(data)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; 0.0 for an empty iterable.

    The paper reports geometric means for its cross-application averages
    (e.g. the 18.4% headline), so experiments aggregate the same way.
    All values must be positive.
    """
    data = list(values)
    if not data:
        return 0.0
    if any(v <= 0 for v in data):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g} sd={self.stdev:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize ``values`` (count, mean, min, max, population stdev)."""
    data: List[float] = list(values)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0)
    mu = mean(data)
    var = sum((v - mu) ** 2 for v in data) / len(data)
    return Summary(len(data), mu, min(data), max(data), math.sqrt(var))


def ratio_reduction(baseline: float, optimized: float) -> float:
    """Fractional reduction of ``optimized`` relative to ``baseline``.

    Returns e.g. 0.35 when optimized is 35% lower than baseline.  A zero
    baseline yields 0.0 (no movement to reduce).
    """
    if baseline <= 0:
        return 0.0
    return (baseline - optimized) / baseline
