"""Disjoint-set (union-find) structure used by Kruskal's algorithm.

Implements union by rank with path compression.  Elements may be any hashable
value; sets are created lazily on first access, which matches how the MST
builder discovers graph vertices incrementally (Algorithm 1, lines 22-29 of
the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    >>> uf = UnionFind()
    >>> uf.union('a', 'b')
    True
    >>> uf.connected('a', 'b')
    True
    >>> uf.union('a', 'b')   # already joined
    False
    """

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set if it is new."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._count += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk directly at the root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns True if a merge happened, False if they were already joined.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)


class DenseUnionFind:
    """Disjoint sets over the dense integer range ``0..size-1``.

    Semantically identical to :class:`UnionFind` seeded with
    ``range(size)`` (union by rank, two-pass path compression, same
    tie-breaking), but backed by flat lists instead of dicts — the hot-path
    variant for the splitter's and scheduler's member ids, which are always
    small contiguous ints.
    """

    __slots__ = ("_parent", "_rank")

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, element: int) -> int:
        """Return the canonical representative of ``element``'s set."""
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True when a merge happened."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        rank = self._rank
        if rank[root_a] < rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank[root_a] == rank[root_b]:
            rank[root_a] += 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
