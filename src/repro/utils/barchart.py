"""Terminal bar charts for experiment reports.

The paper's figures are bar charts per application; these helpers render
the same series as unicode bars so `python -m repro.cli compare`/the
experiment runner can show shapes directly in the terminal.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A left-aligned bar filling ``fraction`` of ``width`` character cells."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if full < width else ""
    return ("█" * full + partial).ljust(width)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
    limit: Optional[float] = None,
    formatter=lambda v: f"{v:.3g}",
) -> str:
    """Render ``label -> value`` as horizontal bars.

    Negative values render with a ``-`` marker before the bar; ``limit``
    overrides the scale maximum (default: the largest magnitude).
    """
    if not values:
        return "(no data)"
    label_width = max(len(label) for label in values)
    scale = limit if limit is not None else max(
        (abs(v) for v in values.values()), default=1.0
    )
    if scale <= 0:
        scale = 1.0
    lines: List[str] = []
    for label, value in values.items():
        marker = "-" if value < 0 else " "
        bar = _bar(abs(value) / scale, width)
        lines.append(
            f"{label.ljust(label_width)} {marker}|{bar}| {formatter(value)}{unit}"
        )
    return "\n".join(lines)


def percent_chart(values: Mapping[str, float], *, width: int = 40) -> str:
    """Bar chart for fractional values, labelled as percentages."""
    return bar_chart(
        values,
        width=width,
        unit="%",
        formatter=lambda v: f"{v * 100:+.1f}",
        limit=max((abs(v) for v in values.values()), default=1.0),
    )


def grouped_chart(
    series: Mapping[str, Mapping[str, float]],
    *,
    width: int = 30,
) -> str:
    """Multiple series per label (e.g. ours / ideal-net / ideal-analysis)."""
    lines: List[str] = []
    for label, group in series.items():
        lines.append(f"{label}:")
        chart = percent_chart(group, width=width)
        lines.extend("  " + line for line in chart.splitlines())
    return "\n".join(lines)
