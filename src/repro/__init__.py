"""repro — Data Movement Aware Computation Partitioning (MICRO 2017).

A full reproduction of Tang, Kislal, Kandemir & Karakoy's compiler approach
for Near-Data Processing on NoC manycores: statements in loop nests are
split into subcomputations placed on the mesh nodes holding their data,
minimizing on-chip data movement (Kruskal MST over operand locations) while
exploiting L1 reuse across statement windows.

Quick start::

    from repro.arch import knl_machine
    from repro.workloads import build_workload
    from repro.core import NdpPartitioner
    from repro.baselines import DefaultPlacement
    from repro.sim import run_schedule

    machine = knl_machine()
    program = build_workload("ocean")
    result = NdpPartitioner(machine).partition(program)
    metrics = run_schedule(machine, result.units())
    print(metrics.summary())

Packages: :mod:`repro.noc` (mesh network), :mod:`repro.arch` (machine
template + KNL modes), :mod:`repro.mem` (address mapping, page coloring),
:mod:`repro.cache` (L1/L2 + predictor), :mod:`repro.ir` (statements, loops,
dependences), :mod:`repro.core` (the partitioner), :mod:`repro.baselines`,
:mod:`repro.sim` (execution simulator + energy), :mod:`repro.workloads`
(the 12 applications), :mod:`repro.experiments` (every paper table/figure).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
