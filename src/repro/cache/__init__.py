"""Cache substrate: set-associative caches, distributed L2 banks, predictor.

The target architecture (paper Figure 1) gives every mesh node a private L1
and one bank of the shared SNUCA L2.  The compiler additionally consults an
L2 hit/miss predictor (Section 4.1, accuracy reported in Table 2): when the
predictor says a datum misses in L2, the memory controller is used as the
datum's location in the MST.
"""

from repro.cache.sram import CacheConfig, SetAssocCache
from repro.cache.hierarchy import L1Cache, L2Bank, CacheSystem
from repro.cache.predictor import HitMissPredictor, PredictorStats

__all__ = [
    "CacheConfig",
    "SetAssocCache",
    "L1Cache",
    "L2Bank",
    "CacheSystem",
    "HitMissPredictor",
    "PredictorStats",
]
