"""L2 cache hit/miss predictor (paper Section 4.1, accuracy in Table 2).

The compiler must decide, per reference, whether the datum will be found in
its home L2 bank or whether the access will fall through to a memory
controller — the MST uses the MC as the datum's location in the latter case.
The paper uses a Chandra-et-al-style predictor; we implement a per-region
two-bit saturating-counter predictor trained on an address-trace sample.

Regions are block-aligned address ranges (default: one 4KB page), so the
predictor generalizes across elements that share a page, the dominant reuse
granularity in the loop workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PredictorStats:
    """Accuracy accounting for a predictor."""

    correct: int = 0
    incorrect: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.incorrect

    def accuracy(self) -> float:
        """Fraction of verified predictions that were right."""
        return self.correct / self.total if self.total else 0.0


class HitMissPredictor:
    """Two-bit saturating counter per region; >=2 predicts an L2 hit.

    Counters start at 1 (weakly predict miss): a cold region has not been
    fetched yet, so predicting a miss — i.e. "the data is at the MC" — is the
    safe default, matching the paper's treatment of cold references.
    """

    STRONG_MISS, WEAK_MISS, WEAK_HIT, STRONG_HIT = 0, 1, 2, 3

    #: Prediction depends only on the queried address, never on the query
    #: stream: location answers can be batched, cached, and replayed.  The
    #: counters are only written by explicit ``train`` calls (the training
    #: pass), which happen before any consumer caches an answer.  Stateful
    #: oracles (e.g. the ideal-analysis predictor) set this False, which
    #: disables every vectorized/caching fast path downstream.
    pure_predict: bool = True

    def __init__(self, region_bits: int = 12):
        self.region_bits = region_bits
        self._counters: Dict[int, int] = {}
        self.stats = PredictorStats()

    def _region(self, address: int) -> int:
        return address >> self.region_bits

    def predict(self, address: int) -> bool:
        """True = predicted L2 hit (data on chip), False = predicted miss."""
        counter = self._counters.get(self._region(address), self.WEAK_MISS)
        return counter >= self.WEAK_HIT

    def predict_many(self, addresses) -> "np.ndarray":
        """Vectorized :meth:`predict` over an int array of addresses.

        Returns a bool array (True = predicted L2 hit).  Bit-equal to
        calling :meth:`predict` per element: the counters are read through
        the same default and threshold, deduplicated per region.
        """
        import numpy as np

        regions = np.asarray(addresses, dtype=np.int64) >> self.region_bits
        unique, inverse = np.unique(regions, return_inverse=True)
        get = self._counters.get
        weak_miss, weak_hit = self.WEAK_MISS, self.WEAK_HIT
        verdicts = np.fromiter(
            (get(int(region), weak_miss) >= weak_hit for region in unique),
            dtype=bool,
            count=len(unique),
        )
        return verdicts[inverse]

    def train(self, address: int, was_hit: bool) -> None:
        """Update the region counter with an observed outcome."""
        region = self._region(address)
        counter = self._counters.get(region, self.WEAK_MISS)
        if was_hit:
            counter = min(self.STRONG_HIT, counter + 1)
        else:
            counter = max(self.STRONG_MISS, counter - 1)
        self._counters[region] = counter

    def predict_and_train(self, address: int, was_hit: bool) -> bool:
        """Predict, verify against the outcome, train, and record accuracy."""
        prediction = self.predict(address)
        if prediction == was_hit:
            self.stats.correct += 1
        else:
            self.stats.incorrect += 1
        self.train(address, was_hit)
        return prediction

    def accuracy(self) -> float:
        return self.stats.accuracy()

    def reset(self) -> None:
        self._counters.clear()
        self.stats = PredictorStats()
