"""Per-node L1 caches and distributed L2 banks.

:class:`CacheSystem` owns one L1 per mesh node and one L2 bank per node
(SNUCA: a block has exactly one home bank, determined by its physical
address).  The execution simulator drives these to measure the L1 hit rates
of Figures 16 and 21; the window scheduler separately *models* L1 contents
with its ``variable2node_map`` — the simulator is the ground truth that
model is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.sram import CacheConfig, SetAssocCache
from repro.errors import ConfigurationError


class L1Cache(SetAssocCache):
    """Private per-core L1 data cache."""

    def __init__(self, node_id: int, config: CacheConfig):
        super().__init__(config)
        self.node_id = node_id


class L2Bank(SetAssocCache):
    """One bank of the shared, distributed L2 (the node's slice of SNUCA)."""

    def __init__(self, bank_id: int, node_id: int, config: CacheConfig):
        super().__init__(config)
        self.bank_id = bank_id
        self.node_id = node_id


@dataclass
class AccessOutcome:
    """Result of a load through the hierarchy at one node."""

    l1_hit: bool
    l2_hit: bool
    home_node: int

    @property
    def went_to_memory(self) -> bool:
        return not self.l1_hit and not self.l2_hit


class CacheSystem:
    """All L1s and L2 banks of the chip, plus hierarchy access logic."""

    def __init__(
        self,
        node_count: int,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        bank_to_node: Optional[List[int]] = None,
    ):
        self.node_count = node_count
        self.l1s: List[L1Cache] = [L1Cache(n, l1_config) for n in range(node_count)]
        # One bank per node by default; bank_to_node lets a machine with fewer
        # banks than nodes place them.
        if bank_to_node is None:
            bank_to_node = list(range(node_count))
        if any(not 0 <= n < node_count for n in bank_to_node):
            raise ConfigurationError("bank_to_node entries must be node ids")
        self.bank_to_node = bank_to_node
        self.l2_banks: List[L2Bank] = [
            L2Bank(b, node, l2_config) for b, node in enumerate(bank_to_node)
        ]

    def node_of_bank(self, bank_id: int) -> int:
        """Mesh node hosting L2 bank ``bank_id``."""
        return self.bank_to_node[bank_id]

    def load(self, node_id: int, block: int, home_bank: int) -> AccessOutcome:
        """A core at ``node_id`` loads ``block`` whose home is ``home_bank``.

        L1 miss -> request goes to the home bank; L2 miss -> memory (the
        caller charges NoC hops and memory latency).  Both levels are filled
        on the way back, mirroring the flow of Figure 1.
        """
        l1_hit = self.l1s[node_id].access(block)
        if l1_hit:
            return AccessOutcome(True, True, self.node_of_bank(home_bank))
        l2_hit = self.l2_banks[home_bank].access(block)
        return AccessOutcome(False, l2_hit, self.node_of_bank(home_bank))

    def store(self, node_id: int, block: int, home_bank: int) -> AccessOutcome:
        """A store: write-allocate into L1 and home L2 bank.

        Modeled identically to a load for movement purposes — the paper's
        metric counts links traversed, and the result travels to the store
        node either way.
        """
        return self.load(node_id, block, home_bank)

    def l1_hit_rate(self) -> float:
        """Chip-wide L1 hit rate."""
        hits = sum(c.hits for c in self.l1s)
        accesses = sum(c.accesses for c in self.l1s)
        return hits / accesses if accesses else 0.0

    def l2_hit_rate(self) -> float:
        """Chip-wide L2 hit rate (of L1 misses)."""
        hits = sum(b.hits for b in self.l2_banks)
        accesses = sum(b.accesses for b in self.l2_banks)
        return hits / accesses if accesses else 0.0

    def reset_stats(self) -> None:
        for cache in self.l1s:
            cache.reset_stats()
        for bank in self.l2_banks:
            bank.reset_stats()

    def clear(self) -> None:
        for cache in self.l1s:
            cache.clear()
        for bank in self.l2_banks:
            bank.clear()
