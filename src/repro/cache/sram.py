"""Generic set-associative cache with true-LRU replacement.

Operates on cache-block numbers (not raw addresses); the address mapping in
:mod:`repro.mem.address` is responsible for turning addresses into block
numbers, so one cache model serves both L1s and L2 banks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache: capacity, associativity, line size (bytes)."""

    capacity_bytes: int
    associativity: int
    line_size: int = 64

    def __post_init__(self):
        if self.capacity_bytes <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ConfigurationError(f"invalid cache geometry: {self}")
        lines = self.capacity_bytes // self.line_size
        if lines == 0 or lines % self.associativity:
            raise ConfigurationError(
                f"capacity {self.capacity_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_size}B lines"
            )

    @property
    def line_count(self) -> int:
        return self.capacity_bytes // self.line_size

    @property
    def set_count(self) -> int:
        return self.line_count // self.associativity


class SetAssocCache:
    """A set-associative, true-LRU cache over block numbers."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Geometry cached as plain ints: ``set_count``/``associativity`` sit
        # on the per-access hot path and the dataclass properties re-divide
        # on every call.
        self._set_count = config.set_count
        self._assoc = config.associativity
        # One OrderedDict per set: keys are block numbers, order is recency
        # (last item = most recently used).
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self._set_count)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, block: int) -> "OrderedDict[int, None]":
        return self._sets[block % self._set_count]

    def contains(self, block: int) -> bool:
        """Non-mutating lookup (does not touch LRU state or counters)."""
        return block in self._sets[block % self._set_count]

    def access(self, block: int) -> bool:
        """Access ``block``: returns True on hit.  Misses fill the block.

        Fills evict the LRU way when the set is full.
        """
        cache_set = self._sets[block % self._set_count]
        if block in cache_set:
            cache_set.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self._assoc:
            cache_set.popitem(last=False)
            self.evictions += 1
        cache_set[block] = None
        return False

    def peek_then_access(self, block: int) -> bool:
        """Alias of :meth:`access`; kept for call-site readability."""
        return self.access(block)

    def fill(self, block: int) -> None:
        """Install ``block`` without counting an access (e.g. a push/forward)."""
        cache_set = self._set_of(block)
        if block in cache_set:
            cache_set.move_to_end(block)
            return
        self._fill(cache_set, block)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns True when something was dropped."""
        cache_set = self._set_of(block)
        if block in cache_set:
            del cache_set[block]
            return True
        return False

    def _fill(self, cache_set: "OrderedDict[int, None]", block: int) -> None:
        if len(cache_set) >= self._assoc:
            cache_set.popitem(last=False)
            self.evictions += 1
        cache_set[block] = None

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when untouched)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def resident_blocks(self) -> List[int]:
        """All blocks currently cached (unspecified order across sets)."""
        blocks: List[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.keys())
        return blocks

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self.reset_stats()
