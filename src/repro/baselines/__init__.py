"""Baseline computation placements and ideal scenarios (paper Section 6).

* :mod:`repro.baselines.default_placement` — the paper's "default": a
  *highly locality-optimized* iteration-granularity placement that assigns
  each chunk of iterations to the core its profile says is best for LLC/MC
  locality.  Every improvement the paper (and this reproduction) reports is
  measured on top of this, not on top of a naive baseline.
* :mod:`repro.baselines.locality` — the Lu09-like and Ding13-like
  LLC-locality schemes the default is validated against (Section 6.1).
* :mod:`repro.baselines.data_mapping` — the profile-based page-to-MC
  mapping of Figure 23, and its combination with our approach.
* :mod:`repro.baselines.ideal` — the ideal-network and ideal-data-analysis
  scenarios of Figure 17.
"""

from repro.baselines.default_placement import DefaultPlacement, PlacementResult
from repro.baselines.locality import llc_locality_placement, block_cyclic_placement
from repro.baselines.data_mapping import profile_page_mc_mapping
from repro.baselines.ideal import (
    OracleL2Predictor,
    ideal_network_config,
    partition_with_ideal_analysis,
)

__all__ = [
    "DefaultPlacement",
    "PlacementResult",
    "llc_locality_placement",
    "block_cyclic_placement",
    "profile_page_mc_mapping",
    "OracleL2Predictor",
    "ideal_network_config",
    "partition_with_ideal_analysis",
]
