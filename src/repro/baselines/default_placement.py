"""The paper's default computation placement (Section 6.1).

Iteration-granularity, *locality-optimized*: the iteration space of each
nest is divided into contiguous chunks; a profile pass records which L2
banks / memory controllers each chunk references; each chunk is then
assigned to the node that hosts most of its referenced data ("the most
beneficial core from an LLC/MC locality viewpoint").  A soft load cap keeps
pathological profiles from piling every chunk onto one node.

Each statement instance becomes a single subcomputation on its chunk's
node: the node gathers all inputs, computes, and stores the result — the
execution model our partitioner is compared against everywhere.

Two interchangeable preference searches rank the candidate nodes of each
chunk (DESIGN.md section 14):

* **flat** — sort *every* alive node by referenced-data residency, the
  historical algorithm.  Exact, and cheap at the paper's 36 tiles.
* **hierarchical** — recursively quadrant-decompose the mesh, order
  regions by their aggregated residency counts, and only sort the
  (typically few) nodes that actually hold referenced data inside each
  leaf region; the cold remainder keeps a precomputed region order.

``search="auto"`` (the default) picks flat at or below
:data:`HIERARCHICAL_NODE_THRESHOLD` nodes — so the 6x6 evaluation mesh
and the 4x4 test machine stay bit-identical to the historical flat
search — and hierarchical above it, where sorting hundreds of mostly-cold
nodes per chunk is what the mesh sweep measures as the flat search's
scaling wall.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import check
from repro.arch.machine import Machine
from repro.core.subcomputation import GatheredInput, Subcomputation
from repro.errors import ConfigurationError
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.statement import StatementInstance

#: Above this many alive nodes, ``search="auto"`` switches the chunk
#: preference ranking from the flat sort to the hierarchical
#: quadrant-decomposed search.  64 keeps every historical mesh (4x4,
#: 6x6, up to 8x8) on the flat path, bit-identical to the seed.
HIERARCHICAL_NODE_THRESHOLD = 64

#: Region size at which the hierarchical decomposition stops splitting;
#: within a leaf the (few) data-holding nodes are sorted exactly.
_LEAF_REGION_NODES = 16


@dataclass
class PlacementResult:
    """An iteration-granularity placement rendered as simulator units."""

    units: List[Subcomputation]
    node_of_seq: Dict[int, int]

    @property
    def unit_count(self) -> int:
        return len(self.units)

    def nodes_used(self) -> int:
        return len(set(self.node_of_seq.values()))


def instance_to_unit(
    machine: Machine,
    instance: StatementInstance,
    node: int,
    uid: int,
) -> Subcomputation:
    """Render one statement instance as a single-node subcomputation."""
    from repro.core.scheduler import _op_info

    gathered = []
    for access in instance.reads:
        home = machine.home_node(access.array, access.index)
        gathered.append(
            GatheredInput(access, home, machine.distance(home, node))
        )
    _, _, op_total, cost, breakdown = _op_info(instance.statement)
    return Subcomputation(
        uid=uid,
        seq=instance.seq,
        node=node,
        op="+",
        op_count=op_total,
        cost=cost,
        gathered=tuple(gathered),
        sub_results=(),
        store=instance.write,
        op_breakdown=breakdown,
    )


def placement_from_assignment(
    machine: Machine,
    program: Program,
    assign: Callable[[StatementInstance], int],
) -> PlacementResult:
    """Build a :class:`PlacementResult` from any instance->node function."""
    program.declare_on(machine)
    units: List[Subcomputation] = []
    node_of_seq: Dict[int, int] = {}
    uid = itertools.count()
    for instance in program.instances():
        node = assign(instance)
        node_of_seq[instance.seq] = node
        units.append(instance_to_unit(machine, instance, node, next(uid)))
    return PlacementResult(units, node_of_seq)


class DefaultPlacement:
    """Profile-guided chunk placement (the paper's default strategy).

    ``search`` selects the preference ranking: ``"auto"`` (flat at or
    below :data:`HIERARCHICAL_NODE_THRESHOLD` alive nodes, hierarchical
    above), or an explicit ``"flat"`` / ``"hierarchical"`` for the
    mesh-sweep's A/B measurements.
    """

    def __init__(
        self,
        machine: Machine,
        load_cap_factor: float = 2.0,
        search: str = "auto",
    ):
        if search not in ("auto", "flat", "hierarchical"):
            raise ConfigurationError(
                f"unknown placement search {search!r}; "
                "choose 'auto', 'flat', or 'hierarchical'"
            )
        self.machine = machine
        self.load_cap_factor = load_cap_factor
        self.search = search
        self._tree = None

    def uses_hierarchical(self, alive_count: Optional[int] = None) -> bool:
        """Whether this placement ranks with the hierarchical search."""
        if self.search != "auto":
            return self.search == "hierarchical"
        if alive_count is None:
            alive_count = len(self.machine.alive_nodes())
        return alive_count > HIERARCHICAL_NODE_THRESHOLD

    def chunk_home_counts(
        self, program: Program, nest: LoopNest
    ) -> Tuple[List[Dict[int, int]], List[int]]:
        """Per-chunk ``{home node: reference count}`` profile + alive nodes."""
        machine = self.machine
        # Offline tiles (fault plan) execute nothing: rank only live nodes.
        alive = machine.alive_nodes()
        chunk_count = min(len(alive), max(nest.trip_count, 1))
        counts = [dict() for _ in range(chunk_count)]  # type: List[Dict[int, int]]
        trip = nest.trip_count
        for i, instance in enumerate(program.nest_instances(nest)):
            iteration_index = i // nest.body_size
            chunk = min(iteration_index * chunk_count // max(trip, 1), chunk_count - 1)
            for access in instance.accesses():
                home = machine.home_node(access.array, access.index)
                counts[chunk][home] = counts[chunk].get(home, 0) + 1
        return counts, alive

    def rank_preferences(
        self,
        counts: List[Dict[int, int]],
        alive: List[int],
        search: Optional[str] = None,
    ) -> List[List[int]]:
        """Per chunk, every alive node ranked by residency preference."""
        search = search or self.search
        if search == "hierarchical" or (
            search == "auto" and self.uses_hierarchical(len(alive))
        ):
            preferences = self._rank_hierarchical(counts)
            if check.enabled():
                from repro.check.invariants import check_preferences_cover_alive

                check_preferences_cover_alive(preferences, alive)
            return preferences
        return self._rank_flat(counts, alive)

    def _chunk_preferences(
        self, program: Program, nest: LoopNest
    ) -> List[List[int]]:
        """Per chunk, nodes ranked by referenced-data residency (profile)."""
        counts, alive = self.chunk_home_counts(program, nest)
        return self.rank_preferences(counts, alive)

    @staticmethod
    def _rank_flat(
        counts: List[Dict[int, int]], alive: List[int]
    ) -> List[List[int]]:
        """The historical full sort of every alive node, per chunk."""
        preferences = []
        for chunk_counts in counts:
            ranked = sorted(
                alive,
                key=lambda n: (-chunk_counts.get(n, 0), n),
            )
            preferences.append(ranked)
        return preferences

    # -- hierarchical quadrant-decomposed search ---------------------------

    def _region_tree(self):
        """The quadrant decomposition of the alive mesh (built once).

        Returns ``(leaves, leaf_of, root)``: ``leaves`` is the leaf
        regions' alive-node lists in depth-first order; ``leaf_of`` maps
        each alive node to its leaf index; region nodes are tuples
        ``(kind, payload, lo, hi)`` where ``[lo, hi)`` is the contiguous
        leaf range the region covers (so per-chunk region sums are prefix
        -sum lookups, not recursive walks).
        """
        if self._tree is not None:
            return self._tree
        mesh = self.machine.mesh
        alive = set(self.machine.alive_nodes())
        leaves: List[List[int]] = []

        def build(x0: int, y0: int, w: int, h: int):
            if w * h <= _LEAF_REGION_NODES or (w <= 1 and h <= 1):
                nodes = sorted(
                    y * mesh.cols + x
                    for y in range(y0, y0 + h)
                    for x in range(x0, x0 + w)
                    if (y * mesh.cols + x) in alive
                )
                index = len(leaves)
                leaves.append(nodes)
                return ("leaf", index, index, index + 1)
            # Split at the column/row midpoints, the same convention as
            # Mesh2D.quadrant_of; a dimension of 1 stays unsplit.
            half_w = w // 2
            half_h = h // 2
            spans_x = [(x0, half_w), (x0 + half_w, w - half_w)] if w > 1 else [(x0, w)]
            spans_y = [(y0, half_h), (y0 + half_h, h - half_h)] if h > 1 else [(y0, h)]
            children = []
            lo = len(leaves)
            for sy, sh in spans_y:
                for sx, sw in spans_x:
                    children.append(build(sx, sy, sw, sh))
            return ("inner", children, lo, len(leaves))

        root = build(0, 0, mesh.cols, mesh.rows)
        leaf_of = np.zeros(mesh.node_count, dtype=np.intp)
        for index, nodes in enumerate(leaves):
            for node in nodes:
                leaf_of[node] = index
        # Flatten the descent into per-leaf ancestor chains — the
        # (leaf-range, sibling position) of each enclosing region, root
        # child first.  Ranking then needs no tree walk at all: order
        # leaves by (-ancestor subtree sum, position) level by level,
        # which vectorizes into one np.lexsort over all chunks at once.
        chains: List[List[Tuple[int, int, int]]] = [[] for _ in leaves]

        def walk(region, chain):
            kind, payload, lo, hi = region
            if kind == "leaf":
                chains[payload] = list(chain)
                return
            for position, child in enumerate(payload):
                walk(child, chain + [(child[2], child[3], position)])

        walk(root, [])
        depth = max((len(chain) for chain in chains), default=0)
        for index, chain in enumerate(chains):
            while len(chain) < depth:  # ragged corners repeat their leaf
                chain.append((index, index + 1, 0))
        lo = np.array(
            [[chain[d][0] for chain in chains] for d in range(depth)],
            dtype=np.intp,
        ).reshape(depth, len(leaves))
        hi = np.array(
            [[chain[d][1] for chain in chains] for d in range(depth)],
            dtype=np.intp,
        ).reshape(depth, len(leaves))
        pos = np.array(
            [[chain[d][2] for chain in chains] for d in range(depth)],
            dtype=np.intp,
        ).reshape(depth, len(leaves))
        self._tree = (leaves, leaf_of, (lo, hi, pos))
        return self._tree

    def _rank_hierarchical(
        self, counts: List[Dict[int, int]]
    ) -> List[List[int]]:
        """Quadrant-descent ranking: exact where it matters, cheap elsewhere.

        Per chunk: aggregate the home counts per leaf region in one
        vectorized pass, order sibling regions by aggregated count (ties
        by canonical position), sort nodes *exactly* inside the winning
        leaf — the one that supplies the chunk's assignment in all but
        cap-overflow cases — and emit every other leaf's precomputed node
        list wholesale.  Residency counts are dense (cache-line
        interleaving spreads every array over all banks), so the flat
        search's per-chunk keyed sort of all N nodes is the scaling cost
        this replaces with O(homes) aggregation + O(leaves log leaves)
        ordering + one small exact sort.
        """
        leaves, leaf_of, (lo, hi, pos) = self._region_tree()
        leaf_count = len(leaves)
        chunk_count = len(counts)
        depth = lo.shape[0]
        if depth == 0:
            # A single leaf (tiny mesh under explicit search="hierarchical"):
            # the descent degenerates to one exact sort per chunk.
            order_rows = [[0]] * chunk_count
        else:
            total = sum(map(len, counts))
            homes = np.empty(total, dtype=np.intp)
            weights = np.empty(total, dtype=np.float64)
            chunk_ids = np.empty(total, dtype=np.intp)
            base = 0
            for index, chunk_counts in enumerate(counts):
                k = len(chunk_counts)
                if k == 0:
                    continue
                homes[base : base + k] = np.fromiter(
                    chunk_counts.keys(), dtype=np.intp, count=k
                )
                weights[base : base + k] = np.fromiter(
                    chunk_counts.values(), dtype=np.float64, count=k
                )
                chunk_ids[base : base + k] = index
                base += k
            sums = np.bincount(
                chunk_ids * leaf_count + leaf_of[homes],
                weights=weights,
                minlength=chunk_count * leaf_count,
            ).reshape(chunk_count, leaf_count)
            prefix = np.zeros((chunk_count, leaf_count + 1))
            np.cumsum(sums, axis=1, out=prefix[:, 1:])
            # One lexsort ranks every chunk's leaves at once.  Keys run
            # least- to most-significant: at each tree level the ancestor
            # subtree sum (descending) then its canonical sibling position,
            # with the root children last (= primary).
            keys = []
            for d in range(depth - 1, -1, -1):
                keys.append(np.broadcast_to(pos[d], (chunk_count, leaf_count)))
                keys.append(prefix[:, lo[d]] - prefix[:, hi[d]])
            order_rows = np.lexsort(tuple(keys), axis=-1).tolist()
        preferences = []
        for index, row in enumerate(order_rows):
            chunk_counts = counts[index]
            if chunk_counts:
                # The first leaf in descent order always holds data (its
                # ancestors win every sum comparison), and it supplies the
                # chunk's assignment in all but cap-overflow cases: rank
                # it exactly, emit the rest wholesale.
                nodes = leaves[row[0]]
                hot = sorted(
                    (n for n in nodes if n in chunk_counts),
                    key=lambda n: (-chunk_counts[n], n),
                )
                hot_set = set(hot)
                ranked = hot + [n for n in nodes if n not in hot_set]
                ranked.extend(
                    itertools.chain.from_iterable(
                        [leaves[leaf] for leaf in row[1:]]
                    )
                )
            else:
                ranked = list(
                    itertools.chain.from_iterable([leaves[leaf] for leaf in row])
                )
            preferences.append(ranked)
        return preferences

    def _assign_chunks(self, preferences: List[List[int]]) -> List[int]:
        """Greedy profile assignment with a soft per-node load cap."""
        chunk_count = len(preferences)
        alive_count = len(self.machine.alive_nodes())
        cap = max(1, int(self.load_cap_factor * chunk_count / alive_count))
        load = [0] * self.machine.node_count
        assignment = []
        for ranked in preferences:
            chosen = next((n for n in ranked if load[n] < cap), ranked[0])
            load[chosen] += 1
            assignment.append(chosen)
        return assignment

    def assignment(self, program: Program) -> Dict[int, int]:
        """Instance seq -> node under the default placement.

        Used both to render the baseline schedule and as the fallback
        execution node for statements the partitioner decides not to split.
        """
        result = self.place(program)
        return dict(result.node_of_seq)

    def place(self, program: Program) -> PlacementResult:
        """Place every nest of ``program``; returns simulator-ready units."""
        program.declare_on(self.machine)
        # The paper's default toolchain also performs the VTune-guided
        # MCDRAM placement (Section 6.1); apply it so comparisons against
        # the optimized version isolate computation mapping only.
        from repro.core.partitioner import profile_access_counts

        self.machine.record_profile(profile_access_counts(program))
        chunk_of_nest: Dict[str, Tuple[List[int], int]] = {}
        for nest in program.nests:
            preferences = self._chunk_preferences(program, nest)
            assignment = self._assign_chunks(preferences)
            chunk_of_nest[nest.name] = (assignment, len(assignment))

        instance_counter: Dict[str, int] = {}
        nest_by_name = {n.name: n for n in program.nests}

        def assign(instance: StatementInstance) -> int:
            assignment, chunk_count = chunk_of_nest[instance.nest_name]
            position = instance_counter.get(instance.nest_name, 0)
            instance_counter[instance.nest_name] = position + 1
            nest = nest_by_name[instance.nest_name]
            iteration_index = position // nest.body_size
            chunk = min(
                iteration_index * chunk_count // max(nest.trip_count, 1),
                chunk_count - 1,
            )
            return assignment[chunk]

        return placement_from_assignment(self.machine, program, assign)
