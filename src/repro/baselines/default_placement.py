"""The paper's default computation placement (Section 6.1).

Iteration-granularity, *locality-optimized*: the iteration space of each
nest is divided into contiguous chunks; a profile pass records which L2
banks / memory controllers each chunk references; each chunk is then
assigned to the node that hosts most of its referenced data ("the most
beneficial core from an LLC/MC locality viewpoint").  A soft load cap keeps
pathological profiles from piling every chunk onto one node.

Each statement instance becomes a single subcomputation on its chunk's
node: the node gathers all inputs, computes, and stores the result — the
execution model our partitioner is compared against everywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.arch.machine import Machine
from repro.core.subcomputation import GatheredInput, Subcomputation
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.statement import StatementInstance


@dataclass
class PlacementResult:
    """An iteration-granularity placement rendered as simulator units."""

    units: List[Subcomputation]
    node_of_seq: Dict[int, int]

    @property
    def unit_count(self) -> int:
        return len(self.units)

    def nodes_used(self) -> int:
        return len(set(self.node_of_seq.values()))


def instance_to_unit(
    machine: Machine,
    instance: StatementInstance,
    node: int,
    uid: int,
) -> Subcomputation:
    """Render one statement instance as a single-node subcomputation."""
    from repro.core.scheduler import _op_info

    gathered = []
    for access in instance.reads:
        home = machine.home_node(access.array, access.index)
        gathered.append(
            GatheredInput(access, home, machine.distance(home, node))
        )
    _, _, op_total, cost, breakdown = _op_info(instance.statement)
    return Subcomputation(
        uid=uid,
        seq=instance.seq,
        node=node,
        op="+",
        op_count=op_total,
        cost=cost,
        gathered=tuple(gathered),
        sub_results=(),
        store=instance.write,
        op_breakdown=breakdown,
    )


def placement_from_assignment(
    machine: Machine,
    program: Program,
    assign: Callable[[StatementInstance], int],
) -> PlacementResult:
    """Build a :class:`PlacementResult` from any instance->node function."""
    program.declare_on(machine)
    units: List[Subcomputation] = []
    node_of_seq: Dict[int, int] = {}
    uid = itertools.count()
    for instance in program.instances():
        node = assign(instance)
        node_of_seq[instance.seq] = node
        units.append(instance_to_unit(machine, instance, node, next(uid)))
    return PlacementResult(units, node_of_seq)


class DefaultPlacement:
    """Profile-guided chunk placement (the paper's default strategy)."""

    def __init__(self, machine: Machine, load_cap_factor: float = 2.0):
        self.machine = machine
        self.load_cap_factor = load_cap_factor

    def _chunk_preferences(
        self, program: Program, nest: LoopNest
    ) -> List[List[int]]:
        """Per chunk, nodes ranked by referenced-data residency (profile)."""
        machine = self.machine
        # Offline tiles (fault plan) execute nothing: rank only live nodes.
        alive = machine.alive_nodes()
        chunk_count = min(len(alive), max(nest.trip_count, 1))
        counts = [dict() for _ in range(chunk_count)]  # type: List[Dict[int, int]]
        trip = nest.trip_count
        for i, instance in enumerate(program.nest_instances(nest)):
            iteration_index = i // nest.body_size
            chunk = min(iteration_index * chunk_count // max(trip, 1), chunk_count - 1)
            for access in instance.accesses():
                home = machine.home_node(access.array, access.index)
                counts[chunk][home] = counts[chunk].get(home, 0) + 1
        preferences = []
        for chunk_counts in counts:
            ranked = sorted(
                alive,
                key=lambda n: (-chunk_counts.get(n, 0), n),
            )
            preferences.append(ranked)
        return preferences

    def _assign_chunks(self, preferences: List[List[int]]) -> List[int]:
        """Greedy profile assignment with a soft per-node load cap."""
        chunk_count = len(preferences)
        alive_count = len(self.machine.alive_nodes())
        cap = max(1, int(self.load_cap_factor * chunk_count / alive_count))
        load = [0] * self.machine.node_count
        assignment = []
        for ranked in preferences:
            chosen = next((n for n in ranked if load[n] < cap), ranked[0])
            load[chosen] += 1
            assignment.append(chosen)
        return assignment

    def assignment(self, program: Program) -> Dict[int, int]:
        """Instance seq -> node under the default placement.

        Used both to render the baseline schedule and as the fallback
        execution node for statements the partitioner decides not to split.
        """
        result = self.place(program)
        return dict(result.node_of_seq)

    def place(self, program: Program) -> PlacementResult:
        """Place every nest of ``program``; returns simulator-ready units."""
        program.declare_on(self.machine)
        # The paper's default toolchain also performs the VTune-guided
        # MCDRAM placement (Section 6.1); apply it so comparisons against
        # the optimized version isolate computation mapping only.
        from repro.core.partitioner import profile_access_counts

        self.machine.record_profile(profile_access_counts(program))
        chunk_of_nest: Dict[str, Tuple[List[int], int]] = {}
        for nest in program.nests:
            preferences = self._chunk_preferences(program, nest)
            assignment = self._assign_chunks(preferences)
            chunk_of_nest[nest.name] = (assignment, len(assignment))

        instance_counter: Dict[str, int] = {}
        nest_by_name = {n.name: n for n in program.nests}

        def assign(instance: StatementInstance) -> int:
            assignment, chunk_count = chunk_of_nest[instance.nest_name]
            position = instance_counter.get(instance.nest_name, 0)
            instance_counter[instance.nest_name] = position + 1
            nest = nest_by_name[instance.nest_name]
            iteration_index = position // nest.body_size
            chunk = min(
                iteration_index * chunk_count // max(nest.trip_count, 1),
                chunk_count - 1,
            )
            return assignment[chunk]

        return placement_from_assignment(self.machine, program, assign)
