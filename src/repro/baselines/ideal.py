"""Ideal scenarios (paper Section 6.4, Figure 17 bars 2 and 3).

* **Ideal network** — every network message completes in 0 cycles.  The
  paper deducts measured network latencies from execution time; we run the
  simulator with ``ideal_network=True`` (traffic is still recorded so
  movement metrics stay meaningful).
* **Ideal data analysis** — perfect compile-time knowledge: 100% accurate
  L2 hit/miss prediction and exact data-access information.  We give the
  partitioner an :class:`OracleL2Predictor` (it *simulates* the L2 instead
  of guessing) and an unbounded L1-reuse model, which is exactly the
  information a perfect profile would provide.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.arch.machine import Machine
from repro.cache.hierarchy import CacheSystem
from repro.cache.predictor import PredictorStats
from repro.core.partitioner import NdpPartitioner, PartitionConfig, PartitionResult
from repro.ir.program import Program
from repro.sim.engine import SimConfig


def ideal_network_config(base: SimConfig = SimConfig()) -> SimConfig:
    """A simulator configuration where messages take zero cycles."""
    return replace(base, ideal_network=True)


class OracleL2Predictor:
    """A hit/miss 'predictor' that simulates the L2 to answer exactly.

    Duck-typed replacement for
    :class:`~repro.cache.predictor.HitMissPredictor`: ``predict`` runs the
    access against a private model of the shared L2 banks, so every answer
    matches what the simulator will observe for the same access stream.
    """

    #: ``predict`` runs the access against the private L2 model, so every
    #: call advances cache state — the answer depends on how many times the
    #: compiler asked before.  Memoization layers that would skip repeat
    #: location queries (the window scheduler's split cache) must stay off.
    pure_predict = False

    def __init__(self, machine: Machine):
        self.machine = machine
        self._l2 = CacheSystem(
            machine.node_count,
            machine.l1_config,
            machine.l2_config,
            machine.bank_to_node,
        )
        self.stats = PredictorStats()

    def predict(self, address: int) -> bool:
        mapping = self.machine.mapping
        block = mapping.l2.block_of(address)
        bank = mapping.l2.bank_of(address)
        hit = self._l2.l2_banks[bank].access(block)
        self.stats.correct += 1  # the oracle is always right
        return hit

    def train(self, address: int, was_hit: bool) -> None:
        """No-op: the oracle needs no training."""

    def predict_and_train(self, address: int, was_hit: bool) -> bool:
        return self.predict(address)

    def accuracy(self) -> float:
        return 1.0

    def reset(self) -> None:
        self._l2.clear()
        self.stats = PredictorStats()


def partition_with_ideal_analysis(
    machine: Machine,
    program: Program,
    config: Optional[PartitionConfig] = None,
) -> PartitionResult:
    """Partition with perfect data analysis (Figure 17's third bar).

    Oracle predictor + a generous L1-reuse model stand in for the paper's
    profile-everything run; the result upper-bounds what better compiler
    analysis could buy.
    """
    base = config or PartitionConfig()
    window = replace(base.window, l1_model_blocks=max(base.window.l1_model_blocks, 512))
    ideal_config = replace(base, window=window, use_predictor=False)
    partitioner = NdpPartitioner(machine, ideal_config)
    partitioner.predictor = OracleL2Predictor(machine)  # type: ignore[assignment]
    return partitioner.partition(program)
