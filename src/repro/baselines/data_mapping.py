"""Profile-based data-to-MC page mapping (paper Section 6.5, Figure 23).

For each memory page, record how often each core accesses it (under a given
computation placement), then map the page to the memory controller
preferred by the plurality of those cores — a core's preferred MC being its
nearest corner controller.  The paper notes this is a profile-based scheme
not implementable at compile time; it is evaluated standalone (second bar of
Figure 23) and combined with our computation mapping (third bar).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.arch.machine import Machine
from repro.core.subcomputation import Subcomputation


def preferred_mc(machine: Machine, node: int) -> int:
    """The corner controller nearest to ``node`` (deterministic ties)."""
    return min(machine.mc_nodes, key=lambda mc: (machine.distance(node, mc), mc))


def profile_page_mc_mapping(
    machine: Machine, units: Sequence[Subcomputation]
) -> Dict[int, int]:
    """page -> MC node mapping from a schedule's access profile.

    ``units`` carry the computation placement (their ``node``) and the
    accesses (gathered + store); the result plugs into
    :class:`~repro.sim.engine.SimConfig` as ``mc_override``.
    """
    votes: Dict[int, Dict[int, int]] = {}
    layout = machine.layout
    for unit in units:
        accesses = [g.access for g in unit.gathered]
        if unit.store is not None:
            accesses.append(unit.store)
        mc = preferred_mc(machine, unit.node)
        for access in accesses:
            page = layout.page_of(access.array, access.index)
            page_votes = votes.setdefault(page, {})
            page_votes[mc] = page_votes.get(mc, 0) + 1
    mapping: Dict[int, int] = {}
    for page, page_votes in votes.items():
        mapping[page] = max(sorted(page_votes), key=lambda mc: page_votes[mc])
    return mapping
