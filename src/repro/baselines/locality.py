"""LLC-locality comparison placements (paper Section 6.1).

The paper validates its default strategy against two prior locality schemes
— Lu et al. [49] (data layout transformation for NUCA locality) and Ding et
al. [17] (locality-aware mapping/scheduling) — reporting that the
profile-guided default beats them by ~8.3% and ~12.6%.  We provide the two
analogous placements:

* :func:`llc_locality_placement` — owner-computes at LLC granularity: each
  iteration runs on the home node of its (first) output, the classic
  Ding13-style LLC-affinity mapping without profile information.
* :func:`block_cyclic_placement` — a locality-agnostic block-cyclic
  distribution of iterations, the Lu09-style layout stand-in: good balance,
  no placement intelligence.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.machine import Machine
from repro.baselines.default_placement import PlacementResult, placement_from_assignment
from repro.ir.program import Program
from repro.ir.statement import StatementInstance


def llc_locality_placement(machine: Machine, program: Program) -> PlacementResult:
    """Owner-computes: run each instance on its output's home bank node."""
    program.declare_on(machine)

    def assign(instance: StatementInstance) -> int:
        return machine.home_node(instance.write.array, instance.write.index)

    return placement_from_assignment(machine, program, assign)


def block_cyclic_placement(
    machine: Machine, program: Program, block: int = 4
) -> PlacementResult:
    """Distribute iterations block-cyclically over all nodes."""
    program.declare_on(machine)
    state: Dict[str, int] = {}
    body_sizes = {nest.name: nest.body_size for nest in program.nests}

    def assign(instance: StatementInstance) -> int:
        position = state.get(instance.nest_name, 0)
        state[instance.nest_name] = position + 1
        iteration = position // body_sizes[instance.nest_name]
        return (iteration // block) % machine.node_count

    return placement_from_assignment(machine, program, assign)
