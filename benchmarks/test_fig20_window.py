"""Figure 20 benchmark: fixed window sizes 1..8 vs the adaptive choice."""

from conftest import SWEEP_APPS, run_once

from repro.experiments import fig20_window


def test_fig20(benchmark):
    result = run_once(benchmark, lambda: fig20_window.run(apps=SWEEP_APPS))
    print()
    print(result.report())
    for app, values in result.reductions.items():
        fixed = [values[str(s)] for s in range(1, 9)]
        adaptive = values["adaptive"]
        # Shape: the adaptive per-nest choice is competitive with the best
        # fixed size (paper: it beats it; we allow small sampling slack).
        assert adaptive >= max(fixed) - 0.08
