"""Figure 14 benchmark: degree of subcomputation parallelism."""

from conftest import run_once

from repro.experiments import fig14_parallelism


def test_fig14(benchmark):
    result = run_once(benchmark, fig14_parallelism.run)
    print()
    print(result.report())
    # Shape: split apps exceed degree 1 (real intra-statement parallelism);
    # every app reports at least the trivial degree.
    values = result.parallelism
    assert all(avg >= 1.0 and worst >= 1 for avg, worst in values.values())
    assert any(worst >= 2 for _, worst in values.values())
