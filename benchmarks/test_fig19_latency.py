"""Figure 19 benchmark: NoC latency reduction (no added congestion)."""

from conftest import run_once

from repro.experiments import fig19_latency


def test_fig19(benchmark):
    result = run_once(benchmark, fig19_latency.run)
    print()
    print(result.report())
    # Shape: the optimization never creates a network bottleneck — the
    # split applications reduce average latency; nobody regresses much.
    assert all(avg >= -0.10 for avg, _ in result.reductions.values())
    assert any(avg > 0.05 for avg, _ in result.reductions.values())
