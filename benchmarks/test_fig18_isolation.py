"""Figure 18 benchmark: per-metric contribution (S1..S4)."""

from conftest import run_once

from repro.experiments import fig18_isolation


def test_fig18(benchmark):
    result = run_once(benchmark, fig18_isolation.run)
    print()
    print(result.report())
    s1, s2, s3, s4 = result.geomeans()
    # Shape (paper): movement (S2) and parallelism (S3) help; sync costs
    # (S4) alone can only hurt the default.
    assert s2 >= 0.95
    assert s3 >= 1.0
    assert s4 <= 1.0 + 1e-9
