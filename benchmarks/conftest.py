"""Benchmark configuration.

Each benchmark runs its experiment once (``pedantic(rounds=1)``): the
experiments are full compile+simulate pipelines, and the in-process
comparison cache (:mod:`repro.experiments.common`) is shared across
benchmarks in the session, so the 12-app comparison is paid once.
"""

import pytest

#: Apps used by the heavy parameter sweeps (window sizes, mode grids):
#: two strong splitters and the star-preferring Cholesky as the control.
SWEEP_APPS = ["barnes", "cholesky", "radix"]


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
