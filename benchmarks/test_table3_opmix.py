"""Table 3 benchmark: operator mix of re-mapped computations."""

from conftest import run_once

from repro.experiments import table3_opmix


def test_table3(benchmark):
    result = run_once(benchmark, table3_opmix.run)
    print()
    print(result.report())
    for app, mix in result.mixes.items():
        total = sum(mix.values())
        # Apps that re-map nothing report an all-zero mix; the rest sum to 1.
        assert total == 0 or abs(total - 1.0) < 1e-6
    # At least a third of the suite re-maps computations.
    active = [m for m in result.mixes.values() if sum(m.values()) > 0]
    assert len(active) >= 4
