"""Ablation benchmarks for the design choices DESIGN.md calls out.

* reuse-aware vs reuse-agnostic windows (the paper's Section 6.3 reports
  the agnostic variant ~11% worse);
* transitive-closure sync minimization on/off (arc-count effect);
* load-balance threshold sweep around the paper's 10%;
* level-based (structured) vs paper-literal flattened operand sets.
"""

import itertools

import pytest
from conftest import run_once

from repro.core.balancer import LoadBalancer
from repro.core.locator import DataLocator
from repro.core.window import WindowConfig, WindowScheduler
from repro.experiments.common import compare_app, paper_machine
from repro.workloads import build_workload

APPS = ["barnes", "ocean"]


def schedule_nest_movement(app, **window_kwargs):
    machine = paper_machine()
    program = build_workload(app)
    program.declare_on(machine)
    config = WindowConfig(always_split=True, **window_kwargs)
    scheduler = WindowScheduler(machine, DataLocator(machine), config)
    nest = program.nests[0]
    schedule = scheduler.schedule_nest(program, nest, 8)
    return schedule


def test_ablation_reuse_aware_windows(benchmark):
    def run():
        rows = {}
        for app in APPS:
            aware = schedule_nest_movement(app, reuse_aware=True).movement
            agnostic = schedule_nest_movement(app, reuse_aware=False).movement
            rows[app] = (aware, agnostic)
        return rows

    rows = run_once(benchmark, run)
    print()
    for app, (aware, agnostic) in rows.items():
        delta = (agnostic - aware) / max(agnostic, 1)
        print(f"  {app}: reuse-aware {aware}  agnostic {agnostic}  ({delta:+.1%})")
        # Section 6.3: ignoring reuse moves more data.
        assert aware <= agnostic


def test_ablation_sync_minimization(benchmark):
    def run():
        rows = {}
        for app in APPS:
            schedule = schedule_nest_movement(app)
            rows[app] = (schedule.sync_count, schedule.sync_count_unminimized)
        return rows

    rows = run_once(benchmark, run)
    print()
    for app, (minimized, unminimized) in rows.items():
        print(f"  {app}: syncs {minimized} (was {unminimized})")
        assert minimized <= unminimized


def test_ablation_balance_threshold(benchmark):
    def run():
        rows = {}
        for threshold in (0.0, 0.10, 0.50):
            schedule = schedule_nest_movement(APPS[0], balance_threshold=threshold)
            rows[threshold] = schedule.movement
        return rows

    rows = run_once(benchmark, run)
    print()
    for threshold, movement in rows.items():
        print(f"  threshold {threshold:.2f}: movement {movement}")
    # The knob perturbs placement but must not break scheduling.
    assert all(v > 0 for v in rows.values())


def test_ablation_flattened_products(benchmark):
    def run():
        structured = schedule_nest_movement(APPS[0], flatten_products=False).movement
        flattened = schedule_nest_movement(APPS[0], flatten_products=True).movement
        return structured, flattened

    structured, flattened = run_once(benchmark, run)
    print(f"\n  structured sets: {structured}  paper-literal flattened: {flattened}")
    # Both are valid schedules with comparable movement (within 25%).
    assert abs(structured - flattened) <= 0.25 * max(structured, flattened)
