"""Figure 22 benchmark: cluster mode x memory mode grid."""

from conftest import SWEEP_APPS, run_once

from repro.experiments import fig22_modes


def test_fig22(benchmark):
    result = run_once(benchmark, lambda: fig22_modes.run(apps=SWEEP_APPS))
    print()
    print(result.report())
    # Paper's observations on the grid:
    for cluster in "ABC":
        for memory in "XY":
            original = result.geomean_for((cluster, memory, 1))
            optimized = result.geomean_for((cluster, memory, 2))
            # (1) the optimization helps (or at worst matches) everywhere.
            assert optimized >= original * 0.97
    # (3) flat memory beats cache mode for the optimized code.
    assert result.geomean_for(("B", "X", 2)) >= result.geomean_for(("B", "Y", 2)) * 0.9
