"""Figure 23 benchmark: computation mapping vs data-to-MC mapping."""

from conftest import run_once

from repro.experiments import fig23_data_mapping


def test_fig23(benchmark):
    result = run_once(benchmark, fig23_data_mapping.run)
    print()
    print(result.report())
    # Shape (paper): on the applications where computation mapping acts, it
    # beats data mapping alone, and the combination never does much worse
    # than either ingredient.  Arithmetic means are robust to the gated
    # zeros (geometric means floor at ~0).
    ours = [r[0] for r in result.reductions.values()]
    data = [r[1] for r in result.reductions.values()]
    combined = [r[2] for r in result.reductions.values()]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(ours) >= mean(data) - 0.05
    assert mean(combined) >= mean(data) - 0.05
