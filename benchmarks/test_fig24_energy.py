"""Figure 24 benchmark: energy reduction."""

from conftest import run_once

from repro.experiments import fig24_energy


def test_fig24(benchmark):
    result = run_once(benchmark, fig24_energy.run)
    print()
    print(result.report())
    reductions = result.reductions
    # Shape: no app burns more energy; the movement winners save real
    # energy; ideal scenarios bound ours from above.
    assert all(ours >= -0.02 for ours, _, _ in reductions.values())
    assert any(ours > 0.05 for ours, _, _ in reductions.values())
    for ours, net, ana in reductions.values():
        assert net >= ours - 1e-9 and ana >= ours - 1e-9
