"""Figure 16 benchmark: L1 hit-rate improvement."""

from conftest import run_once

from repro.experiments import fig16_l1


def test_fig16(benchmark):
    result = run_once(benchmark, fig16_l1.run)
    print()
    print(result.report())
    # Shape: hit rates are valid probabilities and the split schedules keep
    # L1 behaviour within a few points of the locality-optimized default
    # while eliminating most of its network traffic (Fig 13).
    for app in result.improvement:
        assert 0.0 <= result.default_rate[app] <= 1.0
        assert 0.0 <= result.optimized_rate[app] <= 1.0
        assert result.improvement[app] >= -0.12
