"""Figure 15 benchmark: synchronizations per statement."""

from conftest import run_once

from repro.experiments import fig15_syncs


def test_fig15(benchmark):
    result = run_once(benchmark, fig15_syncs.run)
    print()
    print(result.report())
    for app, (minimized, unminimized) in result.syncs.items():
        assert 0.0 <= minimized <= unminimized
    # The transitive-closure minimization has visible effect somewhere, or
    # there are no redundant arcs at all (both acceptable); syncs stay
    # bounded (paper: a few per statement at most).
    assert all(m <= 8 for m, _ in result.syncs.values())
