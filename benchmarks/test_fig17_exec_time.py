"""Figure 17 benchmark: execution-time reduction vs ideal scenarios."""

from conftest import run_once

from repro.experiments import fig17_exec_time


def test_fig17(benchmark):
    result = run_once(benchmark, fig17_exec_time.run)
    print()
    print(result.report())
    reductions = result.reductions
    # Shape: never negative (gate), several substantial winners, and the
    # ideal scenarios bound our result from above per application.
    assert all(ours >= -0.02 for ours, _, _ in reductions.values())
    assert sum(1 for ours, _, _ in reductions.values() if ours > 0.10) >= 3
    for ours, ideal_net, ideal_ana in reductions.values():
        assert ideal_net >= ours - 1e-9
        assert ideal_ana >= ours - 1e-9
