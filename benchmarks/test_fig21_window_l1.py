"""Figure 21 benchmark: L1 hit rate across window sizes."""

from conftest import SWEEP_APPS, run_once

from repro.experiments import fig21_window_l1


def test_fig21(benchmark):
    result = run_once(benchmark, lambda: fig21_window_l1.run(apps=SWEEP_APPS))
    print()
    print(result.report())
    # Shape: hit-rate deltas stay in a sane band across all sizes.
    for values in result.improvements.values():
        assert all(-0.5 <= delta <= 0.5 for delta in values.values())
