"""Table 2 benchmark: L2 hit/miss predictor accuracy."""

from conftest import run_once

from repro.experiments import table2_predictor


def test_table2(benchmark):
    result = run_once(benchmark, table2_predictor.run)
    print()
    print(result.report())
    # Shape: accuracies in the paper's 60-95% band for every application.
    assert all(0.55 <= a <= 1.0 for a in result.accuracy.values())
