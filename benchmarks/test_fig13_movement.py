"""Figure 13 benchmark: data movement reduction over the default."""

from conftest import run_once

from repro.experiments import fig13_movement


def test_fig13(benchmark):
    result = run_once(benchmark, fig13_movement.run)
    print()
    print(result.report())
    reductions = result.reductions
    # Shape: no application regresses (the gate guarantees it), several
    # improve substantially, and Cholesky/LU sit at the bottom (small
    # original network footprint), as in the paper.
    assert all(avg >= -0.02 for avg, _ in reductions.values())
    winners = [app for app, (avg, _) in reductions.items() if avg > 0.08]
    assert len(winners) >= 3
    low = min(reductions[a][0] for a in ("cholesky", "lu"))
    assert low <= max(avg for avg, _ in reductions.values()) / 2
