"""Section 6.1 claim: the profile-guided default beats prior locality schemes.

The paper validates its baseline against Lu et al. [49] and Ding et al. [17]
style LLC-locality placements (reporting ~8.3% and ~12.6% average advantage)
before measuring anything on top of it.  We compare the same three
placements on representative applications.
"""

from conftest import run_once

from repro.baselines.default_placement import DefaultPlacement
from repro.baselines.locality import block_cyclic_placement, llc_locality_placement
from repro.experiments.common import paper_machine
from repro.sim.engine import run_schedule
from repro.workloads import build_workload

APPS = ["barnes", "ocean", "radix"]


def measure(app, placement_factory):
    machine = paper_machine()
    program = build_workload(app)
    placement = placement_factory(machine, program)
    return run_schedule(machine, placement.units).total_cycles


def test_default_vs_prior_locality_schemes(benchmark):
    def run():
        rows = {}
        for app in APPS:
            default = measure(app, lambda m, p: DefaultPlacement(m).place(p))
            owner = measure(app, llc_locality_placement)
            cyclic = measure(app, lambda m, p: block_cyclic_placement(m, p))
            rows[app] = (default, owner, cyclic)
        return rows

    rows = run_once(benchmark, run)
    print()
    beats_cyclic = 0
    for app, (default, owner, cyclic) in rows.items():
        vs_owner = (owner - default) / owner
        vs_cyclic = (cyclic - default) / cyclic
        print(
            f"  {app}: default {default:.0f} cyc | vs owner-computes "
            f"{vs_owner:+.1%} | vs block-cyclic {vs_cyclic:+.1%}"
        )
        beats_cyclic += default <= cyclic * 1.05
    # The profile default dominates the placement-agnostic block-cyclic
    # scheme on the majority of apps, as in the paper.  KNOWN DEVIATION
    # (EXPERIMENTS.md): owner-computes can beat it here — our bank-phased
    # NDP-friendly allocation makes store-home placement unusually strong,
    # a geometry the paper's uncontrolled application footprints lack.
    assert beats_cyclic >= 2
