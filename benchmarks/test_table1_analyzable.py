"""Table 1 benchmark: compile-time-analyzable reference fractions."""

from conftest import run_once

from repro.experiments import table1_analyzable


def test_table1(benchmark):
    result = run_once(benchmark, table1_analyzable.run)
    print()
    print(result.report())
    # Shape: every app between 60% and 100%, Cholesky the most analyzable
    # of the Splash-2 set, Barnes the least (heaviest indirect access).
    fractions = result.fractions
    assert all(0.6 <= f <= 1.0 for f in fractions.values())
    assert fractions["cholesky"] == max(fractions.values())
    assert fractions["barnes"] == min(fractions.values())
