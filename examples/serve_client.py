#!/usr/bin/env python
"""Compile-as-a-service walkthrough: daemon, cache, batch, drain.

Boots a `repro.serve` daemon in-process (workers=0: compiles run inline,
no forking — same HTTP surface as production), then walks the service
lifecycle a real client would see:

1. a cold compile request (cache miss — the daemon compiles),
2. the identical request again (cache hit — one disk read, and the
   response bytes are identical to the first),
3. a request with a different predictor (a *different* fingerprint:
   predictor choice is part of the cache key),
4. a batch request mixing hits and misses,
5. `/stats` counters, then a clean drain via `/shutdown`.

Run:  python examples/serve_client.py
"""

import json
import tempfile

from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.request import CompileRequest


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="serve_example_")
    daemon = ServeDaemon(
        ServeConfig(workers=0, cache_dir=cache_dir)
    ).start()
    print(f"daemon listening on {daemon.url} (cache: {cache_dir})")

    request = {"app": "tiny", "seed": 7}
    fingerprint = CompileRequest.from_json(dict(request)).fingerprint()
    print(f"\nrequest {request} -> fingerprint {fingerprint}")

    with ServeClient(daemon.url) as client:
        # 1. Cold: the daemon compiles and stores the artifact.
        first, cache = client.compile_raw(dict(request))
        artifact = json.loads(first)
        print(f"cold:  X-Cache={cache}  movement={artifact['movement']}")

        # 2. Warm: same fingerprint, served from the store, same bytes.
        second, cache = client.compile_raw(dict(request))
        print(f"warm:  X-Cache={cache}  byte-identical={first == second}")

        # 3. Predictor choice is part of the key: this is a new compile.
        analytic = {**request, "predictor": "analytic"}
        print(
            "analytic fingerprint:",
            CompileRequest.from_json(dict(analytic)).fingerprint(),
        )
        _, cache = client.compile_raw(analytic)
        print(f"analytic:  X-Cache={cache}")

        # 4. Batch: members are independent (own cache slot each).
        batch = client.batch([dict(request), {"app": "tiny", "seed": 8}])
        print(f"batch: cache={batch['cache']}")

        # 5. Counters, then drain.
        stats = client.stats()
        print(
            f"stats: {stats['requests']} requests, "
            f"{stats['cache_hits']} hits, {stats['compiles']} compiles, "
            f"{stats['store']['entries']} artifacts on disk"
        )
        print(f"shutdown: {client.shutdown()}")

    clean = daemon.stop()
    print(f"drained cleanly: {clean}")


if __name__ == "__main__":
    main()
