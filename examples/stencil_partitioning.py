#!/usr/bin/env python
"""Ocean-style stencil partitioning: where the paper's approach shines.

A 2-D relaxation stencil on long rows: the vertical neighbors of every
point live a whole grid row away, so the iteration-granularity default
fetches them across the chip every time, while the NDP partitioner combines
them at their home banks.  The example sweeps the window size to show the
Section 4.4 trade-off, then prints the adaptive result.

Run:  python examples/stencil_partitioning.py
"""

from repro.baselines import DefaultPlacement
from repro.core import NdpPartitioner, PartitionConfig
from repro.core.window import WindowConfig
from repro.experiments.common import paper_machine
from repro.sim import run_schedule
from repro.workloads import build_workload


def main() -> None:
    app = "ocean"
    m_default = paper_machine()
    placement = DefaultPlacement(m_default).place(build_workload(app))
    default = run_schedule(m_default, placement.units)
    print(f"default   : {default.summary()}")

    m_adaptive = paper_machine()
    adaptive = NdpPartitioner(m_adaptive, PartitionConfig()).partition(
        build_workload(app)
    )
    m_adaptive.mcdram.reset()
    adaptive_metrics = run_schedule(m_adaptive, adaptive.units())
    print(f"adaptive  : {adaptive_metrics.summary()}")
    print(f"  chosen window sizes: {adaptive.window_sizes}")
    print(f"  plan: {adaptive.variant_by_nest}")

    print("\nFixed window sizes (Section 4.4 sweep):")
    base = default.total_cycles
    for size in (1, 2, 4, 8):
        m = paper_machine()
        config = PartitionConfig(
            adaptive_window=False,
            fixed_window_size=size,
            split_plan_override=adaptive.split_plan,
        )
        result = NdpPartitioner(m, config).partition(build_workload(app))
        m.mcdram.reset()
        metrics = run_schedule(m, result.units())
        reduction = (base - metrics.total_cycles) / base
        print(
            f"  window={size}: time reduction {reduction:+7.1%}  "
            f"movement={metrics.data_movement}  L1={metrics.l1_hit_rate():.3f}"
        )


if __name__ == "__main__":
    main()
