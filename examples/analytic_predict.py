#!/usr/bin/env python
"""Walkthrough: affine access functions -> predicted misses -> partition.

The analytic locality model (DESIGN.md §12) predicts L2 hit/miss verdicts
*in closed form* from a nest's affine structure — no trace, no cache
simulation.  This example walks every step on one loop nest:

1. resolve the nest's affine access functions over the whole iteration
   space (:func:`repro.ir.affine.access_table`);
2. derive the closed-form locality quantities: cache-line footprint per
   L2 bank, short-reuse-distance hits, footprint-fits temporal hits;
3. reduce them to per-region on-chip/off-chip verdicts and compare
   against the trace-trained predictor (the default and the oracle);
4. partition the program once with each predictor and compare the
   resulting data-movement decision.

Run:  python examples/analytic_predict.py
"""

from repro.arch.knl import small_machine
from repro.cache.predictor import HitMissPredictor
from repro.core.locality import AnalyticMissPredictor
from repro.core.partitioner import NdpPartitioner, train_predictor
from repro.ir.affine import access_table
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.pipeline import session_for
from repro.pipeline.passes import predictor_pass_order


def build_program() -> Program:
    """One nest mixing heavy reuse (S, a stencil row) with streaming (V)."""
    program = Program("walkthrough")
    n = 2048
    program.declare("OUT", n)
    program.declare("S", n)      # re-read at i-1 / i / i+1: strong reuse
    program.declare("V", 4 * n)  # stride-4 stream: one touch per line
    program.add_nest(
        LoopNest.of(
            [Loop("i", 1, n - 1)],
            [parse_statement("OUT(i) = S(i-1) + S(i) + S(i+1) + V(4*i)")],
            "stencil",
        )
    )
    return program


def show_access_functions(machine, program) -> None:
    nest = program.nests[0]
    table = access_table(program, nest)
    print("== 1. closed-form access columns (first 5 iterations) ==")
    for r, column in enumerate(table.reads[0]):
        head = ", ".join(str(int(v)) for v in column.indices[:5])
        print(f"  read {r}: {column.array}[{head}, ...]  affine={column.affine}")
    write = table.writes[0]
    head = ", ".join(str(int(v)) for v in write.indices[:5])
    print(f"  write : {write.array}[{head}, ...]")
    print()


def show_model(machine, predictor: AnalyticMissPredictor) -> None:
    model = predictor.model
    print("== 2. closed-form locality quantities ==")
    capacity = machine.l2_config.line_count
    for nest in model.nests:
        print(
            f"  nest {nest.nest_name!r}: {nest.accesses} accesses, "
            f"{nest.distinct_lines} distinct lines, "
            f"{nest.short_reuse_hits} short-reuse hits, "
            f"{nest.temporal_hits} temporal hits "
            f"-> modeled hit fraction {nest.hit_fraction:.3f}"
        )
    pressured = sum(
        1 for count in model.bank_footprint.values() if count > capacity
    )
    print(
        f"  bank footprints: {len(model.bank_footprint)} banks touched, "
        f"{pressured} over capacity ({capacity} lines/bank)"
    )
    print()
    print("== 3. per-region verdicts ==")
    on_chip = sum(1 for v in model.region_verdicts.values() if v)
    print(
        f"  {len(model.region_verdicts)} regions analyzed, "
        f"{on_chip} predicted on-chip "
        f"({100 * model.hit_region_fraction:.1f}%)"
    )


def compare_with_trace(analytic_pair, trace_pair) -> None:
    (analytic_machine, analytic_program, analytic) = analytic_pair
    (trace_machine, trace_program, trace) = trace_pair
    agree = total = 0
    pairs = zip(analytic_program.instances(), trace_program.instances())
    for analytic_instance, trace_instance in pairs:
        for a_access, t_access in zip(
            analytic_instance.accesses(), trace_instance.accesses()
        ):
            a = analytic_machine.layout.pa_of(a_access.array, a_access.index)
            t = trace_machine.layout.pa_of(t_access.array, t_access.index)
            agree += analytic.predict(a) == trace.predict(t)
            total += 1
    print(f"  agreement with the trace-trained oracle: {agree / total:.3f}")
    print()


def partition_with(predictor_name: str):
    session = session_for(
        small_machine(), pass_order=predictor_pass_order(predictor_name)
    )
    partition = NdpPartitioner.from_session(session).partition(build_program())
    return partition


def main() -> int:
    analytic_machine, analytic_program = small_machine(), build_program()
    show_access_functions(analytic_machine, analytic_program)
    analytic = AnalyticMissPredictor(analytic_machine, analytic_program)
    show_model(analytic_machine, analytic)

    trace_machine, trace_program = small_machine(), build_program()
    trace = HitMissPredictor()
    train_predictor(trace_machine, trace_program, trace)
    compare_with_trace(
        (analytic_machine, analytic_program, analytic),
        (trace_machine, trace_program, trace),
    )

    print("== 4. the partition decision, per predictor ==")
    for name in ("trace", "analytic"):
        partition = partition_with(name)
        print(
            f"  {name:8s}: movement={partition.movement} "
            f"windows={partition.window_sizes} "
            f"variants={partition.variant_by_nest}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
