#!/usr/bin/env python
"""Observability tour: trace a compile, read the events, build a report.

Runs the built-in tiny app (sub-second) through the full pipeline with
tracing enabled, then shows the three faces of the observability layer
(DESIGN.md §8):

1. the structured JSONL trace — span hierarchy and the compiler's
   decision points (window-size candidates, gate verdicts);
2. the per-link NoC heatmap, whose volumes sum exactly to the run's
   DataMovement metric;
3. the validated ``report.json`` the CLI's ``report`` subcommand writes.

Run:  python examples/trace_report.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import build_report, heatmap_of, summary_lines, validate_report
from repro.obs.tracer import read_events, strip_wall_times


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    trace_path = workdir / "trace.jsonl"
    report_path = workdir / "report.json"

    # One call runs default + optimized, traces everything, and validates
    # the result against the versioned schema (repro.obs.schema).
    report = build_report("tiny", trace_file=str(trace_path))
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True))

    print("== headline summary ==")
    print("\n".join(summary_lines(report)))

    print("\n== span hierarchy (from B/E event order) ==")
    depth = 0
    for event in read_events(str(trace_path)):
        if event["ev"] == "E":
            depth -= 1
        if event["ev"] in ("B",):
            print("  " * depth + event["name"])
            depth += 1

    print("\n== decision points ==")
    for event in strip_wall_times(read_events(str(trace_path))):
        if event["name"] in ("window.candidate", "gate.candidate", "gate.verdict", "gate.skip"):
            print(f"{event['name']:<18} {event.get('data', {})}")

    print("\n== NoC link heatmap (flits per link; sums to DataMovement) ==")
    heatmap = heatmap_of(report)
    print(heatmap.ascii_grid())
    assert heatmap.total_flit_hops() == report["optimized"]["data_movement"]
    print(f"total flit-hops = {heatmap.total_flit_hops()} "
          f"= optimized data_movement = {report['optimized']['data_movement']}")

    assert validate_report(report) == []
    print(f"\nreport is schema-valid; artifacts in {workdir}")


if __name__ == "__main__":
    main()
