#!/usr/bin/env python
"""KNL cluster and memory modes (the paper's Figure 22, one app).

Runs one workload under every (cluster mode, memory mode) combination, with
and without the NDP optimization, normalized to the default quadrant+flat
configuration — the same grid the paper sweeps on real hardware.

Run:  python examples/knl_modes.py [app]
"""

import sys

from repro.arch import ClusterMode, MemoryMode
from repro.baselines import DefaultPlacement
from repro.core import NdpPartitioner, PartitionConfig
from repro.experiments.common import paper_machine
from repro.sim import run_schedule
from repro.workloads import ALL_WORKLOAD_NAMES, build_workload


def run_pair(app, cluster, memory):
    m_default = paper_machine(cluster, memory)
    placement = DefaultPlacement(m_default).place(build_workload(app))
    default = run_schedule(m_default, placement.units)

    m_optimized = paper_machine(cluster, memory)
    result = NdpPartitioner(m_optimized, PartitionConfig()).partition(
        build_workload(app)
    )
    m_optimized.mcdram.reset()
    optimized = run_schedule(m_optimized, result.units())
    return default.total_cycles, optimized.total_cycles


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    if app not in ALL_WORKLOAD_NAMES:
        raise SystemExit(f"unknown app {app!r}; pick from {ALL_WORKLOAD_NAMES}")
    print(f"app: {app} (normalized to quadrant+flat original = 1.00)\n")

    baseline, _ = run_pair(app, ClusterMode.QUADRANT, MemoryMode.FLAT)
    print(f"{'config':<22}{'original':>10}{'optimized':>11}")
    for cluster in (ClusterMode.ALL_TO_ALL, ClusterMode.QUADRANT, ClusterMode.SNC4):
        for memory in (MemoryMode.FLAT, MemoryMode.CACHE):
            default_cycles, optimized_cycles = run_pair(app, cluster, memory)
            label = f"({cluster.label},{memory.label}) {cluster.name}/{memory.name}"
            print(
                f"{label:<22}{baseline / default_cycles:>10.2f}"
                f"{baseline / optimized_cycles:>11.2f}"
            )


if __name__ == "__main__":
    main()
