#!/usr/bin/env python
"""Irregular workloads: indirect accesses and the inspector-executor.

Radix-sort-style histogram/scatter kernels write through index arrays
(``CNT(K(i)) += ...``): the subscripts are unknown at compile time
(may-dependences).  The inspector materializes the concrete accesses from
the runtime index data; the executor (the partitioner) then schedules with
exact knowledge, as in the paper's Section 4.5.

Run:  python examples/irregular_inspector.py
"""

from repro.baselines import DefaultPlacement
from repro.core import NdpPartitioner, PartitionConfig
from repro.experiments.common import paper_machine
from repro.ir import InspectorExecutor, analyzable_fraction
from repro.sim import run_schedule
from repro.workloads import build_workload


def main() -> None:
    program = build_workload("radix")
    print(f"program: {program!r}")
    print(f"compile-time-analyzable references: {analyzable_fraction(program):.1%}")

    inspector = InspectorExecutor(program, inspect_iterations=8)
    for name, result in inspector.inspect_all().items():
        print(
            f"inspector[{name}]: {result.instances_inspected} instances, "
            f"{result.indirect_reference_count} indirect refs, "
            f"{len(result.dependences)} dependences observed"
        )

    m_default = paper_machine()
    placement = DefaultPlacement(m_default).place(build_workload("radix"))
    default = run_schedule(m_default, placement.units)

    m_optimized = paper_machine()
    result = NdpPartitioner(m_optimized, PartitionConfig()).partition(
        build_workload("radix")
    )
    m_optimized.mcdram.reset()
    optimized = run_schedule(m_optimized, result.units())

    print(f"\ndefault  : {default.summary()}")
    print(f"optimized: {optimized.summary()}")
    base = default.total_cycles
    print(f"time reduction: {(base - optimized.total_cycles) / base:+.1%}")
    print(
        "movement reduction: "
        f"{(default.data_movement - optimized.data_movement) / default.data_movement:+.1%}"
    )


if __name__ == "__main__":
    main()
