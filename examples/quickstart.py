#!/usr/bin/env python
"""Quickstart: partition one loop nest and compare against the default.

Builds a small program (two statements sharing an operand, like the paper's
Figure 11), runs the locality-optimized default placement and the NDP
partitioner on a KNL-template machine, simulates both, and prints the
movement / time / L1 numbers plus a snippet of the generated per-node code.

Run:  python examples/quickstart.py
"""

from repro.arch import Machine, MachineConfig
from repro.baselines import DefaultPlacement
from repro.core import NdpPartitioner, PartitionConfig, generate_code
from repro.ir import Loop, LoopNest, Program, parse_statement
from repro.sim import run_schedule


def build_program() -> Program:
    program = Program("quickstart")
    n = 4096
    # Nearby bank phases: same-index operands land on neighboring L2
    # banks (the NDP-friendly allocation the paper's OS support enables),
    # so the MST combines them with short hops while the default placement
    # hauls each one to its execution core.
    for phase, name in ((4, "B"), (4, "C"), (12, "D"), (12, "E"), (4, "Y")):
        program.declare(name, 8 * n, bank_phase=phase)
    program.declare("A", 4 * n + 8, bank_phase=20)
    program.declare("X", 4 * n + 8, bank_phase=22)
    program.add_nest(
        LoopNest.of(
            [Loop("t", 0, 2), Loop("i", 0, n)],
            [
                parse_statement("A(4*i) = B(8*i)*C(8*i) + D(8*i)*E(8*i)"),
                parse_statement("X(4*i) = Y(8*i)*C(8*i) + B(8*i)"),
            ],
            "main",
        )
    )
    return program


def machine() -> Machine:
    return Machine(
        MachineConfig(
            mesh_cols=6, mesh_rows=6, l2_bank_count=32,
            l1_capacity=8 * 1024, l1_associativity=8,
        )
    )


def main() -> None:
    # Default: iteration-granularity, profile-guided chunk placement.
    m_default = machine()
    placement = DefaultPlacement(m_default).place(build_program())
    default = run_schedule(m_default, placement.units)
    print("default     :", default.summary())

    # Gated: the production pipeline — split only where the profile and the
    # empirical gate say it beats the default on time AND movement.
    m_gated = machine()
    gated = NdpPartitioner(m_gated, PartitionConfig()).partition(build_program())
    m_gated.mcdram.reset()
    gated_metrics = run_schedule(m_gated, gated.units())
    print("gated       :", gated_metrics.summary(), f"plan={gated.variant_by_nest}")

    # Forced split: the paper's always-split behaviour, to show the
    # subcomputation machinery regardless of the gate's verdict.
    from repro.core.window import WindowConfig

    m_split = machine()
    split = NdpPartitioner(
        m_split, PartitionConfig(window=WindowConfig(always_split=True))
    ).partition(build_program())
    m_split.mcdram.reset()
    split_metrics = run_schedule(m_split, split.units())
    print("always-split:", split_metrics.summary())

    base_mov, base_cyc = default.data_movement, default.total_cycles
    for label, metrics in (("gated", gated_metrics), ("always-split", split_metrics)):
        print(
            f"\n{label}: movement {(base_mov - metrics.data_movement) / base_mov:+.1%}, "
            f"time {(base_cyc - metrics.total_cycles) / base_cyc:+.1%}, "
            f"L1 {default.l1_hit_rate():.3f} -> {metrics.l1_hit_rate():.3f}"
        )

    print(
        "\n(The gate kept the default here: this toy kernel's dependence"
        "\n chains make splitting a net loss. See stencil_partitioning.py"
        "\n for a workload where the split schedule wins big.)"
    )
    print("\nGenerated per-node code (first statement instances, split plan):")
    schedules = []
    for nest_schedule in split.nest_schedules.values():
        for statement_schedule in nest_schedule.statement_schedules():
            schedules.append(statement_schedule)
            if len(schedules) == 2:
                break
        break
    print(generate_code(schedules).listing())


if __name__ == "__main__":
    main()
