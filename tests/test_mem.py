"""Unit tests for repro.mem: address mapping, page allocator, data layout."""

import pytest

from repro.errors import MappingError
from repro.mem.address import (
    AddressMapping,
    BitField,
    CacheLineInterleaving,
    PageInterleaving,
)
from repro.mem.dram import DDR4_PARAMS, MCDRAM_PARAMS
from repro.mem.layout import DataLayout
from repro.mem.page_alloc import PageAllocator


class TestBitField:
    def test_extract(self):
        field = BitField(4, 4)
        assert field.extract(0xAB) == 0xA

    def test_insert(self):
        field = BitField(4, 4)
        assert field.insert(0x0B, 0xC) == 0xCB

    def test_insert_overflow_rejected(self):
        with pytest.raises(MappingError):
            BitField(0, 2).insert(0, 4)

    def test_roundtrip(self):
        field = BitField(6, 5)
        address = 0b101_11010_110101
        assert field.insert(address, field.extract(address)) == address


class TestCacheLineInterleaving:
    def test_figure_2a_bits(self):
        # 64B lines, 32 banks, no fold: bank = bits 6..10 exactly.
        inter = CacheLineInterleaving(64, 32, hash_fold=False)
        address = 0b11111 << 6
        assert inter.bank_of(address) == 31
        assert inter.bank_of(address + 63) == 31  # same line

    def test_consecutive_blocks_consecutive_banks(self):
        inter = CacheLineInterleaving(64, 32, hash_fold=False)
        banks = [inter.bank_of(block * 64) for block in range(8)]
        assert banks == list(range(8))

    def test_block_of(self):
        inter = CacheLineInterleaving(64, 32)
        assert inter.block_of(129) == 2

    def test_bank_counts_power_of_two_required(self):
        with pytest.raises(MappingError):
            CacheLineInterleaving(64, 33)

    def test_fold_is_xor_linear(self):
        inter = CacheLineInterleaving(64, 32, hash_fold=True)
        page = 4096
        for address in (0, 640, 8192 + 320):
            expected = inter.page_bank_contribution(address, page) ^ inter.bank_of(
                address % page
            )
            # bank(addr) == contribution(page base) ^ bank(offset-in-page)
            assert inter.bank_of(address) == expected

    def test_page_contribution_no_fold_default_geometry(self):
        inter = CacheLineInterleaving(64, 32, hash_fold=False)
        # All bank bits live inside the 4KB page offset: contribution is the
        # bank of the page base, == 0 for aligned pages.
        assert inter.page_bank_contribution(8 * 4096, 4096) == 0


class TestPageInterleaving:
    def test_figure_2b_fields(self):
        inter = PageInterleaving(4096, 4, 4, 8)
        assert inter.channel_field.low == 12
        assert inter.rank_field.low == 14
        assert inter.bank_field.low == 16

    def test_channel_of(self):
        inter = PageInterleaving()
        assert inter.channel_of(3 << 12) == 3

    def test_same_page_same_channel(self):
        inter = PageInterleaving()
        base = 5 * 4096
        assert inter.channel_of(base) == inter.channel_of(base + 4095)

    def test_page_of(self):
        inter = PageInterleaving()
        assert inter.page_of(4096 * 7 + 123) == 7

    def test_with_channel(self):
        inter = PageInterleaving()
        moved = inter.with_channel(0, 2)
        assert inter.channel_of(moved) == 2


class TestPageAllocator:
    def test_translation_is_stable(self):
        alloc = PageAllocator(AddressMapping.default())
        assert alloc.translate(123456) == alloc.translate(123456)

    def test_distinct_pages_get_distinct_frames(self):
        alloc = PageAllocator(AddressMapping.default())
        a = alloc.translate_page(0)
        b = alloc.translate_page(1)
        assert a.physical_frame != b.physical_frame

    def test_preserves_channel_bits(self):
        alloc = PageAllocator(AddressMapping.default())
        mapping = alloc.mapping
        for va in range(0, 300000, 4096 + 64):
            pa = alloc.translate(va)
            assert mapping.memory.channel_of(pa) == mapping.memory.channel_of(va)

    def test_preserves_bank_bits(self):
        alloc = PageAllocator(AddressMapping.default())
        mapping = alloc.mapping
        for va in range(0, 300000, 777):
            pa = alloc.translate(va)
            assert mapping.l2.bank_of(pa) == mapping.l2.bank_of(va)

    def test_invariant_helper(self):
        alloc = PageAllocator(AddressMapping.default())
        assert alloc.preserves_location_bits(98765)

    def test_offset_preserved(self):
        alloc = PageAllocator(AddressMapping.default())
        pa = alloc.translate(4096 * 3 + 1234)
        assert pa % 4096 == 1234

    def test_mapped_page_count(self):
        alloc = PageAllocator(AddressMapping.default())
        alloc.translate(0)
        alloc.translate(100)      # same page
        alloc.translate(4096)     # new page
        assert alloc.mapped_page_count == 2


class TestDataLayout:
    def test_declare_and_lookup(self):
        layout = DataLayout()
        layout.declare("A", 100)
        assert layout.has_array("A")
        assert layout.spec("A").length == 100

    def test_double_declare_rejected(self):
        layout = DataLayout()
        layout.declare("A", 10)
        with pytest.raises(MappingError):
            layout.declare("A", 10)

    def test_unknown_array(self):
        with pytest.raises(MappingError):
            DataLayout().va_of("nope", 0)

    def test_bounds_check(self):
        layout = DataLayout()
        layout.declare("A", 10)
        with pytest.raises(MappingError):
            layout.va_of("A", 10)

    def test_consecutive_elements_share_block(self):
        layout = DataLayout()
        layout.declare("A", 100)
        assert layout.block_of("A", 0) == layout.block_of("A", 1)

    def test_block_advances_every_eight_doubles(self):
        layout = DataLayout()
        layout.declare("A", 100)
        assert layout.block_of("A", 8) == layout.block_of("A", 0) + 1

    def test_same_index_different_arrays_different_banks(self):
        layout = DataLayout()
        for name in "ABCDE":
            layout.declare(name, 1000)
        banks = {layout.l2_bank_of(name, 7) for name in "ABCDE"}
        assert len(banks) == 5  # the stagger spreads them

    def test_consecutive_blocks_consecutive_banks(self):
        layout = DataLayout()
        layout.declare("A", 10000)
        bank0 = layout.l2_bank_of("A", 0)
        bank1 = layout.l2_bank_of("A", 8)
        count = layout.mapping.l2.bank_count
        assert bank1 == (bank0 + 1) % count

    def test_same_block_helper(self):
        layout = DataLayout()
        layout.declare("A", 100)
        layout.declare("B", 100)
        assert layout.same_block("A", 0, "A", 7)
        assert not layout.same_block("A", 0, "B", 0)

    def test_total_bytes(self):
        layout = DataLayout()
        layout.declare("A", 100, element_size=8)
        layout.declare("B", 50, element_size=4)
        assert layout.total_bytes() == 1000


class TestDramParams:
    def test_mcdram_faster_than_ddr(self):
        assert MCDRAM_PARAMS.access_cycles < DDR4_PARAMS.access_cycles

    def test_scaled(self):
        scaled = DDR4_PARAMS.scaled(2.0)
        assert scaled.access_cycles == DDR4_PARAMS.access_cycles * 2
        assert scaled.name == DDR4_PARAMS.name
