"""Property-based tests (hypothesis) on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sram import CacheConfig, SetAssocCache
from repro.core.mst import kruskal, tree_weight
from repro.core.syncgraph import SyncGraph
from repro.ir.expr import AffineIndex
from repro.ir.nested_sets import build_operand_tree
from repro.ir.parser import parse_statement
from repro.mem.address import AddressMapping
from repro.mem.page_alloc import PageAllocator
from repro.noc.routing import xy_route_links
from repro.noc.topology import Mesh2D
from repro.utils.union_find import UnionFind

meshes = st.builds(
    Mesh2D, st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8)
)


class TestMeshProperties:
    @given(meshes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_distance_is_a_metric(self, mesh, data):
        node = st.integers(0, mesh.node_count - 1)
        a, b, c = data.draw(node), data.draw(node), data.draw(node)
        assert mesh.distance(a, b) == mesh.distance(b, a)
        assert mesh.distance(a, a) == 0
        assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)

    @given(meshes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_length_is_distance(self, mesh, data):
        node = st.integers(0, mesh.node_count - 1)
        src, dst = data.draw(node), data.draw(node)
        assert len(xy_route_links(mesh, src, dst)) == mesh.distance(src, dst)


class TestMstProperties:
    @given(meshes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_spanning_and_bounded_by_star(self, mesh, data):
        count = data.draw(st.integers(2, min(7, mesh.node_count)))
        vertices = data.draw(
            st.lists(
                st.integers(0, mesh.node_count - 1),
                min_size=count, max_size=count, unique=True,
            )
        )
        edges = kruskal(vertices, mesh.distance)
        assert len(edges) == len(vertices) - 1
        # Connectivity via union-find replay.
        uf = UnionFind(vertices)
        for edge in edges:
            uf.union(edge.a, edge.b)
        assert uf.set_count == 1
        # Never worse than any star.
        for center in vertices:
            star = sum(mesh.distance(center, v) for v in vertices if v != center)
            assert tree_weight(edges) <= star


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_connectivity_is_equivalence(self, pairs):
        uf = UnionFind()
        for a, b in pairs:
            uf.union(a, b)
        for a, b in pairs:
            assert uf.connected(a, b)
        # Transitivity through shared elements.
        for a, b in pairs:
            for c, d in pairs:
                if uf.connected(b, c):
                    assert uf.connected(a, d)


class TestPageAllocatorProperties:
    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_bits_preserved_for_any_addresses(self, addresses):
        mapping = AddressMapping.default()
        allocator = PageAllocator(mapping)
        for va in addresses:
            pa = allocator.translate(va)
            assert mapping.l2.bank_of(pa) == mapping.l2.bank_of(va)
            assert mapping.memory.channel_of(pa) == mapping.memory.channel_of(va)
            assert pa % 4096 == va % 4096

    @given(st.lists(st.integers(0, 1 << 22), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_translation_injective_on_pages(self, addresses):
        allocator = PageAllocator(AddressMapping.default())
        frames = {}
        for va in addresses:
            page = va // 4096
            frame = allocator.translate_page(page).physical_frame
            if page in frames:
                assert frames[page] == frame
            else:
                assert frame not in frames.values()
                frames[page] = frame


class TestCacheProperties:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_counters_consistent(self, blocks):
        cache = SetAssocCache(CacheConfig(1024, 2, 64))
        for block in blocks:
            cache.access(block)
        assert cache.hits + cache.misses == len(blocks)
        assert len(cache.resident_blocks()) <= cache.config.line_count

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_small_working_set_eventually_hits(self, blocks):
        cache = SetAssocCache(CacheConfig(4096, 4, 64))  # 64 lines: fits 0..15
        for block in blocks:
            cache.access(block)
        for block in set(blocks):
            assert cache.contains(block)


class TestAffineProperties:
    @given(
        st.integers(-8, 8), st.integers(-64, 64), st.integers(-100, 100)
    )
    @settings(max_examples=80, deadline=None)
    def test_affine_evaluation_linear(self, coeff, const, value):
        index = AffineIndex((("i", coeff),), const)
        assert index.evaluate({"i": value}) == coeff * value + const


class TestOperandTreeProperties:
    operand_names = st.lists(
        st.sampled_from(["B(i)", "C(i)", "D(i)", "E(i)", "F(i)"]),
        min_size=1, max_size=5,
    )

    @given(operand_names, st.sampled_from(["+", "*"]))
    @settings(max_examples=60, deadline=None)
    def test_leaf_count_matches_operands(self, names, op):
        source = "A(i) = " + f" {op} ".join(names)
        tree = build_operand_tree(parse_statement(source).rhs)
        assert len(tree.leaves()) == len(names)
        assert tree.operation_count() == len(names) - 1


class TestSyncGraphProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
                lambda p: p[0] < p[1]
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_minimize_preserves_reachability(self, arcs):
        graph = SyncGraph()
        for a, b in arcs:
            graph.add_arc(a, b)
        before = self.reachability(graph.arcs())
        graph.minimize()
        after = self.reachability(graph.arcs())
        assert before == after

    @staticmethod
    def reachability(arcs):
        succ = {}
        nodes = set()
        for a, b in arcs:
            succ.setdefault(a, set()).add(b)
            nodes.update((a, b))
        closed = set()
        for start in nodes:
            stack = [start]
            seen = set()
            while stack:
                node = stack.pop()
                for nxt in succ.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            closed.update((start, r) for r in seen)
        return closed
