"""Tests for the 12-application workload suite."""

import pytest

from repro.errors import WorkloadError
from repro.ir.dependence import analyzable_fraction, may_depend
from repro.ir.inspector import InspectorExecutor
from repro.workloads import ALL_WORKLOAD_NAMES, build_workload, workload_specs

APPS = ALL_WORKLOAD_NAMES


class TestRegistry:
    def test_twelve_apps(self):
        assert len(ALL_WORKLOAD_NAMES) == 12

    def test_suite_membership(self):
        suites = {spec.suite for spec in workload_specs()}
        assert suites == {"splash2", "mantevo"}
        mantevo = [s.name for s in workload_specs() if s.suite == "mantevo"]
        assert sorted(mantevo) == ["minimd", "minixyce"]

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("doom")


@pytest.mark.parametrize("app", APPS)
class TestEveryWorkload:
    def test_builds_and_instantiates(self, app):
        program = build_workload(app)
        instances = program.total_instances()
        assert instances > 1000
        first = next(program.instances())
        assert first.reads and first.write

    def test_deterministic_across_builds(self, app):
        a = build_workload(app, seed=3)
        b = build_workload(app, seed=3)
        first_a = next(a.instances())
        first_b = next(b.instances())
        assert first_a.reads == first_b.reads

    def test_seed_changes_index_data(self, app):
        a = build_workload(app, seed=0)
        b = build_workload(app, seed=99)
        if not a.index_data:
            pytest.skip("no index arrays")
        name = sorted(a.index_data)[0]
        # Permutations/clusters should differ for different seeds.
        assert a.index_data[name] != b.index_data[name] or len(a.index_data[name]) < 4

    def test_scale_grows_instances(self, app):
        small = build_workload(app, scale=1).total_instances()
        big = build_workload(app, scale=2).total_instances()
        assert big > small

    def test_analyzable_fraction_near_spec(self, app):
        spec = next(s for s in workload_specs() if s.name == app)
        measured = analyzable_fraction(spec.build())
        assert measured == pytest.approx(spec.expected_analyzable, abs=0.06)

    def test_all_accesses_in_bounds(self, app):
        # Resolving instances performs the bounds checks; consume a sample.
        program = build_workload(app)
        count = 0
        for instance in program.instances():
            count += 1
            if count >= 2000:
                break
        assert count == 2000

    def test_irregular_apps_are_inspectable(self, app):
        program = build_workload(app)
        if not may_depend(program):
            pytest.skip("fully affine")
        results = InspectorExecutor(program).inspect_all()
        assert results
        for result in results.values():
            assert result.indirect_reference_count > 0
