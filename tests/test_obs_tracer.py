"""Tracer behavior: no-op default, determinism, and result-neutrality.

The three contracts DESIGN.md Section 8 promises:

1. tracing is off by default and the disabled tracer is a pure no-op;
2. two same-seed runs emit identical event streams once the wall-time
   fields (``t``/``dur``) are stripped;
3. enabling tracing never changes compilation or simulation results.
"""

from __future__ import annotations

import io
import json

from repro.arch.knl import small_machine
from repro.benchmarks.perf import tiny_app
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    strip_wall_times,
    tracing,
)
from repro.sim.engine import SimConfig, Simulator


def _run_pipeline():
    """Compile + simulate the tiny app; returns (partition, metrics)."""
    machine = small_machine()
    partition = NdpPartitioner(machine, PartitionConfig()).partition(tiny_app())
    machine.mcdram.reset()
    metrics = Simulator(machine, SimConfig()).run(partition.units())
    return partition, metrics


def _traced_run(debug: bool = False):
    sink = io.StringIO()
    with tracing(sink, debug=debug):
        partition, metrics = _run_pipeline()
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    return events, partition, metrics


def test_default_tracer_is_null_and_noop():
    assert get_tracer() is NULL_TRACER
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.debug is False
    with NULL_TRACER.span("phase", detail=1) as span:
        span.add(more=2)
    NULL_TRACER.point("event", value=3)
    NULL_TRACER.close()  # all no-ops; nothing to assert beyond "no crash"


def test_tracing_installs_and_restores():
    sink = io.StringIO()
    with tracing(sink) as tracer:
        assert get_tracer() is tracer
        assert isinstance(tracer, Tracer) and tracer.enabled
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    tracer = Tracer(io.StringIO())
    previous = set_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)


def test_stream_shape_and_span_nesting():
    events, _, _ = _traced_run()
    assert events, "pipeline produced no trace events"
    assert all(event["ev"] in ("B", "E", "P") for event in events)

    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    # Spans close LIFO, every B has a matching E, and nothing is left open.
    open_spans = []
    for event in events:
        if event["ev"] == "B":
            open_spans.append(event["name"])
        elif event["ev"] == "E":
            assert open_spans and open_spans[-1] == event["name"]
            open_spans.pop()
    assert open_spans == []

    names = {event["name"] for event in events}
    assert "compile" in names
    assert "sim.run" in names
    assert "compile.nest" in names


def test_same_seed_streams_identical_modulo_wall_times():
    first, _, _ = _traced_run()
    second, _, _ = _traced_run()
    assert strip_wall_times(first) == strip_wall_times(second)
    # Sanity: the raw streams do carry wall times.
    assert all("t" in event for event in first)


def test_tracing_does_not_change_results():
    _, traced_partition, traced_metrics = _traced_run()
    plain_partition, plain_metrics = _run_pipeline()
    assert traced_metrics.to_dict() == plain_metrics.to_dict()
    assert traced_metrics.link_flits == plain_metrics.link_flits
    assert traced_partition.window_sizes == plain_partition.window_sizes
    assert traced_partition.variant_by_nest == plain_partition.variant_by_nest
    assert traced_partition.movement == plain_partition.movement


def test_debug_mode_adds_firehose_events():
    normal, _, _ = _traced_run(debug=False)
    debug, _, _ = _traced_run(debug=True)
    normal_names = {event["name"] for event in normal}
    debug_names = {event["name"] for event in debug}
    assert "split.statement" not in normal_names
    assert "split.statement" in debug_names
    assert len(debug) > len(normal)


def test_span_add_lands_in_end_event():
    sink = io.StringIO()
    tracer = Tracer(sink)
    with tracer.span("work", input=3) as span:
        span.add(output=9)
    begin, end = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert begin["ev"] == "B" and begin["data"] == {"input": 3}
    assert end["ev"] == "E" and end["data"] == {"output": 9}
    assert end["dur"] >= 0.0
