"""Tests for baselines (default placement, locality, data mapping, ideal)
and the code generator."""


from repro.baselines.data_mapping import preferred_mc, profile_page_mc_mapping
from repro.baselines.default_placement import DefaultPlacement
from repro.baselines.ideal import (
    OracleL2Predictor,
    ideal_network_config,
    partition_with_ideal_analysis,
)
from repro.baselines.locality import block_cyclic_placement, llc_locality_placement
from repro.core.codegen import generate_code
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.sim.engine import SimConfig, run_schedule


class TestDefaultPlacement:
    def test_every_instance_assigned(self, machine, tiny_program):
        result = DefaultPlacement(machine).place(tiny_program)
        assert len(result.node_of_seq) == tiny_program.total_instances()
        assert result.unit_count == tiny_program.total_instances()

    def test_nodes_in_range(self, machine, tiny_program):
        result = DefaultPlacement(machine).place(tiny_program)
        assert all(0 <= n < machine.node_count for n in result.node_of_seq.values())

    def test_chunks_are_contiguous(self, machine, tiny_program):
        result = DefaultPlacement(machine).place(tiny_program)
        # Statements of the same iteration stay on the same node.
        for seq in range(0, tiny_program.total_instances(), 2):
            assert result.node_of_seq[seq] == result.node_of_seq[seq + 1]

    def test_units_gather_all_reads(self, machine, tiny_program):
        result = DefaultPlacement(machine).place(tiny_program)
        first = result.units[0]
        assert len(first.gathered) == 4  # A = B + C + D + E
        assert first.store is not None

    def test_assignment_matches_place(self, machine, tiny_program):
        placement = DefaultPlacement(machine)
        import copy

        by_place = placement.place(copy.deepcopy(tiny_program)).node_of_seq
        by_assign = DefaultPlacement(machine).assignment(copy.deepcopy(tiny_program))
        assert by_place == by_assign

    def test_deterministic(self, machine, tiny_program):
        import copy

        a = DefaultPlacement(machine).place(copy.deepcopy(tiny_program)).node_of_seq
        b = DefaultPlacement(machine).place(copy.deepcopy(tiny_program)).node_of_seq
        assert a == b


class TestLocalityPlacements:
    def test_llc_locality_owner_computes(self, machine, tiny_program):
        result = llc_locality_placement(machine, tiny_program)
        for unit in result.units[:8]:
            home = machine.home_node(unit.store.array, unit.store.index)
            assert unit.node == home

    def test_block_cyclic_spreads(self, machine, tiny_program):
        result = block_cyclic_placement(machine, tiny_program, block=2)
        assert result.nodes_used() > 1


class TestDataMapping:
    def test_preferred_mc_is_nearest_corner(self, machine):
        for node in range(machine.node_count):
            mc = preferred_mc(machine, node)
            assert mc in machine.mc_nodes
            best = min(machine.distance(node, c) for c in machine.mc_nodes)
            assert machine.distance(node, mc) == best

    def test_mapping_covers_touched_pages(self, machine, tiny_program):
        placement = DefaultPlacement(machine).place(tiny_program)
        mapping = profile_page_mc_mapping(machine, placement.units)
        assert mapping
        assert all(mc in machine.mc_nodes for mc in mapping.values())

    def test_mapping_usable_by_simulator(self, machine, tiny_program):
        placement = DefaultPlacement(machine).place(tiny_program)
        mapping = profile_page_mc_mapping(machine, placement.units)
        metrics = run_schedule(machine, placement.units, SimConfig(mc_override=mapping))
        assert metrics.unit_count == placement.unit_count


class TestIdealScenarios:
    def test_ideal_network_config(self):
        config = ideal_network_config()
        assert config.ideal_network

    def test_oracle_predictor_accuracy(self, declared):
        machine, _ = declared
        oracle = OracleL2Predictor(machine)
        address = machine.layout.pa_of("A", 0)
        assert oracle.predict(address) is False   # cold: really a miss
        assert oracle.predict(address) is True    # now resident
        assert oracle.accuracy() == 1.0

    def test_ideal_analysis_partition_runs(self, machine, tiny_program):
        result = partition_with_ideal_analysis(machine, tiny_program)
        assert result.statement_count == tiny_program.total_instances()


class TestCodegen:
    def make_schedules(self, machine, program):
        config = PartitionConfig(
            split_plan_override={("main", 0): True, ("main", 1): True},
            use_predictor=False,
        )
        result = NdpPartitioner(machine, config).partition(program)
        return list(result.nest_schedules["main"].statement_schedules())

    def test_listing_structure(self, machine, tiny_program):
        schedules = self.make_schedules(machine, tiny_program)[:2]
        code = generate_code(schedules)
        listing = code.listing()
        assert "Node" in listing
        assert "=" in listing
        assert code.line_count() > 0

    def test_sync_lines_for_cross_node_results(self, machine, tiny_program):
        schedules = self.make_schedules(machine, tiny_program)
        code = generate_code(schedules)
        has_cross_node = any(
            r.from_node != s.node
            for schedule in schedules
            for s in schedule.subcomputations
            for r in s.sub_results
        )
        if has_cross_node:
            assert "sync(" in code.listing()

    def test_store_targets_present(self, machine, tiny_program):
        schedules = self.make_schedules(machine, tiny_program)[:4]
        listing = generate_code(schedules).listing()
        assert "A[" in listing and "X[" in listing
