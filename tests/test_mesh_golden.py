"""Golden bit-equivalence and determinism tests for the mesh tentpole.

The sparse-geometry and hierarchical-placement changes must be invisible
on the paper's 6x6 default path: the full compile+simulate reports of the
tiny app and MiniMD are pinned to the digests captured on the seed
revision — any byte drift in the scrubbed report is a regression, not a
tolerance question.

Also pinned here: the DAMOV generator is a pure function of its
arguments (the mesh-sweep crossover report is only regression-gateable
if its inputs never wobble), and the link heatmap remains a lossless
decomposition of ``DataMovement`` on non-square and beyond-threshold
meshes.
"""

import hashlib
import json

from repro.arch.knl import mesh_machine
from repro.baselines.default_placement import DefaultPlacement
from repro.benchmarks.perf import tiny_app
from repro.noc.network import LinkStats
from repro.obs.report import build_report
from repro.sim.engine import SimConfig, Simulator
from repro.workloads.damov import DAMOV_CLASSES, classify_program, damov_suite

#: Volatile report fields scrubbed before hashing (timings, file paths,
#: the pipeline section — per-pass wall-clock seconds — and the fields
#: later schema versions added on top of the seed revision's reports).
VOLATILE = (
    "schema_version", "phase_seconds", "trace_file", "pipeline", "execution",
)

#: sha256 of the scrubbed 6x6 reports, captured on the seed revision
#: (before the sparse-geometry/hierarchical-placement changes).
SEED_DIGESTS = {
    "tiny": "c47c3df1ee6883e90599ab839250702cc6ebc83a3a7b330a17dcafdd6b9e1705",
    "minimd": "4eebe53d6cef4a07e0bec96ee5897c1e6d7993410020369cf458a791afb64e9e",
}


def report_digest(app: str, scale: int = 1) -> str:
    report = build_report(app, scale=scale)
    for key in VOLATILE:
        report.pop(key, None)
    return hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()


class TestGoldenReports:
    def test_tiny_report_bit_identical_to_seed(self):
        assert report_digest("tiny") == SEED_DIGESTS["tiny"]

    def test_minimd_report_bit_identical_to_seed(self):
        assert report_digest("minimd") == SEED_DIGESTS["minimd"]


class TestDamovDeterminism:
    def test_same_arguments_same_programs(self):
        first = damov_suite(6, scale=1, seed=7)
        second = damov_suite(6, scale=1, seed=7)
        for a, b in zip(first, second):
            assert a.name == b.name
            assert a.damov_class == b.damov_class
            assert a.intensity == b.intensity
            assert [str(s) for n in a.program.nests for s in n.body] == [
                str(s) for n in b.program.nests for s in n.body
            ]
            assert a.program.index_data == b.program.index_data

    def test_different_seed_different_index_data(self):
        one = damov_suite(6, seed=0)
        two = damov_suite(6, seed=1)
        moved = [w for w in one if w.damov_class == "movement"]
        moved2 = [w for w in two if w.damov_class == "movement"]
        assert any(
            a.program.index_data != b.program.index_data
            for a, b in zip(moved, moved2)
        )

    def test_declared_class_matches_measured_intensity(self):
        for workload in damov_suite(6):
            assert classify_program(workload.program) == workload.damov_class

    def test_any_count_covers_every_class(self):
        classes = {w.damov_class for w in damov_suite(3)}
        assert classes == set(DAMOV_CLASSES)


class TestHeatmapConservation:
    """Every data flit-hop lands on exactly one link — any mesh shape."""

    def _movement_and_heatmap(self, cols, rows):
        machine = mesh_machine(cols, rows)
        program = tiny_app()
        placement = DefaultPlacement(machine).place(program)
        metrics = Simulator(machine, SimConfig()).run(placement.units)
        heatmap = LinkStats.from_link_flits(cols, rows, metrics.link_flits)
        return metrics.data_movement, heatmap.total_flit_hops()

    def test_non_square_mesh_sums_to_data_movement(self):
        movement, hops = self._movement_and_heatmap(8, 4)
        assert movement > 0
        assert hops == movement

    def test_large_mesh_sums_to_data_movement(self):
        # 12x9 is past the hierarchical threshold and non-square.
        movement, hops = self._movement_and_heatmap(12, 9)
        assert movement > 0
        assert hops == movement


class TestLargeMeshCompiles:
    """The acceptance criterion: big-mesh compiles complete end to end."""

    def test_minimd_compiles_at_12x12(self):
        from repro.core.partitioner import NdpPartitioner
        from repro.experiments.common import paper_machine
        from repro.pipeline import session_for
        from repro.workloads import build_workload

        session = session_for(paper_machine(mesh_cols=12, mesh_rows=12))
        partition = NdpPartitioner.from_session(session).partition(
            build_workload("minimd", 1, 0)
        )
        assert partition.movement > 0

    def test_tiny_compiles_at_16x16(self):
        from repro.core.partitioner import NdpPartitioner
        from repro.experiments.common import paper_machine
        from repro.pipeline import session_for

        session = session_for(paper_machine(mesh_cols=16, mesh_rows=16))
        partition = NdpPartitioner.from_session(session).partition(tiny_app())
        assert partition.movement >= 0
