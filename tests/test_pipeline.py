"""The pass pipeline: registry, session, manager, batch API, CLI, schema.

Covers the refactor's contract: the default order reproduces the
pre-refactor compile bit-for-bit (golden test), passes can be reordered
and skipped, the session serializes into report.json's ``pipeline``
section (schema v3), and the batch API matches serial compilation.
"""

from __future__ import annotations

import copy
import json
import pathlib
import subprocess
import sys

import pytest

from repro import cli
from repro.arch.knl import small_machine
from repro.core.balancer import LoadBalancer
from repro.core.partitioner import PartitionConfig
from repro.core.window import WindowConfig
from repro.errors import ConfigurationError
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.obs.report import build_report
from repro.obs.schema import validate_report
from repro.pipeline import (
    DEFAULT_PASS_ORDER,
    PASS_REGISTRY,
    Artifacts,
    PassManager,
    compile_many,
    compile_program,
    session_for,
)
from repro.pipeline.passes import resolve_order

GOLDEN = pathlib.Path(__file__).parent / "golden" / "report_tiny.json"

#: report.json fields that legitimately differ across builds: wall times,
#: the trace path, and fields the schema-v3/v4 refactors added.
VOLATILE_REPORT_FIELDS = (
    "schema_version", "phase_seconds", "trace_file", "pipeline", "execution",
)


def split_program(name: str = "p") -> Program:
    """A two-statement program whose shared operand makes splitting pay."""
    p = Program(name)
    for array in ("A", "B", "C", "D", "E", "X", "Y"):
        p.declare(array, 512)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 32)],
            [
                parse_statement("A(i) = B(i) + C(i) + D(i) + E(i)"),
                parse_statement("X(i) = Y(i) + C(i)"),
            ],
            "main",
        )
    )
    return p


def always_split_session(**kwargs):
    return session_for(
        small_machine(),
        config=PartitionConfig(window=WindowConfig(always_split=True)),
        **kwargs,
    )


class TestRegistryAndOrder:
    def test_default_order_is_the_registry_defaults(self):
        defaults = tuple(
            p.info.name for p in PASS_REGISTRY.values() if p.info.default
        )
        assert DEFAULT_PASS_ORDER == defaults
        assert "codegen" in PASS_REGISTRY
        assert "codegen" not in DEFAULT_PASS_ORDER
        assert resolve_order(None) == DEFAULT_PASS_ORDER

    def test_resolve_order_round_trips_custom_orders(self):
        order = ("profile", "split", "schedule")
        assert resolve_order(order) == order

    def test_resolve_order_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown pass name"):
            resolve_order(("profile", "bogus"))

    def test_resolve_order_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="twice"):
            resolve_order(("profile", "profile"))

    def test_session_for_rejects_unknown_skip_names(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            session_for(small_machine(), skip_passes=("bogus",))

    def test_artifacts_require_names_the_producer(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            Artifacts().require("partition", "codegen")


class TestPipelineRuns:
    def test_explicit_default_order_matches_implicit(self):
        implicit = compile_program(split_program(), always_split_session())
        explicit = compile_program(
            split_program(), always_split_session(pass_order=DEFAULT_PASS_ORDER)
        )
        assert implicit.movement == explicit.movement
        assert implicit.window_sizes == explicit.window_sizes

    def test_inline_passes_are_order_insensitive(self):
        # The inline passes' run() methods are no-ops, so dropping them
        # from the order (without skipping them) changes nothing.
        order = tuple(
            name for name in DEFAULT_PASS_ORDER
            if not PASS_REGISTRY[name].info.inline
        )
        baseline = compile_program(split_program(), always_split_session())
        trimmed = compile_program(
            split_program(), always_split_session(pass_order=order)
        )
        assert trimmed.movement == baseline.movement

    def test_codegen_pass_runs_when_ordered(self):
        session = always_split_session(
            pass_order=DEFAULT_PASS_ORDER + ("codegen",)
        )
        artifacts = PassManager(session).run(split_program())
        assert "generated_code" in artifacts
        assert "partition" in artifacts

    def test_codegen_before_schedule_raises_wrong_order_error(self):
        session = always_split_session(pass_order=("profile", "codegen"))
        with pytest.raises(ConfigurationError, match="schedule"):
            PassManager(session).run(split_program())

    def test_pass_timings_cover_the_executed_passes(self):
        session = always_split_session()
        compile_program(split_program(), session)
        seconds = session.pass_seconds()
        assert "schedule" in seconds
        assert all(v >= 0.0 for v in seconds.values())
        assert set(seconds) <= set(DEFAULT_PASS_ORDER)

    def test_skip_sync_minimize_leaves_windows_unminimized(self):
        skipped = compile_program(
            split_program(), always_split_session(skip_passes=("sync_minimize",))
        )
        for schedule in skipped.nest_schedules.values():
            assert schedule.sync_count == schedule.sync_count_unminimized
        minimized = compile_program(split_program(), always_split_session())
        for schedule in minimized.nest_schedules.values():
            assert schedule.sync_count <= schedule.sync_count_unminimized

    def test_skip_balance_disables_the_veto(self):
        session = always_split_session(skip_passes=("balance",))
        partition = compile_program(split_program(), session)
        assert partition.movement >= 0  # compiles end to end
        balancer = LoadBalancer(4, 0.10, enabled=False)
        balancer.record(0, 1_000_000)
        assert not balancer.would_unbalance(0, 1.0)

    def test_skipped_pass_does_not_accrue_time(self):
        session = always_split_session(skip_passes=("sync_minimize",))
        compile_program(split_program(), session)
        assert "sync_minimize" not in session.pass_seconds()


class TestSessionLifecycle:
    def test_fork_is_isolated(self):
        session = always_split_session()
        compile_program(split_program(), session)
        fork = session.fork()
        assert fork.machine is not session.machine
        assert fork.caches.split_caches == {}
        assert fork.skip_passes == session.skip_passes
        assert fork.timings == {}

    def test_to_json_shape(self):
        session = always_split_session(skip_passes=("balance",))
        blob = session.to_json()
        assert blob["pass_order"] == list(DEFAULT_PASS_ORDER)
        assert blob["skipped_passes"] == ["balance"]
        assert blob["faults_fingerprint"] is None
        assert blob["machine"]["mesh_cols"] == session.machine.config.mesh_cols
        json.dumps(blob)  # fully serializable


class TestBatchApi:
    def test_compile_many_matches_serial(self):
        session = always_split_session()
        serial = compile_many([split_program("a"), split_program("b")], session)
        parallel = compile_many(
            [split_program("a"), split_program("b")], session, jobs=2
        )
        assert [r.movement for r in serial] == [r.movement for r in parallel]
        assert [r.program_name for r in parallel] == ["a", "b"]


class TestReportIntegration:
    def test_pipeline_section_serializes_the_session(self):
        report = build_report("tiny", skip_passes=("sync_minimize",))
        assert validate_report(report) == []
        pipeline = report["pipeline"]
        assert pipeline["pass_order"] == list(DEFAULT_PASS_ORDER)
        assert pipeline["skipped_passes"] == ["sync_minimize"]
        assert "sync_minimize" not in pipeline["pass_seconds"]
        assert "schedule" in pipeline["pass_seconds"]

    def test_schema_v2_reports_still_validate(self):
        report = build_report("tiny")
        v2 = copy.deepcopy(report)
        v2["schema_version"] = 2
        del v2["pipeline"]
        assert validate_report(v2) == []

    def test_schema_v3_requires_the_pipeline_section(self):
        report = build_report("tiny")
        bad = copy.deepcopy(report)
        del bad["pipeline"]
        assert any("pipeline" in e for e in validate_report(bad))
        bad = copy.deepcopy(report)
        bad["pipeline"]["pass_order"] = ["profile", "profile"]
        assert validate_report(bad)

    def test_report_matches_pre_refactor_golden(self):
        """The pass pipeline reproduces the monolithic compile bit-for-bit.

        The golden was captured before the refactor (schema v2); every
        field except wall times and the schema additions must match.
        """
        golden = json.loads(GOLDEN.read_text())
        fresh = build_report("tiny")
        for report in (golden, fresh):
            for key in VOLATILE_REPORT_FIELDS:
                report.pop(key, None)
        assert fresh == golden


class TestCli:
    def test_list_passes(self, capsys):
        assert cli.main(["report", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in PASS_REGISTRY:
            assert name in out
        assert "default order:" in out

    def test_report_without_app_exits_2(self, capsys):
        assert cli.main(["report"]) == 2
        assert "APP" in capsys.readouterr().err

    def test_unknown_skip_pass_exits_2(self, capsys):
        assert cli.main(["report", "tiny", "--skip-pass", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_skip_pass_lands_in_the_report(self, tmp_path):
        out = tmp_path / "report.json"
        rc = cli.main(
            [
                "report",
                "tiny",
                "--out",
                str(out),
                "--skip-pass",
                "sync_minimize",
                "--no-heatmap",
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["pipeline"]["skipped_passes"] == ["sync_minimize"]

    def test_python_dash_m_repro_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            cwd=str(pathlib.Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        proc = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            cwd=str(pathlib.Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
