"""CLI flag composition: --check/--faults/--trace compose, conflicts exit 2."""

import json

import pytest

from repro import check
from repro.cli import main
from repro.faults.plan import FaultPlan, LinkFault


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    FaultPlan(links=(LinkFault(5, 6),), description="one dead link").dump(
        str(path)
    )
    return str(path)


class TestComposition:
    def test_report_check_composes(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert main(["report", "tiny", "--check", "--out", out]) == 0
        assert json.loads(open(out).read())["app"] == "tiny"

    def test_report_check_and_trace_compose(self, tmp_path):
        out = str(tmp_path / "report.json")
        trace = str(tmp_path / "trace.jsonl")
        argv = ["report", "tiny", "--check", "--trace", trace, "--out", out]
        assert main(argv) == 0
        assert open(trace).readline()  # trace stream actually written

    def test_report_check_trace_and_faults_all_compose(
        self, tmp_path, plan_file
    ):
        out = str(tmp_path / "report.json")
        trace = str(tmp_path / "trace.jsonl")
        argv = [
            "report", "tiny",
            "--check", "--trace", trace, "--faults", plan_file, "--out", out,
        ]
        assert main(argv) == 0
        report = json.loads(open(out).read())
        assert report["faults"]["fingerprint"]

    def test_faults_check_with_generation_knobs(self, capsys):
        assert main(["faults", "--check", "--seed", "1"]) == 0
        assert "fault plan:" in capsys.readouterr().out

    def test_faults_with_ready_made_plan(self, plan_file, capsys):
        assert main(["faults", "--plan", plan_file]) == 0
        assert "one dead link" in capsys.readouterr().out

    def test_check_mode_does_not_leak_between_invocations(self, tmp_path):
        out = str(tmp_path / "report.json")
        assert not check.enabled()
        assert main(["report", "tiny", "--check", "--out", out]) == 0
        assert not check.enabled()


class TestConflicts:
    def test_trace_debug_without_trace_exits_two(self, capsys):
        assert main(["report", "tiny", "--trace-debug"]) == 2
        err = capsys.readouterr().err
        assert "--trace-debug requires --trace" in err

    @pytest.mark.parametrize(
        "knob", [["--seed", "9"], ["--links", "3"], ["--nodes", "2"]]
    )
    def test_faults_plan_with_generation_knob_exits_two(
        self, plan_file, knob, capsys
    ):
        assert main(["faults", "--plan", plan_file, *knob]) == 2
        err = capsys.readouterr().err
        assert knob[0] in err and "--plan" in err

    def test_faults_plan_conflict_names_every_offending_knob(
        self, plan_file, capsys
    ):
        argv = ["faults", "--plan", plan_file, "--seed", "1", "--nodes", "1"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--seed" in err and "--nodes" in err

    def test_missing_plan_file_exits_two(self, capsys):
        assert main(["faults", "--plan", "does-not-exist.json"]) == 2
        assert "error:" in capsys.readouterr().err


class TestBackendFlags:
    def test_report_runtime_backend_composes(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        argv = [
            "report", "tiny",
            "--backend", "runtime", "--backend-workers", "1", "--out", out,
        ]
        assert main(argv) == 0
        report = json.loads(open(out).read())
        assert report["execution"]["backend"] == "runtime"
        assert report["execution"]["sync_violations"] == 0
        assert "backend=runtime" in capsys.readouterr().out

    def test_runtime_options_under_sim_backend_exit_two(self, capsys):
        assert main(["report", "tiny", "--backend-workers", "2"]) == 2
        err = capsys.readouterr().err
        assert "--backend-workers" in err and "--backend runtime" in err

    def test_seed_with_multiple_workers_exits_two(self, capsys):
        argv = [
            "report", "tiny",
            "--backend", "runtime",
            "--backend-seed", "3", "--backend-workers", "2",
        ]
        assert main(argv) == 2
        assert "--backend-workers 1" in capsys.readouterr().err

    def test_runtime_backend_with_faults_exits_two(self, plan_file, capsys):
        argv = [
            "report", "tiny",
            "--backend", "runtime", "--faults", plan_file,
        ]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--faults" in err and "--backend" in err
