"""Fault-injection layer: plans, detour routing, degradation, reporting.

Covers the invariants the fault subsystem promises:

* seeded :class:`~repro.faults.FaultPlan` generation and its JSON form
  round-trip deterministically;
* fault-aware routes avoid every dead link/node, stay mesh-adjacent, and
  the simulator's per-link flit volumes still sum to exactly the
  reported ``DataMovement`` (the heatmap identity survives detours);
* an empty plan is bit-identical to no plan at all;
* a plan killing links and a tile compiles + simulates end to end with
  nothing scheduled on offline nodes, and the v2 report carries a valid
  ``faults`` section;
* tiles that die mid-run get their units relocated instead of crashing.
"""

from __future__ import annotations

import json

import pytest

from repro.arch.knl import small_machine
from repro.baselines.default_placement import DefaultPlacement
from repro.core.partitioner import NdpPartitioner
from repro.errors import FaultError
from repro.faults import (
    ChannelDegrade,
    FaultPlan,
    LinkFault,
    NodeFault,
    random_plan,
)
from repro.noc.routing import Router, xy_route_links_cached
from repro.sim.engine import SimConfig, Simulator


def _protected(machine):
    return set(machine.mc_nodes) | set(machine.edc_nodes)


def _seeded_plan(machine, seed=7):
    """Two dead links + one dead tile (the acceptance scenario)."""
    return random_plan(
        machine.mesh.cols,
        machine.mesh.rows,
        seed=seed,
        link_count=2,
        node_count=1,
        protected_nodes=_protected(machine),
    )


def _tiny_units(machine):
    from repro.benchmarks.perf import tiny_app

    return NdpPartitioner(machine).partition(tiny_app()).units()


# -- plan serialization ----------------------------------------------------


def test_plan_json_roundtrip_is_exact():
    plan = FaultPlan(
        seed=3,
        links=(LinkFault(1, 2), LinkFault(5, 9, at_unit=4)),
        nodes=(NodeFault(10), NodeFault(6, at_unit=9)),
        channels=(ChannelDegrade(1, 3.0),),
        description="hand-built",
    )
    again = FaultPlan.loads(plan.dumps())
    assert again == plan
    assert again.dumps() == plan.dumps()
    assert again.fingerprint() == plan.fingerprint()


def test_plan_load_dump_roundtrip(tmp_path):
    plan = FaultPlan(seed=1, links=(LinkFault(0, 1),))
    path = tmp_path / "plan.json"
    plan.dump(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_random_plan_is_deterministic():
    a = random_plan(4, 4, seed=11, link_count=2, node_count=1)
    b = random_plan(4, 4, seed=11, link_count=2, node_count=1)
    assert a == b and a.fingerprint() == b.fingerprint()
    assert random_plan(4, 4, seed=12) != a


def test_random_plan_respects_protected_nodes(machine):
    protected = _protected(machine)
    plan = random_plan(
        4, 4, seed=5, link_count=3, node_count=2, protected_nodes=protected
    )
    assert not (plan.all_dead_nodes() & protected)
    for fault in plan.links:
        assert fault.src not in protected and fault.dst not in protected


@pytest.mark.parametrize(
    "text",
    [
        "not json",
        '{"version": 99}',
        '{"unknown_field": 1}',
        '{"links": [{"src": 0}]}',
        '{"nodes": [{"node": "x"}]}',
    ],
)
def test_malformed_plans_raise_fault_error(text):
    with pytest.raises(FaultError):
        FaultPlan.loads(text)


def test_empty_plan_properties():
    plan = FaultPlan(seed=0)
    assert plan.is_empty
    assert not plan.static_dead_links() and not plan.all_dead_nodes()
    assert plan.midrun_events() == []


# -- plan validation against a machine -------------------------------------


def test_killing_a_memory_controller_is_rejected(machine):
    mc = machine.mc_nodes[0]
    with pytest.raises(FaultError):
        machine.apply_faults(FaultPlan(seed=0, nodes=(NodeFault(mc),)))


def test_out_of_range_ids_are_rejected(machine):
    with pytest.raises(FaultError):
        machine.apply_faults(FaultPlan(seed=0, nodes=(NodeFault(99),)))
    with pytest.raises(FaultError):
        machine.apply_faults(FaultPlan(seed=0, links=(LinkFault(0, 99),)))


def test_non_adjacent_link_is_rejected(machine):
    with pytest.raises(FaultError):
        machine.apply_faults(FaultPlan(seed=0, links=(LinkFault(0, 5),)))


def test_disconnecting_plan_is_rejected(machine):
    # Kill all four links around node 5 while leaving it alive: isolated.
    links = tuple(
        LinkFault(*sorted((5, n))) for n in (1, 4, 6, 9)
    )
    with pytest.raises(FaultError):
        machine.apply_faults(FaultPlan(seed=0, links=links))


def test_plan_cannot_be_applied_twice(machine):
    plan = _seeded_plan(machine)
    machine.apply_faults(plan)
    with pytest.raises(FaultError):
        machine.apply_faults(plan)


# -- fault-aware routing ---------------------------------------------------


def _assert_route_valid(mesh, links, src, dst, dead_links, dead_nodes):
    assert links, f"no route {src}->{dst}"
    node = src
    for a, b in links:
        assert a == node, "route links are not contiguous"
        assert abs(a % mesh.cols - b % mesh.cols) + abs(
            a // mesh.cols - b // mesh.cols
        ) == 1, f"{a}->{b} is not a mesh link"
        assert (a, b) not in dead_links, f"route uses dead link {a}->{b}"
        node = b
    assert node == dst
    interior = {a for a, _ in links} | {b for _, b in links}
    assert not (interior & set(dead_nodes) - {src, dst})


def test_router_detours_around_dead_links(machine):
    mesh = machine.mesh
    dead = {(5, 6), (6, 5)}
    router = Router(mesh)
    router.set_faults(dead, ())
    for src in range(mesh.node_count):
        for dst in range(mesh.node_count):
            if src == dst:
                continue
            links = router.route_links(src, dst)
            _assert_route_valid(mesh, links, src, dst, dead, ())


def test_router_routes_around_dead_node(machine):
    mesh = machine.mesh
    router = Router(mesh)
    router.set_faults((), (5,))
    alive = [n for n in range(mesh.node_count) if n != 5]
    for src in alive:
        for dst in alive:
            if src == dst:
                continue
            nodes = router.route_nodes(src, dst)
            assert 5 not in nodes


def test_router_healthy_matches_xy(machine):
    mesh = machine.mesh
    router = Router(mesh)
    assert router.healthy
    for src, dst in ((0, 15), (3, 12), (7, 8)):
        assert router.route_links(src, dst) == tuple(
            xy_route_links_cached(mesh, src, dst)
        )


def test_router_raises_for_dead_endpoint(machine):
    router = Router(machine.mesh)
    router.set_faults((), (5,))
    with pytest.raises(FaultError):
        router.route_links(5, 0)


def test_router_detour_hops_never_below_manhattan(machine):
    mesh = machine.mesh
    manhattan = mesh.distance_fn()
    router = Router(mesh)
    router.set_faults({(5, 6), (6, 5), (9, 10), (10, 9)}, ())
    for src in range(mesh.node_count):
        for dst in range(mesh.node_count):
            if src != dst:
                assert router.hops(src, dst) >= manhattan(src, dst)


def test_set_faults_bumps_epoch_and_reroutes(machine):
    router = Router(machine.mesh)
    before = router.route_links(5, 6)
    epoch = router.set_faults({(5, 6), (6, 5)}, ())
    after = router.route_links(5, 6)
    assert epoch == 1
    assert before == ((5, 6),)
    assert after != before and len(after) > 1


# -- machine degradation ---------------------------------------------------


def test_banks_rehomed_off_dead_tiles(machine):
    plan = _seeded_plan(machine)
    healthy_homes = list(machine.bank_to_node)
    machine.apply_faults(plan)
    dead = machine.dead_nodes
    assert dead
    for bank, node in enumerate(machine.bank_to_node):
        assert node not in dead
        if healthy_homes[bank] not in dead:
            assert node == healthy_homes[bank]


def test_alive_nodes_excludes_dead(machine):
    plan = _seeded_plan(machine)
    machine.apply_faults(plan)
    alive = machine.alive_nodes()
    assert set(alive) | set(machine.dead_nodes) == set(
        range(machine.mesh.node_count)
    )
    for node in machine.dead_nodes:
        assert not machine.is_node_alive(node)


def test_degraded_channel_inflates_memory_latency(declared):
    machine, program = declared
    name = program.arrays()[0] if callable(getattr(program, "arrays", None)) else "A"
    healthy = machine.memory_access_cycles(name, 0)
    channel = machine.layout.channel_of(name, 0)
    plan = FaultPlan(seed=0, channels=(ChannelDegrade(channel, 4.0),))
    machine.apply_faults(plan)
    machine.mcdram.reset()
    assert machine.memory_access_cycles(name, 0) == pytest.approx(4.0 * healthy)


# -- scheduling + simulation under faults ----------------------------------


def test_placement_and_partition_avoid_offline_nodes(machine):
    plan = _seeded_plan(machine)
    machine.apply_faults(plan)
    dead = machine.dead_nodes
    from repro.benchmarks.perf import tiny_app

    placement = DefaultPlacement(machine).place(tiny_app())
    assert all(unit.node not in dead for unit in placement.units)
    machine.mcdram.reset()
    units = _tiny_units(machine)
    assert units
    assert all(unit.node not in dead for unit in units)


def test_degraded_run_flits_sum_to_data_movement(machine):
    plan = _seeded_plan(machine)
    machine.apply_faults(plan)
    units = _tiny_units(machine)
    machine.mcdram.reset()
    metrics = Simulator(machine, SimConfig()).run(units)
    assert metrics.data_movement > 0
    assert sum(metrics.link_flits.values()) == metrics.data_movement
    dead_links = plan.static_dead_links()
    assert all(link not in dead_links for link in metrics.link_flits)


def test_empty_plan_is_bit_identical_to_healthy():
    healthy = small_machine()
    healthy_units = _tiny_units(healthy)
    healthy.mcdram.reset()
    healthy_metrics = Simulator(healthy, SimConfig()).run(healthy_units)

    empty = small_machine()
    empty.apply_faults(FaultPlan(seed=0))
    empty_units = _tiny_units(empty)
    empty.mcdram.reset()
    empty_metrics = Simulator(empty, SimConfig()).run(empty_units)

    assert [u.node for u in empty_units] == [u.node for u in healthy_units]
    assert empty_metrics.to_dict() == healthy_metrics.to_dict()
    assert empty_metrics.link_flits == healthy_metrics.link_flits


def test_midrun_node_death_relocates_units():
    # Compile healthy, then the schedule's own machine degrades mid-run —
    # the simulator must relocate the victim's units, not crash.
    machine = small_machine()
    units = _tiny_units(machine)
    victim = units[len(units) // 2].node
    plan = FaultPlan(seed=1, nodes=(NodeFault(victim, at_unit=3),))

    machine.apply_faults(plan)
    machine.mcdram.reset()
    metrics = Simulator(machine, SimConfig()).run(units)
    assert metrics.fault_events == 1
    assert metrics.fault_relocations > 0
    assert sum(metrics.link_flits.values()) == metrics.data_movement


# -- reporting -------------------------------------------------------------


def test_report_v2_faults_section(machine):
    from repro.obs.report import build_report
    from repro.obs.schema import validate_report

    plan = _seeded_plan(machine)
    report = build_report("tiny", faults=plan)
    assert validate_report(report) == []
    faults = report["faults"]
    assert faults is not None
    assert faults["fingerprint"] == plan.fingerprint()
    assert faults["dead_nodes"] == sorted(plan.all_dead_nodes())
    assert FaultPlan.from_json(faults["plan"]) == plan
    comparison = faults["degraded_vs_healthy"]
    assert comparison["degraded_movement"] == report["optimized"]["data_movement"]
    assert report["phase_seconds"]["simulate_healthy"] >= 0.0
    assert (
        report["link_heatmap"]["total_flit_hops"]
        == report["optimized"]["data_movement"]
    )


def test_report_healthy_run_has_null_faults():
    from repro.obs.report import build_report

    report = build_report("tiny")
    assert report["faults"] is None
    assert "simulate_healthy" not in report["phase_seconds"]


def test_v1_reports_without_faults_field_still_validate():
    from repro.obs.report import build_report
    from repro.obs.schema import validate_report

    report = build_report("tiny")
    legacy = dict(report)
    legacy.pop("faults")
    legacy["schema_version"] = 1
    assert validate_report(legacy) == []


# -- CLI front-ends --------------------------------------------------------


def test_cli_faults_demo(tmp_path, capsys):
    from repro import cli

    plan_path = tmp_path / "plan.json"
    report_path = tmp_path / "report.json"
    status = cli.main(
        [
            "faults",
            "--seed",
            "7",
            "--plan-out",
            str(plan_path),
            "--out",
            str(report_path),
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "fault plan" in out and "degradation" in out
    plan = FaultPlan.load(str(plan_path))
    assert not plan.is_empty
    report = json.loads(report_path.read_text())
    assert report["faults"]["fingerprint"] == plan.fingerprint()


def test_cli_report_rejects_bad_fault_plan(tmp_path, capsys):
    from repro import cli

    bad = tmp_path / "bad.json"
    bad.write_text('{"surprise": 1}')
    status = cli.main(["report", "tiny", "--faults", str(bad)])
    assert status == 2
    assert "unknown fault plan field" in capsys.readouterr().err


def test_runner_rejects_unknown_app(capsys):
    from repro.experiments.runner import main as runner_main

    status = runner_main(["--apps", "nosuchapp"])
    assert status == 2
    assert "unknown app name" in capsys.readouterr().err
