"""Tests for the window scheduler, size search, profiling, and partitioner."""

import pytest

from repro.core.locator import DataLocator
from repro.core.partitioner import (
    NdpPartitioner,
    PartitionConfig,
    profile_access_counts,
    train_predictor,
)
from repro.core.profiling import build_split_plan, profile_statements
from repro.core.window import (
    MAX_WINDOW_SIZE,
    WindowConfig,
    WindowScheduler,
    WindowSizeSearch,
)
from repro.cache.predictor import HitMissPredictor
from repro.errors import SchedulingError
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program


def always_split_config(**kwargs):
    return WindowConfig(always_split=True, **kwargs)


class TestWindowScheduler:
    def test_window_boundaries(self, declared):
        machine, program = declared
        scheduler = WindowScheduler(machine, DataLocator(machine), always_split_config())
        schedule = scheduler.schedule_nest(program, program.nests[0], 4)
        assert schedule.window_size == 4
        assert all(w.statement_count <= 4 for w in schedule.windows)
        assert schedule.statement_count == program.nests[0].instance_count

    def test_bad_window_size(self, declared):
        machine, program = declared
        scheduler = WindowScheduler(machine, DataLocator(machine))
        with pytest.raises(SchedulingError):
            scheduler.schedule_nest(program, program.nests[0], 0)

    def test_reuse_lowers_movement(self, declared):
        machine, program = declared
        nest = program.nests[0]
        aware = WindowScheduler(
            machine, DataLocator(machine), always_split_config(reuse_aware=True)
        ).schedule_nest(program, nest, 8)
        agnostic = WindowScheduler(
            machine, DataLocator(machine), always_split_config(reuse_aware=False)
        ).schedule_nest(program, nest, 8)
        assert aware.movement <= agnostic.movement

    def test_sync_counts_non_negative_and_minimized(self, declared):
        machine, program = declared
        scheduler = WindowScheduler(machine, DataLocator(machine), always_split_config())
        schedule = scheduler.schedule_nest(program, program.nests[0], 4)
        assert 0 <= schedule.sync_count <= schedule.sync_count_unminimized

    def test_fallback_nodes_place_stars(self, declared):
        machine, program = declared
        fallback = {inst.seq: 9 for inst in program.instances()}
        scheduler = WindowScheduler(
            machine,
            DataLocator(machine),
            WindowConfig(),
            fallback_nodes=fallback,
            split_plan={("main", 0): False, ("main", 1): False},
        )
        schedule = scheduler.schedule_nest(program, program.nests[0], 1)
        nodes = {s.node for w in schedule.windows for st in w.schedules
                 for s in st.subcomputations}
        assert nodes == {9}

    def test_split_plan_respected(self, declared):
        machine, program = declared
        scheduler = WindowScheduler(
            machine,
            DataLocator(machine),
            WindowConfig(),
            split_plan={("main", 0): True, ("main", 1): False},
        )
        schedule = scheduler.schedule_nest(program, program.nests[0], 2)
        for window in schedule.windows:
            for statement_schedule in window.schedules:
                body_index = statement_schedule.instance.body_index
                if body_index == 1:
                    assert len(statement_schedule.subcomputations) == 1


class TestWindowSizeSearch:
    def test_tries_all_sizes(self, declared):
        machine, program = declared
        search = WindowSizeSearch(
            machine, DataLocator(machine), always_split_config()
        )
        outcome = search.search(program, program.nests[0])
        assert set(outcome.movement_by_size) == set(range(1, MAX_WINDOW_SIZE + 1))
        assert 1 <= outcome.best_size <= MAX_WINDOW_SIZE

    def test_best_size_minimizes_sampled_movement(self, declared):
        machine, program = declared
        search = WindowSizeSearch(
            machine, DataLocator(machine), always_split_config()
        )
        outcome = search.search(program, program.nests[0])
        best = min(outcome.movement_by_size.values())
        assert outcome.movement_by_size[outcome.best_size] == best


class TestProfiling:
    def test_profiles_cover_statements(self, declared):
        machine, program = declared
        profiles = profile_statements(machine, program, DataLocator(machine))
        assert set(profiles) == {("main", 0), ("main", 1)}
        for profile in profiles.values():
            assert profile.instances > 0
            assert profile.star_movement >= 0
            assert profile.mst_weight >= 0

    def test_serial_chain_detection(self, machine):
        p = Program()
        p.declare("S", 64)
        p.declare("A", 64, 8)
        p.add_nest(
            LoopNest.of(
                [Loop("i", 0, 4), Loop("k", 0, 4)],
                [parse_statement("S(i) = S(i) + A(i,k)")],
                "reduction",
            )
        )
        p.declare_on(machine)
        profiles = profile_statements(machine, p, DataLocator(machine))
        assert profiles[("reduction", 0)].serial_chain
        plan = build_split_plan(profiles, bias=0.0)
        assert plan[("reduction", 0)] is False

    def test_profile_access_counts(self, tiny_program):
        counts = profile_access_counts(tiny_program)
        assert counts["C"] == pytest.approx(2 * 32)  # read by both statements

    def test_train_predictor_returns_accuracy(self, declared):
        machine, program = declared
        accuracy = train_predictor(machine, program, HitMissPredictor(), 200)
        assert 0.0 <= accuracy <= 1.0


class TestNdpPartitioner:
    def test_partition_end_to_end(self, machine, tiny_program):
        result = NdpPartitioner(machine, PartitionConfig()).partition(tiny_program)
        assert result.statement_count == tiny_program.total_instances()
        assert set(result.window_sizes) == {"main"}
        assert result.variant_by_nest["main"] in ("star", "profile", "split")
        units = result.units()
        assert len(units) >= result.statement_count
        assert len({u.uid for u in units}) == len(units)

    def test_every_instance_has_final_store(self, machine, tiny_program):
        result = NdpPartitioner(machine, PartitionConfig()).partition(tiny_program)
        stores = [u for u in result.units() if u.store is not None]
        assert len(stores) == tiny_program.total_instances()

    def test_split_plan_override_skips_gate(self, machine, tiny_program):
        config = PartitionConfig(
            split_plan_override={("main", 0): True, ("main", 1): True},
            use_predictor=False,
        )
        result = NdpPartitioner(machine, config).partition(tiny_program)
        assert result.variant_by_nest["main"] == "override"

    def test_fixed_window_size(self, machine, tiny_program):
        config = PartitionConfig(
            adaptive_window=False,
            fixed_window_size=3,
            split_plan_override={("main", 0): True, ("main", 1): True},
            use_predictor=False,
        )
        result = NdpPartitioner(machine, config).partition(tiny_program)
        assert result.window_sizes["main"] == 3

    def test_predictor_accuracy_reported(self, machine, tiny_program):
        result = NdpPartitioner(machine, PartitionConfig()).partition(tiny_program)
        assert result.predictor_accuracy is not None
        assert 0.0 <= result.predictor_accuracy <= 1.0

    def test_op_fraction_partition(self, machine, tiny_program):
        config = PartitionConfig(
            split_plan_override={("main", 0): True, ("main", 1): True},
            use_predictor=False,
        )
        result = NdpPartitioner(machine, config).partition(tiny_program)
        fractions = result.remapped_op_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
