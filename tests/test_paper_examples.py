"""The paper's worked examples (Sections 3 and 5), on constructed geometry.

The paper's figures place data at specific mesh positions we cannot read
off, so these tests pin their own positions and assert exactly
hand-computed movement values, verifying the same effects: MST beats the
default star (Fig 9), level-based splitting respects parentheses (Fig 10),
and a multi-statement window exploits the L1 copy left by an earlier
subcomputation (Fig 11).
"""

import itertools
from typing import Dict

import pytest

from repro.arch.knl import small_machine
from repro.core.balancer import LoadBalancer
from repro.core.locator import DataLocator, Location
from repro.core.scheduler import schedule_statement, star_cost
from repro.core.splitter import split_statement
from repro.core.window import WindowConfig, WindowScheduler
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.ir.statement import Access
from repro.noc.topology import Coord, Mesh2D


class ManualLocator(DataLocator):
    """A locator with hand-pinned array -> node placements (one per array)."""

    def __init__(self, machine, placement: Dict[str, Coord]):
        super().__init__(machine)
        self._nodes = {
            name: machine.mesh.id_of(coord) for name, coord in placement.items()
        }

    def locate(self, access: Access, var2node=None) -> Location:
        l1_copies = ()
        if var2node is not None:
            l1_copies = var2node.nodes_with(self.block_of(access))
        return Location(access, self._nodes[access.array], True, l1_copies)

    def store_node(self, access: Access) -> int:
        return self._nodes[access.array]

    def block_of(self, access: Access) -> int:
        # One block per array: enough for the worked examples.
        return hash(access.array) % (1 << 20)


def build_program(statements, arrays, trip=1):
    program = Program("example")
    for name in arrays:
        program.declare(name, 64)
    program.add_nest(
        LoopNest.of(
            [Loop("i", 0, trip)],
            [parse_statement(s) for s in statements],
            "example",
        )
    )
    return program


@pytest.fixture
def mesh6():
    machine = small_machine()
    machine.mesh = Mesh2D(6, 6)  # wider mesh for the figures' geometry
    return machine


class TestFigure9SingleStatement:
    """A(i) = B(i)+C(i)+D(i)+E(i) with B/E and C/D pairwise close."""

    PLACEMENT = {
        "A": Coord(0, 0),
        "B": Coord(2, 0),   # 2 links from A
        "E": Coord(4, 0),   # 4 links from A, 2 from B
        "C": Coord(0, 4),   # 4 links from A
        "D": Coord(0, 2),   # 2 links from A, 2 from C
    }

    def setup_case(self, mesh6):
        program = build_program(
            ["A(i) = B(i) + C(i) + D(i) + E(i)"], list("ABCDE")
        )
        program.declare_on(mesh6)
        locator = ManualLocator(mesh6, self.PLACEMENT)
        instance = next(program.instances())
        return mesh6, locator, instance

    def test_default_movement_is_star(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        # All inputs travel to n_A: 2 + 4 + 2 + 4 = 12 links.
        assert star_cost(instance, locator) == 12

    def test_mst_movement(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        split = split_statement(instance, locator)
        # MST: A-B (2), B-E (2), A-D (2), D-C (2) = 8 links.
        assert split.mst_weight == 8

    def test_subcomputations_execute_near_data(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        split = split_statement(instance, locator)
        schedule = schedule_statement(
            split, locator, LoadBalancer(machine.node_count), itertools.count()
        )
        assert schedule.movement == 8
        final = next(s for s in schedule.subcomputations if s.is_final)
        assert final.node == machine.mesh.id_of(self.PLACEMENT["A"])
        # B+E combine away from A: at least one intermediate subcomputation.
        assert len(schedule.subcomputations) >= 2


class TestFigure10Parentheses:
    """A(i) = B(i) * (C(i) + D(i) + E(i)): the inner sum reduces first."""

    PLACEMENT = {
        "A": Coord(0, 0),
        "B": Coord(1, 0),
        "C": Coord(4, 0),
        "D": Coord(4, 1),
        "E": Coord(5, 1),
    }

    def setup_case(self, mesh6):
        program = build_program(["A(i) = B(i) * (C(i) + D(i) + E(i))"], list("ABCDE"))
        program.declare_on(mesh6)
        locator = ManualLocator(mesh6, self.PLACEMENT)
        instance = next(program.instances())
        return mesh6, locator, instance

    def test_default_movement(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        # B:1 + C:4 + D:5 + E:6 = 16.
        assert star_cost(instance, locator) == 16

    def test_level_based_mst(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        split = split_statement(instance, locator)
        # Inner set {C,D,E}: C-D (1) + D-E (1).  Outer: B attaches to the
        # component at its nearest member (C, distance 3), A-B (1) => 6.
        assert split.mst_weight == 6

    def test_inner_sum_before_multiply(self, mesh6):
        machine, locator, instance = self.setup_case(mesh6)
        split = split_statement(instance, locator)
        schedule = schedule_statement(
            split, locator, LoadBalancer(machine.node_count), itertools.count()
        )
        add_subs = [s for s in schedule.subcomputations if s.op == "+" and s.op_count]
        mul_subs = [s for s in schedule.subcomputations if s.op == "*" and s.op_count]
        assert add_subs and mul_subs
        # The multiply consumes the additive component's result.
        add_uids = {s.uid for s in add_subs}
        consumed = {
            r.producer_uid for s in mul_subs for r in s.sub_results
        }
        assert add_uids & consumed or any(
            r.producer_uid in add_uids
            for s in schedule.subcomputations
            for r in s.sub_results
        )


class TestFigure11MultiStatementReuse:
    """S1: A=B+C+D+E, S2: X=Y+C.  C's fetch into n_D is reused by S2."""

    PLACEMENT = {
        "A": Coord(0, 0),
        "B": Coord(2, 0),
        "E": Coord(4, 0),
        "C": Coord(0, 4),
        "D": Coord(0, 2),
        "X": Coord(1, 2),
        "Y": Coord(1, 3),
    }

    def make_scheduler(self, machine, locator, window_config=None):
        return WindowScheduler(
            machine,
            locator,
            window_config or WindowConfig(always_split=True),
            LoadBalancer(machine.node_count),
        )

    def test_window_reuses_l1_copy(self, mesh6):
        program = build_program(
            ["A(i) = B(i) + C(i) + D(i) + E(i)", "X(i) = Y(i) + C(i)"],
            list("ABCDE") + ["X", "Y"],
        )
        program.declare_on(mesh6)
        locator = ManualLocator(mesh6, self.PLACEMENT)
        instances = list(program.instances())

        scheduler = self.make_scheduler(mesh6, locator)
        window = scheduler.schedule_window(instances)
        together = window.movement

        # Scheduling each statement in its own window loses the reuse.
        scheduler_isolated = self.make_scheduler(mesh6, locator)
        isolated = sum(
            scheduler_isolated.schedule_window([inst]).movement
            for inst in instances
        )
        assert together < isolated

    def test_s2_gather_hits_l1(self, mesh6):
        program = build_program(
            ["A(i) = B(i) + C(i) + D(i) + E(i)", "X(i) = Y(i) + C(i)"],
            list("ABCDE") + ["X", "Y"],
        )
        program.declare_on(mesh6)
        locator = ManualLocator(mesh6, self.PLACEMENT)
        instances = list(program.instances())
        scheduler = self.make_scheduler(mesh6, locator)
        window = scheduler.schedule_window(instances)
        s2 = window.schedules[1]
        c_gathers = [
            g
            for s in s2.subcomputations
            for g in s.gathered
            if g.access.array == "C"
        ]
        assert c_gathers and c_gathers[0].l1_hit
