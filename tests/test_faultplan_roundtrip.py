"""Fault-plan serialization round-trips and fingerprint stability.

The fingerprint is a content hash used as a memoization key and report
provenance stamp, so it must be stable across processes and Python
versions (3.10-3.13): the canonical JSON form sorts keys and the hash
reads that text, never an id() or dict iteration order.  The pinned
hex digests below fail loudly if the canonical form ever drifts —
change them only with a deliberate format bump.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import (
    ChannelDegrade,
    FaultPlan,
    LinkFault,
    NodeFault,
    random_plan,
)

HAND_PLAN = FaultPlan(
    seed=7,
    links=(LinkFault(0, 1), LinkFault(5, 6, at_unit=12)),
    nodes=(NodeFault(10),),
    channels=(ChannelDegrade(2, 2.5),),
    description="hand-built pinned plan",
)


class TestPinnedFingerprints:
    def test_hand_built_plan_fingerprint_is_pinned(self):
        assert HAND_PLAN.fingerprint() == "2fa7862b7f9db469"

    def test_seeded_random_plan_fingerprints_are_pinned(self):
        assert random_plan(4, 4, seed=42).fingerprint() == "219799e73e9187e7"
        assert (
            random_plan(6, 6, seed=3, link_count=4, node_count=2).fingerprint()
            == "4a732df86927b3e7"
        )

    def test_fingerprint_survives_a_serialize_load_cycle(self):
        reloaded = FaultPlan.loads(HAND_PLAN.dumps())
        assert reloaded == HAND_PLAN
        assert reloaded.fingerprint() == HAND_PLAN.fingerprint()

    def test_fingerprint_distinguishes_different_plans(self):
        assert HAND_PLAN.fingerprint() != FaultPlan().fingerprint()


random_plans = st.builds(
    random_plan,
    cols=st.integers(3, 8),
    rows=st.integers(3, 8),
    seed=st.integers(0, 10_000),
    link_count=st.integers(0, 4),
    node_count=st.integers(0, 2),
    degraded_channel_count=st.integers(0, 2),
)


class TestRandomPlanRoundTrips:
    @given(random_plans)
    @settings(max_examples=50, deadline=None)
    def test_dumps_loads_is_the_identity(self, plan):
        reloaded = FaultPlan.loads(plan.dumps())
        assert reloaded == plan
        assert reloaded.fingerprint() == plan.fingerprint()
        # dumps is canonical: one more cycle produces identical bytes.
        assert reloaded.dumps() == plan.dumps()

    @given(random_plans)
    @settings(max_examples=50, deadline=None)
    def test_to_json_from_json_is_the_identity(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_gives_same_fingerprint(self, seed):
        first = random_plan(5, 5, seed=seed)
        second = random_plan(5, 5, seed=seed)
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        HAND_PLAN.dump(str(path))
        assert FaultPlan.load(str(path)) == HAND_PLAN
